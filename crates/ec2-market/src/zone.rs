//! Amazon EC2 availability zones.
//!
//! The paper uses three zones in the us-east-1 region. Spot prices in
//! different zones are treated as statistically independent (a paper
//! assumption, confirmed by their trace study and by Marathe et al.), which
//! is what makes cross-zone replicated execution effective.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An EC2 availability zone.
///
/// The variants mirror the zones evaluated in the paper. `Other(u8)` allows
/// synthetic experiments with more redundancy than the paper used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AvailabilityZone {
    /// us-east-1a — the volatile zone in the paper's Figure 1.
    UsEast1a,
    /// us-east-1b — flat, consistently cheap in the paper's traces.
    UsEast1b,
    /// us-east-1c.
    UsEast1c,
    /// An additional synthetic zone for scaled-up experiments.
    Other(u8),
}

impl AvailabilityZone {
    /// The three zones used throughout the paper's evaluation.
    pub const PAPER_ZONES: [AvailabilityZone; 3] = [
        AvailabilityZone::UsEast1a,
        AvailabilityZone::UsEast1b,
        AvailabilityZone::UsEast1c,
    ];

    /// Stable small integer index, usable for seeding per-zone RNG streams.
    pub fn index(self) -> u32 {
        match self {
            AvailabilityZone::UsEast1a => 0,
            AvailabilityZone::UsEast1b => 1,
            AvailabilityZone::UsEast1c => 2,
            AvailabilityZone::Other(n) => 3 + n as u32,
        }
    }
}

impl fmt::Display for AvailabilityZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailabilityZone::UsEast1a => write!(f, "us-east-1a"),
            AvailabilityZone::UsEast1b => write!(f, "us-east-1b"),
            AvailabilityZone::UsEast1c => write!(f, "us-east-1c"),
            AvailabilityZone::Other(n) => write!(f, "us-east-1x{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_zones_are_distinct() {
        let z = AvailabilityZone::PAPER_ZONES;
        assert_ne!(z[0], z[1]);
        assert_ne!(z[1], z[2]);
        assert_ne!(z[0], z[2]);
    }

    #[test]
    fn indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for z in AvailabilityZone::PAPER_ZONES {
            assert!(seen.insert(z.index()));
        }
        assert!(seen.insert(AvailabilityZone::Other(0).index()));
        assert!(seen.insert(AvailabilityZone::Other(7).index()));
    }

    #[test]
    fn display_matches_aws_naming() {
        assert_eq!(AvailabilityZone::UsEast1a.to_string(), "us-east-1a");
        assert_eq!(AvailabilityZone::Other(2).to_string(), "us-east-1x2");
    }
}
