//! Deterministic fault injection for replay experiments.
//!
//! The paper's replay methodology exercises exactly one failure mode: the
//! realized spot price rising above a bid. Real spot deployments see more
//! — correlated capacity reclaims that kill several circle groups at
//! once, checkpoint uploads that fail or stall, restores that read a
//! corrupt image, and market-feed gaps that starve the adaptive planner
//! of fresh history. This module injects all of those on top of a price
//! trace, reproducibly.
//!
//! # Determinism
//!
//! Every fault decision is a *pure function* of the [`FaultPlan`] seed
//! and the decision's coordinates (fault class tag, circle group, ordinal,
//! attempt number). There is no sequential RNG state to advance, so the
//! order in which executors query the injector — and therefore the thread
//! count, window schedule, or evaluation order — cannot change any
//! outcome. Same seed + same config ⇒ bit-identical fault timeline.
//! Storm arrival times are the one sequential sample; they are drawn once
//! at [`FaultInjector::new`] and frozen.

use crate::market::CircleGroupId;
use crate::Hours;
use serde::{Deserialize, Serialize};

/// One SplitMix64 scramble step — the mixing core of the injector.
/// Public so tests and sibling crates can derive sub-streams the same way.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold `v` into hash state `h` (one SplitMix64 round per word).
fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

/// A uniform sample in `[0, 1)` from the top 53 bits of `h`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Stable 64-bit key for a circle group (hash of its display form, which
/// is the same string the trace events carry). Public so executors can
/// key [`RetryPolicy::backoff_hours`] by the same coordinates the
/// injector uses.
pub fn group_key(id: CircleGroupId) -> u64 {
    let mut h = 0x005e_ed0f_u64;
    for b in id.to_string().bytes() {
        h = mix(h, b as u64);
    }
    h
}

/// Fault-class tags keeping the per-class hash streams independent.
const TAG_STORM_MEMBER: u64 = 1;
const TAG_CKPT_FAIL: u64 = 2;
const TAG_CKPT_LATENCY: u64 = 3;
const TAG_RESTORE: u64 = 4;
const TAG_FEED_GAP: u64 = 5;
const TAG_STORM_TIME: u64 = 6;
const TAG_JITTER: u64 = 7;

/// Bounded exponential backoff with deterministic jitter, for checkpoint
/// I/O and relaunch attempts.
///
/// [`RetryPolicy::none`] (the [`Default`]) performs exactly one attempt
/// with zero backoff — executors behave bit-identically to the
/// pre-resilience code under it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts before giving up (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, hours.
    pub base_backoff_hours: Hours,
    /// Multiplier applied per further retry.
    pub multiplier: f64,
    /// Cap on any single backoff, hours.
    pub max_backoff_hours: Hours,
    /// Jitter amplitude as a fraction of the backoff (`0.25` perturbs
    /// each wait by up to ±25%, deterministically from the seed).
    pub jitter: f64,
}

impl RetryPolicy {
    /// One attempt, no backoff: the no-op policy.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_hours: 0.0,
            multiplier: 1.0,
            max_backoff_hours: 0.0,
            jitter: 0.0,
        }
    }

    /// Sensible checkpoint-I/O defaults: 3 attempts, 3-minute base
    /// backoff doubling per retry, capped at 30 minutes, ±25% jitter.
    pub fn default_io() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_hours: 0.05,
            multiplier: 2.0,
            max_backoff_hours: 0.5,
            jitter: 0.25,
        }
    }

    /// Whether this policy never waits and never retries.
    pub fn is_noop(&self) -> bool {
        self.max_attempts <= 1 && self.base_backoff_hours == 0.0
    }

    /// Backoff before retry number `attempt` (1-based: the wait after the
    /// `attempt`-th failure). Deterministic in `(seed, key, attempt)`.
    pub fn backoff_hours(&self, seed: u64, key: u64, attempt: u32) -> Hours {
        if self.base_backoff_hours <= 0.0 {
            return 0.0;
        }
        let raw = self.base_backoff_hours * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let capped = raw.min(self.max_backoff_hours.max(self.base_backoff_hours));
        if self.jitter <= 0.0 {
            return capped;
        }
        let h = mix(mix(mix(seed, TAG_JITTER), key), attempt as u64);
        // Uniform in [1 - jitter, 1 + jitter].
        capped * (1.0 + self.jitter * (2.0 * unit(h) - 1.0))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Seeded configuration of every injectable fault class. All
/// probabilities default to zero (a quiet plan injects nothing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every hash stream.
    pub seed: u64,
    /// Expected spot-kill storms per trace hour (0 disables storms).
    pub storm_rate_per_hour: f64,
    /// Probability that a given storm reclaims a given circle group
    /// (correlated multi-group termination when close to 1).
    pub storm_group_prob: f64,
    /// How long a storm suppresses relaunch attempts, hours.
    pub storm_duration_hours: Hours,
    /// Probability that one checkpoint upload attempt fails.
    pub ckpt_fail_prob: f64,
    /// Probability that a checkpoint upload stalls (a latency spike).
    pub ckpt_latency_prob: f64,
    /// Extra hours a latency spike adds to the affected upload.
    pub ckpt_latency_hours: Hours,
    /// Probability that restoring a checkpoint finds a corrupt image
    /// (forcing fallback to the previous checkpoint).
    pub restore_corrupt_prob: f64,
    /// Probability that the market feed is gapped/stale at a given
    /// adaptive planning window.
    pub feed_gap_prob: f64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn quiet() -> Self {
        Self {
            seed: 0,
            storm_rate_per_hour: 0.0,
            storm_group_prob: 0.0,
            storm_duration_hours: 1.0,
            ckpt_fail_prob: 0.0,
            ckpt_latency_prob: 0.0,
            ckpt_latency_hours: 0.0,
            restore_corrupt_prob: 0.0,
            feed_gap_prob: 0.0,
        }
    }

    /// Whether every fault class is disabled.
    pub fn is_quiet(&self) -> bool {
        self.storm_rate_per_hour <= 0.0
            && self.ckpt_fail_prob <= 0.0
            && self.ckpt_latency_prob <= 0.0
            && self.restore_corrupt_prob <= 0.0
            && self.feed_gap_prob <= 0.0
    }

    /// Parse the CLI `--faults` spec: comma-separated `key=value` terms.
    ///
    /// ```text
    /// storm=RATE[xPROB]      kill storms per hour, per-group hit prob (default 1)
    /// storm-hours=H          storm duration (default 1)
    /// ckpt-fail=P            per-attempt upload failure probability
    /// ckpt-latency=P:H       spike probability and added hours
    /// restore-corrupt=P      corrupt-image probability per restore
    /// feed-gap=P             market-feed gap probability per window
    /// ```
    ///
    /// Example: `storm=0.05x0.8,ckpt-fail=0.3,feed-gap=0.25`.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = Self {
            seed,
            ..Self::quiet()
        };
        let prob = |key: &str, v: &str| -> Result<f64, String> {
            let p: f64 = v
                .parse()
                .map_err(|_| format!("--faults {key}: cannot parse {v:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("--faults {key}: probability {p} outside [0, 1]"));
            }
            Ok(p)
        };
        for term in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let (key, value) = term
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("--faults term {term:?}: expected key=value"))?;
            match key {
                "storm" => {
                    let (rate, p) = match value.split_once('x') {
                        Some((r, p)) => (r, prob("storm", p)?),
                        None => (value, 1.0),
                    };
                    plan.storm_rate_per_hour = rate
                        .parse()
                        .map_err(|_| format!("--faults storm: cannot parse rate {rate:?}"))?;
                    if plan.storm_rate_per_hour < 0.0 {
                        return Err("--faults storm: rate must be non-negative".into());
                    }
                    plan.storm_group_prob = p;
                }
                "storm-hours" => {
                    plan.storm_duration_hours = value
                        .parse()
                        .map_err(|_| format!("--faults storm-hours: cannot parse {value:?}"))?;
                }
                "ckpt-fail" => plan.ckpt_fail_prob = prob("ckpt-fail", value)?,
                "ckpt-latency" => {
                    let (p, h) = value.split_once(':').ok_or_else(|| {
                        format!("--faults ckpt-latency: expected P:HOURS, got {value:?}")
                    })?;
                    plan.ckpt_latency_prob = prob("ckpt-latency", p)?;
                    plan.ckpt_latency_hours = h
                        .parse()
                        .map_err(|_| format!("--faults ckpt-latency: cannot parse hours {h:?}"))?;
                }
                "restore-corrupt" => plan.restore_corrupt_prob = prob("restore-corrupt", value)?,
                "feed-gap" => plan.feed_gap_prob = prob("feed-gap", value)?,
                other => {
                    return Err(format!(
                        "--faults: unknown term {other:?} (storm, storm-hours, ckpt-fail, \
                         ckpt-latency, restore-corrupt, feed-gap)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::quiet()
    }
}

/// One precomputed spot-kill storm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Storm {
    /// Trace hour at which affected running groups are reclaimed.
    pub at_hours: Hours,
    /// Trace hour until which relaunch is suppressed.
    pub until_hours: Hours,
}

/// The fault oracle executors consult. Immutable (and therefore `Sync`)
/// after construction: storm times are sampled once; every other query is
/// a stateless hash of its coordinates, so results are independent of
/// query order and thread count.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    storms: Vec<Storm>,
}

impl FaultInjector {
    /// Build an injector over `[0, horizon_hours)` of trace time. Storm
    /// arrivals are a Poisson stream at `storm_rate_per_hour`, sampled
    /// from the seed once and frozen.
    pub fn new(plan: FaultPlan, horizon_hours: Hours) -> Self {
        let mut storms = Vec::new();
        if plan.storm_rate_per_hour > 0.0 && horizon_hours > 0.0 {
            let mut state = mix(plan.seed, TAG_STORM_TIME);
            let mut t = 0.0;
            loop {
                state = splitmix64(state);
                // Exponential inter-arrival; clamp u away from 0.
                let u = unit(state).max(1e-12);
                t += -u.ln() / plan.storm_rate_per_hour;
                if t >= horizon_hours {
                    break;
                }
                storms.push(Storm {
                    at_hours: t,
                    until_hours: t + plan.storm_duration_hours.max(0.0),
                });
            }
        }
        Self { plan, storms }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The precomputed storm timeline.
    pub fn storms(&self) -> &[Storm] {
        &self.storms
    }

    /// Uniform `[0, 1)` draw for a fault-class decision at the given
    /// coordinates. Pure — no state advances.
    fn draw(&self, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        unit(mix(mix(mix(mix(self.plan.seed, tag), a), b), c))
    }

    /// Earliest storm at or after `from` that reclaims `group`, if any.
    pub fn storm_kill_after(&self, group: CircleGroupId, from: Hours) -> Option<Hours> {
        self.storm_kill_after_keyed(group_key(group), from)
    }

    /// [`FaultInjector::storm_kill_after`] with the group hash precomputed.
    /// The batched executor caches [`group_key`] per (group, plan) so hot
    /// replay loops skip the per-call string hash; draws are identical.
    pub fn storm_kill_after_keyed(&self, key: u64, from: Hours) -> Option<Hours> {
        if self.plan.storm_group_prob <= 0.0 {
            return None;
        }
        self.storms
            .iter()
            .enumerate()
            .filter(|(_, s)| s.at_hours >= from)
            .find(|(i, _)| {
                self.draw(TAG_STORM_MEMBER, *i as u64, key, 0) < self.plan.storm_group_prob
            })
            .map(|(_, s)| s.at_hours)
    }

    /// If trace hour `t` falls inside a storm that reclaims `group`,
    /// the hour the storm lifts (relaunch is suppressed until then).
    pub fn storm_blocks_until(&self, group: CircleGroupId, t: Hours) -> Option<Hours> {
        if self.plan.storm_group_prob <= 0.0 {
            return None;
        }
        let key = group_key(group);
        self.storms
            .iter()
            .enumerate()
            .filter(|(_, s)| s.at_hours <= t && t < s.until_hours)
            .find(|(i, _)| {
                self.draw(TAG_STORM_MEMBER, *i as u64, key, 0) < self.plan.storm_group_prob
            })
            .map(|(_, s)| s.until_hours)
    }

    /// Whether attempt `attempt` (1-based) of `group`'s checkpoint number
    /// `ordinal` fails to upload.
    pub fn ckpt_upload_fails(&self, group: CircleGroupId, ordinal: u32, attempt: u32) -> bool {
        self.ckpt_upload_fails_keyed(group_key(group), ordinal, attempt)
    }

    /// [`FaultInjector::ckpt_upload_fails`] with the group hash precomputed
    /// (see [`FaultInjector::storm_kill_after_keyed`]).
    pub fn ckpt_upload_fails_keyed(&self, key: u64, ordinal: u32, attempt: u32) -> bool {
        self.plan.ckpt_fail_prob > 0.0
            && self.draw(TAG_CKPT_FAIL, key, ordinal as u64, attempt as u64)
                < self.plan.ckpt_fail_prob
    }

    /// Extra upload hours if `group`'s checkpoint number `ordinal` hits a
    /// latency spike.
    pub fn ckpt_latency_spike(&self, group: CircleGroupId, ordinal: u32) -> Option<Hours> {
        self.ckpt_latency_spike_keyed(group_key(group), ordinal)
    }

    /// [`FaultInjector::ckpt_latency_spike`] with the group hash precomputed
    /// (see [`FaultInjector::storm_kill_after_keyed`]).
    pub fn ckpt_latency_spike_keyed(&self, key: u64, ordinal: u32) -> Option<Hours> {
        if self.plan.ckpt_latency_prob > 0.0
            && self.draw(TAG_CKPT_LATENCY, key, ordinal as u64, 0) < self.plan.ckpt_latency_prob
        {
            Some(self.plan.ckpt_latency_hours)
        } else {
            None
        }
    }

    /// Whether restore number `ordinal` against `key` (a group key or a
    /// caller-chosen coordinate for the on-demand restore) reads a
    /// corrupt image.
    pub fn restore_corrupted(&self, key: u64, ordinal: u32) -> bool {
        self.plan.restore_corrupt_prob > 0.0
            && self.draw(TAG_RESTORE, key, ordinal as u64, 0) < self.plan.restore_corrupt_prob
    }

    /// [`FaultInjector::restore_corrupted`] keyed by a circle group.
    pub fn restore_corrupted_for(&self, group: CircleGroupId, ordinal: u32) -> bool {
        self.restore_corrupted(group_key(group), ordinal)
    }

    /// Whether the market feed is gapped at adaptive window `window`.
    pub fn feed_gap_at(&self, window: u32) -> bool {
        self.plan.feed_gap_prob > 0.0
            && self.draw(TAG_FEED_GAP, window as u64, 0, 0) < self.plan.feed_gap_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceCatalog;
    use crate::zone::AvailabilityZone;

    fn gid(zone: AvailabilityZone) -> CircleGroupId {
        let cat = InstanceCatalog::paper_2014();
        CircleGroupId::new(cat.by_name("m1.small").unwrap(), zone)
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::quiet(), 1000.0);
        let g = gid(AvailabilityZone::UsEast1a);
        assert!(inj.storms().is_empty());
        assert_eq!(inj.storm_kill_after(g, 0.0), None);
        assert!(!inj.ckpt_upload_fails(g, 0, 1));
        assert_eq!(inj.ckpt_latency_spike(g, 0), None);
        assert!(!inj.restore_corrupted_for(g, 0));
        assert!(!inj.feed_gap_at(0));
    }

    #[test]
    fn keyed_variants_match_group_variants() {
        let plan = FaultPlan::parse("storm=0.1x0.5,ckpt-fail=0.3,ckpt-latency=0.4:0.25", 7)
            .expect("valid fault grammar");
        let inj = FaultInjector::new(plan, 500.0);
        for zone in [
            AvailabilityZone::UsEast1a,
            AvailabilityZone::UsEast1b,
            AvailabilityZone::UsEast1c,
        ] {
            let g = gid(zone);
            let key = group_key(g);
            for from in [0.0, 13.7, 250.0] {
                assert_eq!(
                    inj.storm_kill_after(g, from),
                    inj.storm_kill_after_keyed(key, from)
                );
            }
            for ordinal in 0..16 {
                for attempt in 1..4 {
                    assert_eq!(
                        inj.ckpt_upload_fails(g, ordinal, attempt),
                        inj.ckpt_upload_fails_keyed(key, ordinal, attempt)
                    );
                }
                assert_eq!(
                    inj.ckpt_latency_spike(g, ordinal),
                    inj.ckpt_latency_spike_keyed(key, ordinal)
                );
            }
        }
    }

    #[test]
    fn queries_are_pure_and_order_independent() {
        let plan = FaultPlan {
            seed: 42,
            storm_rate_per_hour: 0.1,
            storm_group_prob: 0.5,
            ckpt_fail_prob: 0.5,
            ckpt_latency_prob: 0.5,
            ckpt_latency_hours: 0.25,
            restore_corrupt_prob: 0.5,
            feed_gap_prob: 0.5,
            ..FaultPlan::quiet()
        };
        let a = FaultInjector::new(plan, 500.0);
        let b = FaultInjector::new(plan, 500.0);
        let g = gid(AvailabilityZone::UsEast1a);
        assert_eq!(a.storms(), b.storms());
        // Query b in a scrambled order; answers must match a's.
        let probes: Vec<bool> = (0..50).map(|i| a.ckpt_upload_fails(g, i, 1)).collect();
        let scrambled: Vec<bool> = (0..50)
            .rev()
            .map(|i| b.ckpt_upload_fails(g, i, 1))
            .rev()
            .collect();
        assert_eq!(probes, scrambled);
        assert_eq!(a.storm_kill_after(g, 10.0), b.storm_kill_after(g, 10.0));
        for w in 0..20 {
            assert_eq!(a.feed_gap_at(w), b.feed_gap_at(w));
        }
    }

    #[test]
    fn seeds_decorrelate_fault_streams() {
        let base = FaultPlan {
            seed: 1,
            ckpt_fail_prob: 0.5,
            ..FaultPlan::quiet()
        };
        let a = FaultInjector::new(base, 100.0);
        let b = FaultInjector::new(FaultPlan { seed: 2, ..base }, 100.0);
        let g = gid(AvailabilityZone::UsEast1b);
        let va: Vec<bool> = (0..64).map(|i| a.ckpt_upload_fails(g, i, 1)).collect();
        let vb: Vec<bool> = (0..64).map(|i| b.ckpt_upload_fails(g, i, 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn storm_rate_roughly_matches_poisson_mean() {
        let plan = FaultPlan {
            seed: 9,
            storm_rate_per_hour: 0.05,
            storm_group_prob: 1.0,
            ..FaultPlan::quiet()
        };
        let inj = FaultInjector::new(plan, 10_000.0);
        let n = inj.storms().len() as f64;
        // Expect ~500; allow a generous band.
        assert!((350.0..650.0).contains(&n), "storms {n}");
        // Sorted, inside horizon.
        for w in inj.storms().windows(2) {
            assert!(w[0].at_hours < w[1].at_hours);
        }
        assert!(inj.storms().last().unwrap().at_hours < 10_000.0);
    }

    #[test]
    fn storm_membership_is_correlated_but_not_universal() {
        let plan = FaultPlan {
            seed: 3,
            storm_rate_per_hour: 0.02,
            storm_group_prob: 0.5,
            ..FaultPlan::quiet()
        };
        let inj = FaultInjector::new(plan, 5_000.0);
        let a = gid(AvailabilityZone::UsEast1a);
        let b = gid(AvailabilityZone::UsEast1b);
        // With p = 0.5 over ~100 storms, each group is hit by some storms
        // but not all, and the two groups' hit sets differ.
        let hits = |g| -> Vec<Hours> {
            let mut from = 0.0;
            let mut out = Vec::new();
            while let Some(t) = inj.storm_kill_after(g, from) {
                out.push(t);
                from = t + 1e-9;
            }
            out
        };
        let (ha, hb) = (hits(a), hits(b));
        assert!(!ha.is_empty() && ha.len() < inj.storms().len());
        assert_ne!(ha, hb);
    }

    #[test]
    fn retry_backoff_is_bounded_monotone_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_hours: 0.1,
            multiplier: 2.0,
            max_backoff_hours: 0.5,
            jitter: 0.0,
        };
        assert_eq!(p.backoff_hours(7, 1, 1), 0.1);
        assert_eq!(p.backoff_hours(7, 1, 2), 0.2);
        assert_eq!(p.backoff_hours(7, 1, 3), 0.4);
        assert_eq!(p.backoff_hours(7, 1, 4), 0.5); // capped
        let jittered = RetryPolicy { jitter: 0.25, ..p };
        let w1 = jittered.backoff_hours(7, 1, 2);
        assert_eq!(w1, jittered.backoff_hours(7, 1, 2), "jitter not seeded");
        assert!((0.15..=0.25).contains(&w1), "jittered {w1}");
        assert!(RetryPolicy::none().is_noop());
        assert_eq!(RetryPolicy::none().backoff_hours(7, 1, 1), 0.0);
        assert!(!RetryPolicy::default_io().is_noop());
    }

    #[test]
    fn spec_parsing_round_trips_every_class() {
        let p = FaultPlan::parse(
            "storm=0.05x0.8,storm-hours=2,ckpt-fail=0.3,ckpt-latency=0.2:0.5,\
             restore-corrupt=0.25,feed-gap=0.1",
            11,
        )
        .unwrap();
        assert_eq!(p.seed, 11);
        assert_eq!(p.storm_rate_per_hour, 0.05);
        assert_eq!(p.storm_group_prob, 0.8);
        assert_eq!(p.storm_duration_hours, 2.0);
        assert_eq!(p.ckpt_fail_prob, 0.3);
        assert_eq!(p.ckpt_latency_prob, 0.2);
        assert_eq!(p.ckpt_latency_hours, 0.5);
        assert_eq!(p.restore_corrupt_prob, 0.25);
        assert_eq!(p.feed_gap_prob, 0.1);
        assert!(!p.is_quiet());

        assert_eq!(
            FaultPlan::parse("storm=0.1", 0).unwrap().storm_group_prob,
            1.0
        );
        assert!(FaultPlan::parse("", 0).unwrap().is_quiet());
        assert!(FaultPlan::parse("bogus=1", 0).is_err());
        assert!(FaultPlan::parse("ckpt-fail=1.5", 0).is_err());
        assert!(FaultPlan::parse("ckpt-latency=0.5", 0).is_err());
        assert!(FaultPlan::parse("storm", 0).is_err());
    }

    #[test]
    fn plan_serializes() {
        let p = FaultPlan::parse("storm=0.05,feed-gap=0.5", 3).unwrap();
        let s = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
