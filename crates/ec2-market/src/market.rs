//! The [`SpotMarket`] facade: catalog + per-circle-group spot traces.
//!
//! A *circle group* (paper Section 3.1.1) is an independent group of spot
//! instances of one type in one availability zone. The market stores one
//! spot trace per (type, zone) pair and hands out estimation windows over
//! them. The optimizer and the replay engine both talk to this type, which
//! keeps "what the optimizer believed" (a history window) and "what actually
//! happened" (a later region of the same trace) cleanly separated.

use crate::failure::FailureEstimator;
use crate::instance::{InstanceCatalog, InstanceType, InstanceTypeId};
use crate::trace::{SpotTrace, TraceWindow};
use crate::tracegen::TraceGenerator;
use crate::zone::AvailabilityZone;
use crate::Hours;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identity of a circle group's market: an instance type in a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CircleGroupId {
    /// Instance type of every instance in the group.
    pub instance_type: InstanceTypeId,
    /// Availability zone the group lives in.
    pub zone: AvailabilityZone,
}

impl CircleGroupId {
    /// Construct from parts.
    pub fn new(instance_type: InstanceTypeId, zone: AvailabilityZone) -> Self {
        Self {
            instance_type,
            zone,
        }
    }
}

impl fmt::Display for CircleGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.instance_type, self.zone)
    }
}

/// A collection of spot price traces keyed by circle group, plus the
/// instance catalog they refer to.
///
/// ```
/// use ec2_market::instance::InstanceCatalog;
/// use ec2_market::market::{CircleGroupId, SpotMarket};
/// use ec2_market::trace::SpotTrace;
/// use ec2_market::zone::AvailabilityZone;
///
/// let catalog = InstanceCatalog::paper_2014();
/// let ty = catalog.by_name("m1.small").unwrap();
/// let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
///
/// let mut market = SpotMarket::new(catalog);
/// market.insert(id, SpotTrace::new(1.0, vec![0.1, 0.2, 0.1]));
///
/// assert_eq!(market.groups().count(), 1);
/// assert_eq!(market.instance_type(id).name, "m1.small");
/// assert_eq!(market.trace(id).unwrap().len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotMarket {
    catalog: InstanceCatalog,
    traces: BTreeMap<CircleGroupId, SpotTrace>,
}

impl SpotMarket {
    /// An empty market over a catalog.
    pub fn new(catalog: InstanceCatalog) -> Self {
        Self {
            catalog,
            traces: BTreeMap::new(),
        }
    }

    /// Generate a full market from a [`TraceGenerator`]: one trace per
    /// calibrated (type, zone) pair.
    pub fn generate(
        catalog: InstanceCatalog,
        generator: &TraceGenerator,
        duration_hours: Hours,
        step_hours: Hours,
    ) -> Self {
        let mut market = Self::new(catalog);
        let pairs: Vec<_> = generator.profile().pairs().collect();
        for (ty, zone) in pairs {
            let trace = generator.generate(ty, zone, duration_hours, step_hours);
            market.insert(CircleGroupId::new(ty, zone), trace);
        }
        market
    }

    /// The instance catalog.
    pub fn catalog(&self) -> &InstanceCatalog {
        &self.catalog
    }

    /// Instance type details for a circle group.
    pub fn instance_type(&self, id: CircleGroupId) -> &InstanceType {
        self.catalog.get(id.instance_type)
    }

    /// Insert (or replace) a trace.
    pub fn insert(&mut self, id: CircleGroupId, trace: SpotTrace) {
        self.traces.insert(id, trace);
    }

    /// Trace for a circle group.
    pub fn trace(&self, id: CircleGroupId) -> Option<&SpotTrace> {
        self.traces.get(&id)
    }

    /// All circle groups with traces, in deterministic order.
    pub fn groups(&self) -> impl Iterator<Item = CircleGroupId> + '_ {
        self.traces.keys().copied()
    }

    /// Number of circle groups.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the market has no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// A history window `[start, start+len)` of a group's trace, for
    /// estimation. Panics if the group has no trace.
    pub fn history(&self, id: CircleGroupId, start: Hours, len: Hours) -> TraceWindow<'_> {
        self.traces
            .get(&id)
            .unwrap_or_else(|| panic!("no trace for circle group {id}"))
            .window(start, len)
    }

    /// Failure/price estimator built on a history window of a group.
    pub fn estimator(&self, id: CircleGroupId, start: Hours, len: Hours) -> FailureEstimator {
        FailureEstimator::from_window(self.history(id, start, len))
    }

    /// Shortest trace duration across all groups — the usable market horizon.
    pub fn horizon(&self) -> Hours {
        self.traces
            .values()
            .map(SpotTrace::duration)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::MarketProfile;

    fn paper_market() -> SpotMarket {
        let catalog = InstanceCatalog::paper_2014();
        let profile = MarketProfile::paper_2014(&catalog);
        let generator = TraceGenerator::new(profile, 1);
        SpotMarket::generate(catalog, &generator, 96.0, 1.0 / 12.0)
    }

    #[test]
    fn generated_market_covers_all_pairs() {
        let m = paper_market();
        // 5 types × 3 zones.
        assert_eq!(m.len(), 15);
        assert!((m.horizon() - 96.0).abs() < 1.0);
    }

    #[test]
    fn groups_are_deterministically_ordered() {
        let m = paper_market();
        let a: Vec<_> = m.groups().collect();
        let b: Vec<_> = m.groups().collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
    }

    #[test]
    fn history_and_estimator_work() {
        let m = paper_market();
        let id = m.groups().next().unwrap();
        let w = m.history(id, 0.0, 48.0);
        assert!(w.duration() > 47.0);
        let est = m.estimator(id, 0.0, 48.0);
        assert!(est.max_price() > 0.0);
    }

    #[test]
    fn instance_type_lookup_roundtrips() {
        let m = paper_market();
        for id in m.groups().collect::<Vec<_>>() {
            let ty = m.instance_type(id);
            assert!(ty.cores >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "no trace")]
    fn history_for_unknown_group_panics() {
        let catalog = InstanceCatalog::paper_2014();
        let ty = catalog.by_name("m1.small").unwrap();
        let m = SpotMarket::new(catalog);
        m.history(CircleGroupId::new(ty, AvailabilityZone::UsEast1a), 0.0, 1.0);
    }
}
