//! The [`SpotMarket`] facade: catalog + per-circle-group spot traces.
//!
//! A *circle group* (paper Section 3.1.1) is an independent group of spot
//! instances of one type in one availability zone. The market stores one
//! spot trace per (type, zone) pair and hands out estimation windows over
//! them. The optimizer and the replay engine both talk to this type, which
//! keeps "what the optimizer believed" (a history window) and "what actually
//! happened" (a later region of the same trace) cleanly separated.

use crate::death::{DeathTimeCache, DeathTimeTable};
use crate::failure::FailureEstimator;
use crate::index::{TraceIndex, TraceQuery};
use crate::instance::{InstanceCatalog, InstanceType, InstanceTypeId};
use crate::trace::{SpotTrace, TraceWindow};
use crate::tracegen::TraceGenerator;
use crate::zone::AvailabilityZone;
use crate::Hours;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identity of a circle group's market: an instance type in a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CircleGroupId {
    /// Instance type of every instance in the group.
    pub instance_type: InstanceTypeId,
    /// Availability zone the group lives in.
    pub zone: AvailabilityZone,
}

impl CircleGroupId {
    /// Construct from parts.
    pub fn new(instance_type: InstanceTypeId, zone: AvailabilityZone) -> Self {
        Self {
            instance_type,
            zone,
        }
    }
}

impl fmt::Display for CircleGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.instance_type, self.zone)
    }
}

/// A lookup referenced a circle group the market holds no trace (or trace
/// configuration) for.
///
/// Market lookups used to panic on unknown groups; they now return this
/// error so callers higher up the stack can surface it as
/// `SompiError::UnknownGroup` instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownGroupError {
    /// Display form of the missing group id.
    pub group: String,
}

impl UnknownGroupError {
    /// Error for a missing (type, zone) pair.
    pub fn new(id: CircleGroupId) -> Self {
        Self {
            group: id.to_string(),
        }
    }
}

impl fmt::Display for UnknownGroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no market trace for circle group {}", self.group)
    }
}

impl std::error::Error for UnknownGroupError {}

/// A collection of spot price traces keyed by circle group, plus the
/// instance catalog they refer to.
///
/// ```
/// use ec2_market::instance::InstanceCatalog;
/// use ec2_market::market::{CircleGroupId, SpotMarket};
/// use ec2_market::trace::SpotTrace;
/// use ec2_market::zone::AvailabilityZone;
///
/// let catalog = InstanceCatalog::paper_2014();
/// let ty = catalog.by_name("m1.small").unwrap();
/// let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
///
/// let mut market = SpotMarket::new(catalog);
/// market.insert(id, SpotTrace::new(1.0, vec![0.1, 0.2, 0.1]));
///
/// assert_eq!(market.groups().count(), 1);
/// assert_eq!(market.instance_type(id).name, "m1.small");
/// assert_eq!(market.trace(id).unwrap().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SpotMarket {
    catalog: InstanceCatalog,
    traces: BTreeMap<CircleGroupId, SpotTrace>,
    /// Lazily built per-trace query indexes. `OnceLock` gives exactly-once
    /// construction behind `&self`, so Monte-Carlo worker threads share one
    /// immutable index per trace; the slots are derived state and are not
    /// serialized.
    indexes: BTreeMap<CircleGroupId, OnceLock<TraceIndex>>,
    /// Whether [`SpotMarket::query`] serves indexed queries. Disabled by
    /// the `--no-trace-index` ablation flag; results are bit-identical
    /// either way (enforced by the differential suite).
    index_enabled: bool,
    /// Memoized per-(group, bid) death/launch time tables for the batched
    /// replay path. Like the index slots this is derived state — built on
    /// first use, shared read-only across Monte-Carlo workers and
    /// tournament cells, never serialized, and dropped for a group when
    /// its trace is replaced.
    death_tables: DeathTimeCache<CircleGroupId>,
}

impl SpotMarket {
    /// An empty market over a catalog.
    pub fn new(catalog: InstanceCatalog) -> Self {
        Self {
            catalog,
            traces: BTreeMap::new(),
            indexes: BTreeMap::new(),
            index_enabled: true,
            death_tables: DeathTimeCache::new(),
        }
    }

    /// Generate a full market from a [`TraceGenerator`]: one trace per
    /// calibrated (type, zone) pair.
    pub fn generate(
        catalog: InstanceCatalog,
        generator: &TraceGenerator,
        duration_hours: Hours,
        step_hours: Hours,
    ) -> Self {
        let mut market = Self::new(catalog);
        for (ty, zone, trace) in generator.generate_all(duration_hours, step_hours) {
            market.insert(CircleGroupId::new(ty, zone), trace);
        }
        market
    }

    /// The instance catalog.
    pub fn catalog(&self) -> &InstanceCatalog {
        &self.catalog
    }

    /// Instance type details for a circle group.
    pub fn instance_type(&self, id: CircleGroupId) -> &InstanceType {
        self.catalog.get(id.instance_type)
    }

    /// Insert (or replace) a trace. Any previously built index for the
    /// group is dropped (it would describe the old samples).
    pub fn insert(&mut self, id: CircleGroupId, trace: SpotTrace) {
        self.traces.insert(id, trace);
        self.indexes.insert(id, OnceLock::new());
        self.death_tables.invalidate(id);
    }

    /// Trace for a circle group.
    pub fn trace(&self, id: CircleGroupId) -> Option<&SpotTrace> {
        self.traces.get(&id)
    }

    /// Query surface for a circle group: the trace plus — when trace
    /// indexing is enabled — its lazily built [`TraceIndex`]. This is what
    /// the replay executors use for launch/death searches; answers are
    /// bit-identical whether or not the index is enabled.
    pub fn query(&self, id: CircleGroupId) -> Option<TraceQuery<'_>> {
        let trace = self.traces.get(&id)?;
        let index = if self.index_enabled {
            self.indexes
                .get(&id)
                .map(|slot| slot.get_or_init(|| TraceIndex::build(trace)))
        } else {
            None
        };
        Some(TraceQuery::new(trace, index))
    }

    /// Memoized death/launch time table for `(id, bid)`, built on first use
    /// and shared read-only afterwards. Returns `(table, freshly_built)`,
    /// or `None` when the group has no trace or the trace is too long for
    /// the table's `u32` indexes (callers fall back to [`SpotMarket::query`]).
    pub fn death_table(
        &self,
        id: CircleGroupId,
        bid: crate::Usd,
    ) -> Option<(Arc<DeathTimeTable>, bool)> {
        let trace = self.traces.get(&id)?;
        self.death_tables.get_or_build(id, bid, trace)
    }

    /// Number of death/launch tables currently cached.
    pub fn death_tables_cached(&self) -> usize {
        self.death_tables.len()
    }

    /// Enable or disable indexed queries (the `--no-trace-index` ablation).
    pub fn set_trace_index_enabled(&mut self, enabled: bool) {
        self.index_enabled = enabled;
    }

    /// Whether [`SpotMarket::query`] serves indexed queries.
    pub fn trace_index_enabled(&self) -> bool {
        self.index_enabled
    }

    /// Builder-style [`SpotMarket::set_trace_index_enabled`]`(false)`.
    pub fn without_trace_index(mut self) -> Self {
        self.index_enabled = false;
        self
    }

    /// Force-build every group's index now. Benchmarks call this so build
    /// cost is excluded from query timings; normal use relies on the lazy
    /// per-group build in [`SpotMarket::query`].
    pub fn build_indexes(&self) {
        if !self.index_enabled {
            return;
        }
        for id in self.traces.keys() {
            self.query(*id);
        }
    }

    /// All circle groups with traces, in deterministic order.
    pub fn groups(&self) -> impl Iterator<Item = CircleGroupId> + '_ {
        self.traces.keys().copied()
    }

    /// Number of circle groups.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the market has no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// A history window `[start, start+len)` of a group's trace, for
    /// estimation. Errors when the group has no trace.
    pub fn try_history(
        &self,
        id: CircleGroupId,
        start: Hours,
        len: Hours,
    ) -> Result<TraceWindow<'_>, UnknownGroupError> {
        self.traces
            .get(&id)
            .map(|t| t.window(start, len))
            .ok_or_else(|| UnknownGroupError::new(id))
    }

    /// Failure/price estimator built on a history window of a group.
    /// Errors when the group has no trace.
    pub fn try_estimator(
        &self,
        id: CircleGroupId,
        start: Hours,
        len: Hours,
    ) -> Result<FailureEstimator, UnknownGroupError> {
        Ok(FailureEstimator::from_window(
            self.try_history(id, start, len)?,
        ))
    }

    /// Estimators over the same history window for every traced group, in
    /// deterministic group order. Infallible by construction — the ids come
    /// straight from the trace map.
    pub fn estimators(
        &self,
        start: Hours,
        len: Hours,
    ) -> impl Iterator<Item = (CircleGroupId, FailureEstimator)> + '_ {
        self.traces
            .iter()
            .map(move |(id, t)| (*id, FailureEstimator::from_window(t.window(start, len))))
    }

    /// Shortest trace duration across all groups — the usable market horizon.
    pub fn horizon(&self) -> Hours {
        self.traces
            .values()
            .map(SpotTrace::duration)
            .fold(f64::INFINITY, f64::min)
    }
}

// Manual serde impls: the index slots are derived state (rebuilt lazily on
// demand) and must not leak into the serialized shape, which stays
// `{catalog, traces}` exactly as the old derive produced; the vendored
// `serde_derive` has no `#[serde(skip)]`. A deserialized market comes back
// with indexing enabled — the ablation flag is a runtime switch, not data.
impl Serialize for SpotMarket {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("catalog".to_string(), self.catalog.to_value()),
            ("traces".to_string(), self.traces.to_value()),
        ])
    }
}

impl Deserialize for SpotMarket {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let catalog = InstanceCatalog::from_value(v.field("catalog"))?;
        let traces = BTreeMap::<CircleGroupId, SpotTrace>::from_value(v.field("traces"))?;
        let indexes = traces.keys().map(|id| (*id, OnceLock::new())).collect();
        Ok(Self {
            catalog,
            traces,
            indexes,
            index_enabled: true,
            death_tables: DeathTimeCache::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::MarketProfile;

    fn paper_market() -> SpotMarket {
        let catalog = InstanceCatalog::paper_2014();
        let profile = MarketProfile::paper_2014(&catalog);
        let generator = TraceGenerator::new(profile, 1);
        SpotMarket::generate(catalog, &generator, 96.0, 1.0 / 12.0)
    }

    #[test]
    fn generated_market_covers_all_pairs() {
        let m = paper_market();
        // 5 types × 3 zones.
        assert_eq!(m.len(), 15);
        assert!((m.horizon() - 96.0).abs() < 1.0);
    }

    #[test]
    fn groups_are_deterministically_ordered() {
        let m = paper_market();
        let a: Vec<_> = m.groups().collect();
        let b: Vec<_> = m.groups().collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
    }

    #[test]
    fn history_and_estimator_work() {
        let m = paper_market();
        let id = m.groups().next().unwrap();
        let w = m.try_history(id, 0.0, 48.0).unwrap();
        assert!(w.duration() > 47.0);
        let est = m.try_estimator(id, 0.0, 48.0).unwrap();
        assert!(est.max_price() > 0.0);
        let all: Vec<_> = m.estimators(0.0, 48.0).collect();
        assert_eq!(all.len(), m.len());
        assert_eq!(all[0].0, id);
        assert_eq!(all[0].1.digest(), est.digest());
    }

    #[test]
    fn instance_type_lookup_roundtrips() {
        let m = paper_market();
        for id in m.groups().collect::<Vec<_>>() {
            let ty = m.instance_type(id);
            assert!(ty.cores >= 1);
        }
    }

    #[test]
    fn query_is_indexed_only_when_enabled() {
        let mut m = paper_market();
        let id = m.groups().next().unwrap();
        assert!(m.trace_index_enabled());
        assert!(m.query(id).unwrap().indexed());
        m.set_trace_index_enabled(false);
        assert!(!m.query(id).unwrap().indexed());
        let m = m.without_trace_index();
        assert!(!m.query(id).unwrap().indexed());
    }

    #[test]
    fn indexed_and_naive_queries_agree_on_generated_market() {
        let m = paper_market();
        let plain = m.clone().without_trace_index();
        m.build_indexes();
        for id in m.groups().collect::<Vec<_>>() {
            let qi = m.query(id).unwrap();
            let qn = plain.query(id).unwrap();
            assert!(qi.indexed() && !qn.indexed());
            for k in 0..40 {
                let start = k as f64 * 2.37;
                let bid = qi.min_price() + (qi.max_price() - qi.min_price()) * (k as f64 / 40.0);
                assert_eq!(
                    qi.first_passage_above(start, bid),
                    qn.first_passage_above(start, bid)
                );
                assert_eq!(
                    qi.launch_time(start, bid, start + 30.0),
                    qn.launch_time(start, bid, start + 30.0)
                );
            }
        }
    }

    #[test]
    fn serde_roundtrip_skips_index_state() {
        let m = paper_market();
        m.build_indexes();
        let v = m.to_value();
        assert!(v.get("indexes").is_none() && v.get("index_enabled").is_none());
        let back = SpotMarket::from_value(&v).unwrap();
        assert_eq!(back.len(), m.len());
        assert!(back.trace_index_enabled());
        for id in m.groups().collect::<Vec<_>>() {
            assert_eq!(back.trace(id), m.trace(id));
        }
    }

    #[test]
    fn death_tables_match_queries_and_invalidate_on_insert() {
        let mut m = paper_market();
        let id = m.groups().next().unwrap();
        let q = m.query(id).unwrap();
        let bid = (q.min_price() + q.max_price()) / 2.0;
        let (table, built) = m.death_table(id, bid).unwrap();
        assert!(built);
        for k in 0..25 {
            let start = k as f64 * 3.1;
            assert_eq!(
                table.first_passage_above(start),
                q.first_passage_above(start, bid)
            );
            assert_eq!(
                table.launch_time(start, start + 40.0),
                q.launch_time(start, bid, start + 40.0)
            );
        }
        let (again, rebuilt) = m.death_table(id, bid).unwrap();
        assert!(!rebuilt);
        assert!(std::sync::Arc::ptr_eq(&table, &again));
        assert_eq!(m.death_tables_cached(), 1);
        // Replacing the trace drops the stale table.
        let fresh = m.trace(id).unwrap().clone();
        m.insert(id, fresh);
        assert_eq!(m.death_tables_cached(), 0);
    }

    #[test]
    fn history_for_unknown_group_is_an_error_not_a_panic() {
        let catalog = InstanceCatalog::paper_2014();
        let ty = catalog.by_name("m1.small").unwrap();
        let m = SpotMarket::new(catalog);
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let err = m.try_history(id, 0.0, 1.0).unwrap_err();
        assert_eq!(err, UnknownGroupError::new(id));
        assert!(err.to_string().contains("no market trace for circle group"));
        assert!(err.to_string().contains(&id.to_string()));
        assert!(m.try_estimator(id, 0.0, 1.0).is_err());
    }
}
