//! Precomputed per-trace query indexes for the replay hot path.
//!
//! The paper's evaluation replays each candidate plan against price history
//! "one million times" from random start points (Section 5). Every replica
//! asks the same two questions of a trace — *when does the price first rise
//! above the bid?* (the out-of-bid death) and *when does it first fall to or
//! below the bid?* (the launch) — and the naive answers scan raw samples in
//! O(n). This module precomputes, once per trace:
//!
//! * a **sparse-table range-max/min structure** ([`TraceIndex`]): O(n log n)
//!   build, O(1) max/min over any sample window, and O(log n) first-passage
//!   queries by binary descent over the O(1) range queries;
//! * a **[`PrefixHistogram`]** of sorted canonical (dyadic) blocks: exact
//!   integer counts of samples matching any monotone price predicate over
//!   any sample window in O(log² n), which serves arbitrary-binned
//!   [`PriceHistogram`]s in O(bins · log² n) instead of O(window).
//!
//! **Exactness is non-negotiable.** Every query here is bit-identical to
//! the linear scan it replaces: a range max/min of finite floats is always
//! one of the actual samples, so the descent condition "no sample above the
//! bid in this block" is *exactly* the naive per-element comparison, and
//! first-passage times are materialized with the same arithmetic form
//! (`i as f64 * step_hours`) the naive paths use. The differential suite in
//! `tests/replay_index_differential.rs` and the randomized equality
//! properties in `tests/properties.rs` enforce this.
//!
//! [`TraceQuery`] bundles a borrowed trace with its (optional) index so the
//! executors can write one code path and let [`crate::market::SpotMarket`]
//! decide — via its `--no-trace-index` ablation flag — whether queries go
//! through the index or the naive scans.

use crate::histogram::PriceHistogram;
use crate::trace::SpotTrace;
use crate::{Hours, Usd};

/// floor(log2(x)) for x >= 1.
fn floor_log2(x: usize) -> usize {
    (usize::BITS - 1 - x.leading_zeros()) as usize
}

/// Immutable range-query index over one trace's price samples.
///
/// Built once per trace (lazily, on first use) and shared read-only across
/// Monte-Carlo worker threads.
#[derive(Debug, Clone)]
pub struct TraceIndex {
    /// `max_table[k][i]` = max of samples `[i, i + 2^k)`; level 0 is a copy
    /// of the samples themselves.
    max_table: Vec<Vec<Usd>>,
    /// Same layout for minima.
    min_table: Vec<Vec<Usd>>,
    /// Sorted canonical blocks for exact windowed counting.
    hist: PrefixHistogram,
}

impl TraceIndex {
    /// Build the index for a trace. O(n log n) time and memory.
    pub fn build(trace: &SpotTrace) -> Self {
        Self::from_samples(trace.samples())
    }

    /// Build from raw samples (must be non-empty, finite, non-negative —
    /// the [`SpotTrace`] constructor invariants).
    pub fn from_samples(prices: &[Usd]) -> Self {
        assert!(!prices.is_empty(), "cannot index an empty trace");
        let n = prices.len();
        let levels = floor_log2(n) + 1;
        let mut max_table = Vec::with_capacity(levels);
        let mut min_table = Vec::with_capacity(levels);
        max_table.push(prices.to_vec());
        min_table.push(prices.to_vec());
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let m = n + 1 - (1usize << k);
            let (prev_max, prev_min) = (&max_table[k - 1], &min_table[k - 1]);
            let mut row_max = Vec::with_capacity(m);
            let mut row_min = Vec::with_capacity(m);
            for i in 0..m {
                row_max.push(prev_max[i].max(prev_max[i + half]));
                row_min.push(prev_min[i].min(prev_min[i + half]));
            }
            max_table.push(row_max);
            min_table.push(row_min);
        }
        Self {
            max_table,
            min_table,
            hist: PrefixHistogram::build(prices),
        }
    }

    /// Number of indexed samples.
    pub fn len(&self) -> usize {
        self.max_table[0].len()
    }

    /// Whether the index is empty (never true for a built index).
    pub fn is_empty(&self) -> bool {
        self.max_table[0].is_empty()
    }

    /// Maximum sample over `[l, r)`. O(1). Requires `l < r <= len`.
    pub fn range_max(&self, l: usize, r: usize) -> Usd {
        debug_assert!(l < r && r <= self.len());
        let k = floor_log2(r - l);
        let row = &self.max_table[k];
        row[l].max(row[r - (1usize << k)])
    }

    /// Minimum sample over `[l, r)`. O(1). Requires `l < r <= len`.
    pub fn range_min(&self, l: usize, r: usize) -> Usd {
        debug_assert!(l < r && r <= self.len());
        let k = floor_log2(r - l);
        let row = &self.min_table[k];
        row[l].min(row[r - (1usize << k)])
    }

    /// Smallest index `i >= lo` with `samples[i] > bid`, or `None`.
    /// O(log n) binary descent over O(1) range-max queries.
    pub fn first_above(&self, lo: usize, bid: Usd) -> Option<usize> {
        self.descend(lo, |ix, l, r| ix.range_max(l, r) > bid)
    }

    /// Smallest index `i >= lo` with `samples[i] <= bid`, or `None`.
    /// O(log n) binary descent over O(1) range-min queries.
    pub fn first_at_or_below(&self, lo: usize, bid: Usd) -> Option<usize> {
        self.descend(lo, |ix, l, r| ix.range_min(l, r) <= bid)
    }

    /// Binary descent: `hit(l, r)` must mean "some sample in `[l, r)`
    /// matches", which holds exactly for range-max/min threshold tests
    /// because the range extremum is itself one of the samples.
    fn descend(&self, lo: usize, hit: impl Fn(&Self, usize, usize) -> bool) -> Option<usize> {
        let n = self.len();
        if lo >= n || !hit(self, lo, n) {
            return None;
        }
        let (mut l, mut r) = (lo, n);
        while r - l > 1 {
            let mid = l + (r - l) / 2;
            if hit(self, l, mid) {
                r = mid;
            } else {
                l = mid;
            }
        }
        Some(l)
    }

    /// The windowed-counting structure.
    pub fn histogram(&self) -> &PrefixHistogram {
        &self.hist
    }
}

/// Sorted canonical (dyadic) blocks over a trace's samples — a
/// merge-sort-tree generalization of "cumulative counts at quantized price
/// levels" that stays **exact** for arbitrary bin boundaries: any window
/// `[l, r)` decomposes into O(log n) aligned power-of-two blocks, each
/// stored sorted, so the number of samples matching a monotone predicate
/// (such as "falls in bin ≤ b") is a sum of `partition_point`s — exact
/// integer counts, no quantization error.
#[derive(Debug, Clone)]
pub struct PrefixHistogram {
    n: usize,
    /// `levels[k]` is the concatenation of sorted blocks of size `2^k`;
    /// block `j` occupies `levels[k][j*2^k .. (j+1)*2^k]`. Only full,
    /// aligned blocks are stored (partial tails are never canonical).
    levels: Vec<Vec<Usd>>,
}

impl PrefixHistogram {
    /// Build from raw samples. O(n log n) time and memory.
    pub fn build(prices: &[Usd]) -> Self {
        assert!(!prices.is_empty(), "cannot index an empty trace");
        let n = prices.len();
        let level_count = floor_log2(n) + 1;
        let mut levels: Vec<Vec<Usd>> = Vec::with_capacity(level_count);
        levels.push(prices.to_vec());
        for k in 1..level_count {
            let half = 1usize << (k - 1);
            let nblocks = n >> k;
            let prev = &levels[k - 1];
            let mut row = Vec::with_capacity(nblocks << k);
            for j in 0..nblocks {
                let a = &prev[(2 * j) * half..(2 * j + 1) * half];
                let b = &prev[(2 * j + 1) * half..(2 * j + 2) * half];
                let (mut i, mut jj) = (0, 0);
                while i < a.len() && jj < b.len() {
                    if a[i] <= b[jj] {
                        row.push(a[i]);
                        i += 1;
                    } else {
                        row.push(b[jj]);
                        jj += 1;
                    }
                }
                row.extend_from_slice(&a[i..]);
                row.extend_from_slice(&b[jj..]);
            }
            levels.push(row);
        }
        Self { n, levels }
    }

    /// Number of indexed samples.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the structure is empty (never true once built).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Count of samples in `[l, r)` matching `pred`, where `pred` must be
    /// *downward-closed in price* (if it holds for `p` it holds for every
    /// `p' <= p`) so that matches form a prefix of each sorted block.
    /// O(log² n).
    pub fn count_matching(&self, mut l: usize, r: usize, pred: impl Fn(Usd) -> bool) -> u64 {
        assert!(l <= r && r <= self.n, "window out of bounds");
        let mut total = 0u64;
        while l < r {
            let k_align = if l == 0 {
                usize::MAX
            } else {
                l.trailing_zeros() as usize
            };
            let k = k_align.min(floor_log2(r - l)).min(self.levels.len() - 1);
            let size = 1usize << k;
            let block = &self.levels[k][l..l + size];
            total += block.partition_point(|&p| pred(p)) as u64;
            l += size;
        }
        total
    }

    /// Bin counts over the sample window `[l, r)`, binned exactly as
    /// [`PriceHistogram::from_window`] bins (range `[lo, hi)`, out-of-range
    /// samples clamped into the edge bins). The bin function is monotone in
    /// the price, so each cumulative count "bin ≤ b" is a monotone
    /// predicate; per-bin counts are adjacent differences of exact integer
    /// ranks. O(bins · log² n).
    pub fn bin_counts(&self, l: usize, r: usize, lo: Usd, hi: Usd, bins: usize) -> Vec<u64> {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let width = (hi - lo) / bins as f64;
        let bin_of = |p: Usd| {
            if p < lo {
                0
            } else {
                (((p - lo) / width) as usize).min(bins - 1)
            }
        };
        let mut counts = vec![0u64; bins];
        let mut prev = 0u64;
        for (b, slot) in counts.iter_mut().enumerate() {
            let cum = self.count_matching(l, r, |p| bin_of(p) <= b);
            *slot = cum - prev;
            prev = cum;
        }
        counts
    }
}

/// A borrowed trace plus its (optional) index: the single query surface the
/// replay executors use, so the indexed and naive paths share one call site
/// and the `--no-trace-index` ablation switches implementations, never
/// semantics.
#[derive(Debug, Clone, Copy)]
pub struct TraceQuery<'a> {
    trace: &'a SpotTrace,
    index: Option<&'a TraceIndex>,
}

impl<'a> TraceQuery<'a> {
    /// Bundle a trace with an optional index.
    pub fn new(trace: &'a SpotTrace, index: Option<&'a TraceIndex>) -> Self {
        Self { trace, index }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a SpotTrace {
        self.trace
    }

    /// Whether queries are served by the index.
    pub fn indexed(&self) -> bool {
        self.index.is_some()
    }

    /// First-passage time above `bid` from `start` — the out-of-bid death.
    /// Bit-identical to [`SpotTrace::first_passage_above`], in O(log n)
    /// when indexed.
    pub fn first_passage_above(&self, start: Hours, bid: Usd) -> Option<Hours> {
        match self.index {
            None => self.trace.first_passage_above(start, bid),
            Some(ix) => {
                let lo = self.trace.index_at(start.max(0.0));
                ix.first_above(lo, bid)
                    .map(|i| i as f64 * self.trace.step_hours())
                    .map(|t| t.max(start))
            }
        }
    }

    /// Launch time: earliest time `>= start` (strictly before `cutoff`)
    /// with the price at or below `bid`. Bit-identical to
    /// [`SpotTrace::first_time_at_or_below`], in O(log n) when indexed.
    pub fn launch_time(&self, start: Hours, bid: Usd, cutoff: Hours) -> Option<Hours> {
        match self.index {
            None => self.trace.first_time_at_or_below(start, bid, cutoff),
            Some(ix) => {
                if start >= cutoff || start >= self.trace.duration() {
                    return None;
                }
                let lo = self.trace.index_at(start);
                if self.trace.samples()[lo] <= bid {
                    return Some(start);
                }
                ix.first_at_or_below(lo + 1, bid)
                    .map(|i| i as f64 * self.trace.step_hours())
                    .filter(|&t| t < cutoff)
            }
        }
    }

    /// Whole-trace maximum price. O(1) either way (the trace caches it).
    pub fn max_price(&self) -> Usd {
        self.trace.max_price()
    }

    /// Whole-trace minimum price. O(1) either way (the trace caches it).
    pub fn min_price(&self) -> Usd {
        self.trace.min_price()
    }

    /// Price histogram of the window `[start, start + len_hours)`,
    /// bit-identical to [`PriceHistogram::from_window`] over
    /// [`SpotTrace::window`], served from the [`PrefixHistogram`] in
    /// O(bins · log² n) when indexed.
    pub fn histogram(
        &self,
        start: Hours,
        len_hours: Hours,
        lo: Usd,
        hi: Usd,
        bins: usize,
    ) -> PriceHistogram {
        match self.index {
            None => PriceHistogram::from_window(self.trace.window(start, len_hours), lo, hi, bins),
            Some(ix) => {
                // Mirror SpotTrace::window's clamping exactly.
                let l = self.trace.index_at(start.max(0.0));
                let want = (len_hours / self.trace.step_hours()).ceil() as usize;
                let r = (l + want.max(1)).min(self.trace.len());
                PriceHistogram::from_counts(lo, hi, ix.histogram().bin_counts(l, r, lo, hi, bins))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator (xorshift64*) so the differential
    /// checks don't need an external RNG crate.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn price(&mut self) -> f64 {
            // Coarse grid so equal prices (bid ties) actually occur.
            (self.next() % 1000) as f64 / 1000.0
        }
    }

    fn random_trace(rng: &mut Rng, len: usize, step: f64) -> SpotTrace {
        SpotTrace::new(step, (0..len).map(|_| rng.price()).collect())
    }

    #[test]
    fn range_extrema_match_scans() {
        let mut rng = Rng(7);
        for len in [1usize, 2, 3, 7, 64, 100, 257] {
            let tr = random_trace(&mut rng, len, 1.0 / 12.0);
            let ix = TraceIndex::build(&tr);
            let s = tr.samples();
            for l in 0..len {
                for r in (l + 1..=len).step_by(1 + len / 17) {
                    let max = s[l..r].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let min = s[l..r].iter().cloned().fold(f64::INFINITY, f64::min);
                    assert_eq!(ix.range_max(l, r), max);
                    assert_eq!(ix.range_min(l, r), min);
                }
            }
        }
    }

    #[test]
    fn first_above_and_below_match_scans() {
        let mut rng = Rng(13);
        for len in [1usize, 2, 5, 33, 128, 300] {
            let tr = random_trace(&mut rng, len, 0.5);
            let ix = TraceIndex::build(&tr);
            let s = tr.samples();
            for lo in 0..=len {
                for bid in [
                    0.0,
                    0.1,
                    0.25,
                    0.5,
                    0.9,
                    1.0,
                    s.first().copied().unwrap_or(0.0),
                ] {
                    let naive_above = (lo..len).find(|&i| s[i] > bid);
                    let naive_below = (lo..len).find(|&i| s[i] <= bid);
                    assert_eq!(
                        ix.first_above(lo, bid),
                        naive_above,
                        "len {len} lo {lo} bid {bid}"
                    );
                    assert_eq!(ix.first_at_or_below(lo, bid), naive_below);
                }
            }
        }
    }

    #[test]
    fn query_first_passage_is_bit_identical() {
        let mut rng = Rng(99);
        for len in [1usize, 3, 50, 240] {
            let tr = random_trace(&mut rng, len, 1.0 / 12.0);
            let ix = TraceIndex::build(&tr);
            let q = TraceQuery::new(&tr, Some(&ix));
            for i in 0..40 {
                let start = (rng.next() % 400) as f64 * 0.077 - 1.0;
                let bid = rng.price();
                assert_eq!(
                    q.first_passage_above(start, bid),
                    tr.first_passage_above(start, bid),
                    "len {len} iter {i} start {start} bid {bid}"
                );
            }
        }
    }

    #[test]
    fn query_launch_time_is_bit_identical() {
        let mut rng = Rng(5);
        for len in [1usize, 2, 17, 300] {
            let tr = random_trace(&mut rng, len, 1.0 / 12.0);
            let ix = TraceIndex::build(&tr);
            let q = TraceQuery::new(&tr, Some(&ix));
            for _ in 0..60 {
                let start = (rng.next() % 500) as f64 * 0.061 - 0.5;
                let bid = rng.price();
                let cutoff = start + (rng.next() % 300) as f64 * 0.093;
                assert_eq!(
                    q.launch_time(start, bid, cutoff),
                    tr.first_time_at_or_below(start, bid, cutoff),
                    "len {len} start {start} bid {bid} cutoff {cutoff}"
                );
            }
        }
    }

    #[test]
    fn prefix_histogram_counts_are_exact() {
        let mut rng = Rng(21);
        for len in [1usize, 2, 9, 100, 333] {
            let tr = random_trace(&mut rng, len, 1.0);
            let ph = PrefixHistogram::build(tr.samples());
            let s = tr.samples();
            for l in 0..len {
                for r in (l..=len).step_by(1 + len / 13) {
                    let naive = s[l..r].iter().filter(|&&p| p <= 0.4).count() as u64;
                    assert_eq!(ph.count_matching(l, r, |p| p <= 0.4), naive);
                }
            }
        }
    }

    #[test]
    fn query_histogram_matches_from_window() {
        let mut rng = Rng(77);
        for len in [1usize, 5, 64, 200] {
            let tr = random_trace(&mut rng, len, 1.0 / 12.0);
            let ix = TraceIndex::build(&tr);
            let q = TraceQuery::new(&tr, Some(&ix));
            for _ in 0..25 {
                let start = (rng.next() % 200) as f64 * 0.13;
                let hours = 0.25 + (rng.next() % 100) as f64 * 0.37;
                let hi = tr.max_price() + 0.01;
                let indexed = q.histogram(start, hours, 0.0, hi, 12);
                let naive = PriceHistogram::from_window(tr.window(start, hours), 0.0, hi, 12);
                assert_eq!(indexed, naive);
            }
        }
    }
}
