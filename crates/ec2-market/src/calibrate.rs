//! Calibrating the synthetic generator from an observed trace.
//!
//! Given a real (or held-out synthetic) price trace, estimate the
//! regime-switching parameters of [`TraceGenConfig`]: the calm base level,
//! its log-dispersion, plateau durations, and the spike process. This
//! closes the loop between imported AWS history ([`crate::feed`]) and the
//! generator — calibrate once, then synthesize arbitrarily long,
//! statistically matched traces for Monte-Carlo studies.
//!
//! Method: classify samples as *spike* (price above `spike_threshold ×`
//! the trace median) or *calm*; calm samples give the base level (median)
//! and log-σ of plateau levels; run-length statistics over the calm/spike
//! segmentation give plateau and spike durations and the spike arrival
//! rate.

use crate::trace::TraceWindow;
use crate::tracegen::TraceGenConfig;

/// Calibration output with goodness hints.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The fitted generator configuration.
    pub config: TraceGenConfig,
    /// Fraction of samples classified as spikes.
    pub spike_mass: f64,
    /// Number of distinct spike episodes observed.
    pub spike_episodes: usize,
}

/// Fit a [`TraceGenConfig`] to an observed window.
///
/// `spike_threshold` is the multiple of the median price above which a
/// sample counts as a spike (3–5 is reasonable for spot markets).
///
/// # Panics
/// Panics if the window is empty or the threshold not above 1.
pub fn calibrate(window: TraceWindow<'_>, spike_threshold: f64) -> Calibration {
    assert!(!window.is_empty(), "cannot calibrate an empty window");
    assert!(spike_threshold > 1.0, "spike threshold must exceed 1");
    let step = window.step_hours();
    let samples = window.samples();

    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let cut = median * spike_threshold;

    // Segment into calm/spike runs.
    let mut calm: Vec<f64> = Vec::new();
    let mut spikes: Vec<f64> = Vec::new();
    let mut spike_runs: Vec<usize> = Vec::new();
    let mut plateau_runs: Vec<usize> = Vec::new();
    let mut run_len = 0usize;
    let mut in_spike = samples[0] > cut;
    let mut plateau_level = f64::NAN;
    for &p in samples {
        let is_spike = p > cut;
        if is_spike {
            spikes.push(p);
        } else {
            calm.push(p);
        }
        if is_spike == in_spike {
            run_len += 1;
            // A plateau "run" also breaks when the calm level changes.
            if !is_spike && p != plateau_level && !plateau_level.is_nan() {
                plateau_runs.push(run_len);
                run_len = 0;
            }
        } else {
            if in_spike {
                spike_runs.push(run_len);
            } else {
                plateau_runs.push(run_len);
            }
            run_len = 1;
            in_spike = is_spike;
        }
        if !is_spike {
            plateau_level = p;
        }
    }
    if run_len > 0 {
        if in_spike {
            spike_runs.push(run_len);
        } else {
            plateau_runs.push(run_len);
        }
    }

    let mean_run = |runs: &[usize], default: f64| -> f64 {
        if runs.is_empty() {
            default
        } else {
            runs.iter().sum::<usize>() as f64 / runs.len() as f64 * step
        }
    };

    // Calm level statistics in log space.
    let base = if calm.is_empty() {
        median
    } else {
        let mut c = calm.clone();
        c.sort_by(|a, b| a.total_cmp(b));
        c[c.len() / 2]
    };
    let calm_sigma = if calm.len() > 1 {
        let logs: Vec<f64> = calm.iter().map(|p| (p / base).ln()).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        (logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / (logs.len() - 1) as f64).sqrt()
    } else {
        0.0
    };

    // Spike process.
    let total_hours = window.duration();
    let spike_episodes = spike_runs.len();
    let calm_hours = calm.len() as f64 * step;
    let spike_rate = if calm_hours > 0.0 {
        spike_episodes as f64 / calm_hours
    } else {
        0.0
    };
    let spike_duration = mean_run(&spike_runs, step);
    let (mult_lo, mult_hi) = if spikes.is_empty() {
        (2.0, 4.0)
    } else {
        let lo = spikes.iter().cloned().fold(f64::INFINITY, f64::min) / base;
        let hi = spikes.iter().cloned().fold(0.0, f64::max) / base;
        (lo.max(1.5), hi.max(lo.max(1.5) + 0.1))
    };
    let _ = total_hours;

    Calibration {
        config: TraceGenConfig {
            base_price: base,
            calm_sigma,
            plateau_mean_hours: mean_run(&plateau_runs, 24.0).max(step),
            spike_rate_per_hour: spike_rate,
            spike_duration_mean_hours: spike_duration.max(step),
            spike_multiplier: (mult_lo, mult_hi),
            floor_price: (base * 0.2).max(0.001),
            // Seasonality is not identified by this run-length fit.
            diurnal_amplitude: 0.0,
        },
        spike_mass: spikes.len() as f64 / samples.len() as f64,
        spike_episodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::ZoneVolatility;

    const STEP: f64 = 1.0 / 12.0;

    #[test]
    fn recovers_base_price_of_flat_trace() {
        let cfg = TraceGenConfig::preset(0.05, ZoneVolatility::Flat);
        let t = cfg.generate(200.0, STEP, 3);
        let cal = calibrate(t.window(0.0, f64::INFINITY), 4.0);
        assert!(
            (cal.config.base_price / 0.05 - 1.0).abs() < 0.15,
            "base {}",
            cal.config.base_price
        );
        assert_eq!(cal.spike_episodes, 0);
    }

    #[test]
    fn detects_spike_process_of_extreme_trace() {
        let mut cfg = TraceGenConfig::preset(0.03, ZoneVolatility::Extreme);
        cfg.calm_sigma = 0.1; // keep calm band well under the spike cut
        let t = cfg.generate(1000.0, STEP, 5);
        let cal = calibrate(t.window(0.0, f64::INFINITY), 4.0);
        assert!(cal.spike_episodes > 5, "episodes {}", cal.spike_episodes);
        // Spike rate within a factor ~2.5 of the generating 0.035/h.
        assert!(
            cal.config.spike_rate_per_hour > 0.014 && cal.config.spike_rate_per_hour < 0.1,
            "rate {}",
            cal.config.spike_rate_per_hour
        );
        assert!(cal.config.spike_multiplier.1 > 5.0);
    }

    #[test]
    fn roundtrip_preserves_headline_statistics() {
        // Generate → calibrate → regenerate: the clone's median and spike
        // mass should resemble the original's.
        let mut cfg = TraceGenConfig::preset(0.02, ZoneVolatility::Volatile);
        cfg.calm_sigma = 0.15;
        let original = cfg.generate(800.0, STEP, 11);
        let cal = calibrate(original.window(0.0, f64::INFINITY), 4.0);
        let clone = cal.config.generate(800.0, STEP, 99);
        let med = |t: &crate::trace::SpotTrace| {
            let mut v = t.samples().to_vec();
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let m0 = med(&original);
        let m1 = med(&clone);
        assert!((m1 / m0 - 1.0).abs() < 0.3, "median drifted: {m0} -> {m1}");
    }

    #[test]
    fn calm_sigma_grows_with_volatility() {
        let calm = TraceGenConfig::preset(0.03, ZoneVolatility::Flat).generate(400.0, STEP, 7);
        let wild = TraceGenConfig::preset(0.03, ZoneVolatility::Extreme).generate(400.0, STEP, 7);
        let c1 = calibrate(calm.window(0.0, f64::INFINITY), 4.0);
        let c2 = calibrate(wild.window(0.0, f64::INFINITY), 4.0);
        assert!(c2.config.calm_sigma > c1.config.calm_sigma);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn threshold_must_exceed_one() {
        let t = TraceGenConfig::preset(0.03, ZoneVolatility::Flat).generate(10.0, STEP, 1);
        calibrate(t.window(0.0, f64::INFINITY), 0.9);
    }
}
