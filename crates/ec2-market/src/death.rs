//! Memoized per-(group, bid) death/launch time tables for batched replay.
//!
//! Monte-Carlo replay asks each trace the same two questions per replica —
//! *when does the price first rise above the bid?* (the out-of-bid death)
//! and *when does it first fall to or at the bid?* (the launch). The
//! [`crate::index::TraceIndex`] answers both in O(log n) per query, but a
//! tournament grid replays the same (group, bid) pair across thousands of
//! replicas and many cells. A [`DeathTimeTable`] hoists the whole trace
//! scan into **one** O(n) pass per (group, bid): for every sample index it
//! precomputes the next crossing in each direction, so each replica's
//! launch/death lookup becomes O(1) array reads.
//!
//! **Exactness is non-negotiable**, exactly as for the trace index: the
//! table materializes times with the same arithmetic form
//! (`i as f64 * step_hours`, then `.max(start)` / `< cutoff` filtering)
//! as [`crate::index::TraceQuery`], so batched lookups are bit-identical
//! to both the indexed descent and the naive scan. The differential suite
//! in `tests/mc_batch_differential.rs` enforces this.
//!
//! Fault-plan and start-offset dimensions need no table entries of their
//! own: storm kills come from the frozen [`crate::fault::FaultInjector`]
//! timeline (composed with the price death at lookup time), and a start
//! offset only selects *which* precomputed sample index the lookup reads.
//!
//! Tables are cached per market in a [`DeathTimeCache`] and shared
//! read-only — like the `OnceLock`-held trace indexes — across all
//! Monte-Carlo workers and all tournament cells that replay the same
//! market.

use crate::trace::SpotTrace;
use crate::{Hours, Usd};
use std::sync::Arc;
use std::sync::RwLock;

/// Sentinel for "no later sample crosses" in the next-crossing arrays.
const NONE: u32 = u32::MAX;

/// Precomputed first-crossing times of one trace against one bid.
///
/// For every sample index `i` the table stores the smallest `j >= i` with
/// `samples[j] > bid` (the death direction) and the smallest `j >= i` with
/// `samples[j] <= bid` (the launch direction). Both arrays are filled by a
/// single backward pass over the samples, after which every query is O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct DeathTimeTable {
    /// The bid this table answers for (identity, not used in lookups).
    bid: Usd,
    /// Trace sampling step, hours.
    step_hours: Hours,
    /// Trace duration, hours (`step_hours * len`).
    duration: Hours,
    /// `next_above[i]` = smallest `j >= i` with `samples[j] > bid`.
    next_above: Vec<u32>,
    /// `next_at_or_below[i]` = smallest `j >= i` with `samples[j] <= bid`.
    next_at_or_below: Vec<u32>,
}

impl DeathTimeTable {
    /// Build the table for `(trace, bid)` in one O(n) backward pass.
    ///
    /// Traces longer than `u32::MAX - 1` samples are not supported (the
    /// next-crossing arrays use `u32` indexes); [`DeathTimeCache`] falls
    /// back to the scalar query path for such traces instead of building.
    pub fn build(trace: &SpotTrace, bid: Usd) -> Self {
        let samples = trace.samples();
        let n = samples.len();
        debug_assert!(n < NONE as usize, "trace too long for u32 indexes");
        let mut next_above = vec![NONE; n];
        let mut next_at_or_below = vec![NONE; n];
        let mut above = NONE;
        let mut at_or_below = NONE;
        for i in (0..n).rev() {
            if samples[i] > bid {
                above = i as u32;
            } else {
                at_or_below = i as u32;
            }
            next_above[i] = above;
            next_at_or_below[i] = at_or_below;
        }
        Self {
            bid,
            step_hours: trace.step_hours(),
            duration: trace.duration(),
            next_above,
            next_at_or_below,
        }
    }

    /// The bid this table was built for.
    pub fn bid(&self) -> Usd {
        self.bid
    }

    /// Number of table entries (== trace samples).
    pub fn len(&self) -> usize {
        self.next_above.len()
    }

    /// Whether the table is empty (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.next_above.is_empty()
    }

    /// Sample index containing time `t` — [`SpotTrace::index_at`] verbatim,
    /// so clamping matches the scalar query path bit for bit.
    fn index_at(&self, t: Hours) -> usize {
        if t <= 0.0 {
            return 0;
        }
        ((t / self.step_hours) as usize).min(self.next_above.len() - 1)
    }

    /// First-passage time above the bid from `start` — the out-of-bid
    /// death. Bit-identical to
    /// [`TraceQuery::first_passage_above`](crate::index::TraceQuery::first_passage_above)
    /// at this table's bid, in O(1).
    pub fn first_passage_above(&self, start: Hours) -> Option<Hours> {
        let lo = self.index_at(start.max(0.0));
        let j = self.next_above[lo];
        if j == NONE {
            return None;
        }
        Some((j as f64 * self.step_hours).max(start))
    }

    /// Launch time: earliest time `>= start` (strictly before `cutoff`)
    /// with the price at or below the bid. Bit-identical to
    /// [`TraceQuery::launch_time`](crate::index::TraceQuery::launch_time)
    /// at this table's bid, in O(1).
    pub fn launch_time(&self, start: Hours, cutoff: Hours) -> Option<Hours> {
        if start >= cutoff || start >= self.duration {
            return None;
        }
        let lo = self.index_at(start);
        // `next_at_or_below[lo] == lo` iff `samples[lo] <= bid`.
        if self.next_at_or_below[lo] as usize == lo {
            return Some(start);
        }
        let j = match self.next_at_or_below.get(lo + 1) {
            Some(&j) => j,
            None => NONE,
        };
        if j == NONE {
            return None;
        }
        Some(j as f64 * self.step_hours).filter(|&t| t < cutoff)
    }
}

/// Market-level cache of [`DeathTimeTable`]s, keyed by (group, bid bits).
///
/// Bids are dynamic (every plan decision carries its own), so unlike the
/// per-trace `OnceLock<TraceIndex>` slots this is an interior-mutable map:
/// the first lookup of a (group, bid) pair builds the table under a write
/// lock, later lookups share the [`Arc`] read-only. The cache is derived
/// state — excluded from the market's serialized shape and dropped when a
/// group's trace is replaced.
///
/// The generic key type `K` is ordered (the market uses its
/// `CircleGroupId`).
#[derive(Debug, Default)]
pub struct DeathTimeCache<K: Ord + Copy> {
    tables: RwLock<std::collections::BTreeMap<(K, u64), Arc<DeathTimeTable>>>,
}

impl<K: Ord + Copy> DeathTimeCache<K> {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            tables: RwLock::new(std::collections::BTreeMap::new()),
        }
    }

    /// The table for `(key, bid)`, building it from `trace` on first use.
    /// Returns `(table, freshly_built)`; `None` when the trace is too long
    /// for the table's `u32` indexes (callers fall back to scalar queries).
    pub fn get_or_build(
        &self,
        key: K,
        bid: Usd,
        trace: &SpotTrace,
    ) -> Option<(Arc<DeathTimeTable>, bool)> {
        if trace.len() >= NONE as usize {
            return None;
        }
        let map_key = (key, bid.to_bits());
        {
            let tables = self.tables.read().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = tables.get(&map_key) {
                return Some((Arc::clone(t), false));
            }
        }
        let mut tables = self.tables.write().unwrap_or_else(|e| e.into_inner());
        // Double-check under the write lock: another thread may have built
        // the table between our read probe and here.
        if let Some(t) = tables.get(&map_key) {
            return Some((Arc::clone(t), false));
        }
        let table = Arc::new(DeathTimeTable::build(trace, bid));
        tables.insert(map_key, Arc::clone(&table));
        Some((table, true))
    }

    /// Drop every cached table for `key` (its trace was replaced).
    pub fn invalidate(&self, key: K) {
        let mut tables = self.tables.write().unwrap_or_else(|e| e.into_inner());
        tables.retain(|(k, _), _| *k != key);
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.tables.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy> Clone for DeathTimeCache<K> {
    fn clone(&self) -> Self {
        Self {
            tables: RwLock::new(
                self.tables
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{TraceIndex, TraceQuery};

    /// Tiny deterministic generator (xorshift64*), same shape as the index
    /// differential tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn price(&mut self) -> f64 {
            // Coarse grid so exact bid ties actually occur.
            (self.next() % 1000) as f64 / 1000.0
        }
    }

    fn random_trace(rng: &mut Rng, len: usize, step: f64) -> SpotTrace {
        SpotTrace::new(step, (0..len).map(|_| rng.price()).collect())
    }

    #[test]
    fn table_matches_indexed_and_naive_queries() {
        let mut rng = Rng(41);
        for len in [1usize, 2, 5, 33, 128, 300] {
            let tr = random_trace(&mut rng, len, 1.0 / 12.0);
            let ix = TraceIndex::build(&tr);
            let qi = TraceQuery::new(&tr, Some(&ix));
            let qn = TraceQuery::new(&tr, None);
            let duration = tr.duration();
            for bid in [0.0, 0.1, 0.25, 0.5, 0.75, 0.999, 1.5] {
                let table = DeathTimeTable::build(&tr, bid);
                for k in 0..60 {
                    // Starts before, inside, and past the trace; cutoffs
                    // both binding and not.
                    let start = -1.0 + k as f64 * (duration + 2.0) / 60.0;
                    let cutoff = start + (k % 7) as f64 * duration / 5.0;
                    let fp = table.first_passage_above(start);
                    assert_eq!(fp, qi.first_passage_above(start, bid));
                    assert_eq!(
                        fp.map(f64::to_bits),
                        qn.first_passage_above(start, bid).map(f64::to_bits)
                    );
                    let lt = table.launch_time(start, cutoff);
                    assert_eq!(lt, qi.launch_time(start, bid, cutoff));
                    assert_eq!(
                        lt.map(f64::to_bits),
                        qn.launch_time(start, bid, cutoff).map(f64::to_bits)
                    );
                }
            }
        }
    }

    #[test]
    fn cache_builds_once_and_shares() {
        let mut rng = Rng(5);
        let tr = random_trace(&mut rng, 64, 0.5);
        let cache: DeathTimeCache<u8> = DeathTimeCache::new();
        let (a, built_a) = cache.get_or_build(3, 0.5, &tr).unwrap();
        let (b, built_b) = cache.get_or_build(3, 0.5, &tr).unwrap();
        assert!(built_a && !built_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // Distinct bids get distinct tables.
        let (_, built_c) = cache.get_or_build(3, 0.25, &tr).unwrap();
        assert!(built_c);
        assert_eq!(cache.len(), 2);
        // Invalidation drops only the named key's tables.
        let (_, _) = cache.get_or_build(4, 0.5, &tr).unwrap();
        cache.invalidate(3);
        assert_eq!(cache.len(), 1);
        let (_, rebuilt) = cache.get_or_build(3, 0.5, &tr).unwrap();
        assert!(rebuilt);
    }

    #[test]
    fn clone_carries_cached_tables() {
        let mut rng = Rng(6);
        let tr = random_trace(&mut rng, 32, 1.0);
        let cache: DeathTimeCache<u8> = DeathTimeCache::new();
        cache.get_or_build(1, 0.5, &tr).unwrap();
        let cloned = cache.clone();
        assert_eq!(cloned.len(), 1);
        let (_, built) = cloned.get_or_build(1, 0.5, &tr).unwrap();
        assert!(!built, "clone must reuse the copied table");
    }
}
