//! EC2 instance types and the 2014-era catalog used by the paper.
//!
//! The paper evaluates four candidate types — m1.small and m1.medium for
//! their low price, c3.xlarge and cc2.8xlarge for computational power — plus
//! m1.large which appears in the Figure 1 trace study. Capabilities here
//! (per-core compute throughput, network and I/O bandwidth) feed the
//! execution-time estimator in `mpi-sim`, playing the role of the paper's
//! TAU-based profiling.

use crate::Usd;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an instance type within an [`InstanceCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceTypeId(pub usize);

impl fmt::Display for InstanceTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

/// Static description of an EC2 instance type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// AWS API name, e.g. `"m1.small"`.
    pub name: String,
    /// Number of cores. One MPI process is attached to one core (paper
    /// assumption), so an `N`-process job needs `ceil(N / cores)` instances.
    pub cores: u32,
    /// Per-core *sustained* compute throughput in GFLOP/s on HPC kernels.
    /// These are effective (memory-bandwidth-limited) rates, not peak. The
    /// spread across types is deliberately narrow: NPB kernels are
    /// memory-bound, a lone m1 rank owns its socket's full memory bandwidth
    /// while 32 cc2 ranks share four channels — which is how the paper can
    /// run the same job on m1.small fleets within 1.5x of cc2.8xlarge
    /// wall-clock (its Figure 7(a) selects m1.small under a +50% deadline).
    pub gflops_per_core: f64,
    /// Aggregate NIC bandwidth in Gbit/s shared by all cores on the instance.
    pub network_gbps: f64,
    /// One-way MPI message latency to another instance, milliseconds
    /// (2014 virtualized networking; cc2 placement groups were much better).
    pub latency_ms: f64,
    /// Aggregate local-disk sequential bandwidth in MB/s.
    pub disk_seq_mbps: f64,
    /// Aggregate local-disk random-access bandwidth in MB/s.
    pub disk_rnd_mbps: f64,
    /// On-demand price in USD per instance-hour (us-east-1, mid-2014).
    pub on_demand_price: Usd,
}

impl InstanceType {
    /// Number of instances required to host `processes` MPI ranks at one
    /// rank per core (the paper's `M_i = N / k` with ceiling).
    pub fn instances_for(&self, processes: u32) -> u32 {
        processes.div_ceil(self.cores)
    }

    /// Aggregate compute throughput of one instance in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.gflops_per_core * self.cores as f64
    }
}

/// A catalog of instance types, indexed by [`InstanceTypeId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstanceCatalog {
    types: Vec<InstanceType>,
}

impl InstanceCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The catalog used throughout the paper's evaluation: m1.small,
    /// m1.medium, m1.large, c3.xlarge and cc2.8xlarge with mid-2014
    /// us-east-1 on-demand prices.
    ///
    /// Capability numbers reflect sustained 2014 measurements: m1-family
    /// networking was far below its nominal tier (~100–450 Mbit/s
    /// effective), cc2.8xlarge had 10 GbE in placement groups, m1/cc2
    /// ephemeral disks were HDDs (≈1–2 MB/s random), and c3 carried small
    /// early SSDs.
    pub fn paper_2014() -> Self {
        let mut c = Self::new();
        c.push(InstanceType {
            name: "m1.small".into(),
            cores: 1,
            gflops_per_core: 0.20,
            network_gbps: 0.1,
            latency_ms: 0.5,
            disk_seq_mbps: 80.0,
            disk_rnd_mbps: 1.0,
            on_demand_price: 0.044,
        });
        c.push(InstanceType {
            name: "m1.medium".into(),
            cores: 1,
            gflops_per_core: 0.24,
            network_gbps: 0.25,
            latency_ms: 0.5,
            disk_seq_mbps: 100.0,
            disk_rnd_mbps: 1.2,
            on_demand_price: 0.087,
        });
        c.push(InstanceType {
            name: "m1.large".into(),
            cores: 2,
            gflops_per_core: 0.24,
            network_gbps: 0.45,
            latency_ms: 0.5,
            disk_seq_mbps: 120.0,
            disk_rnd_mbps: 1.5,
            on_demand_price: 0.175,
        });
        c.push(InstanceType {
            name: "c3.xlarge".into(),
            cores: 4,
            gflops_per_core: 0.26,
            network_gbps: 0.7,
            latency_ms: 0.3,
            disk_seq_mbps: 160.0, // 2 × 40 GB SSD
            disk_rnd_mbps: 6.0,   // early SSDs, sync-write limited
            on_demand_price: 0.210,
        });
        c.push(InstanceType {
            name: "cc2.8xlarge".into(),
            cores: 32,
            gflops_per_core: 0.30,
            network_gbps: 10.0,
            latency_ms: 0.15,
            disk_seq_mbps: 400.0, // 4 × ephemeral HDD RAID
            disk_rnd_mbps: 2.0,
            on_demand_price: 2.000,
        });
        c
    }

    /// Add a type and return its id.
    pub fn push(&mut self, ty: InstanceType) -> InstanceTypeId {
        self.types.push(ty);
        InstanceTypeId(self.types.len() - 1)
    }

    /// Look up a type by id. Panics on an id from another catalog.
    pub fn get(&self, id: InstanceTypeId) -> &InstanceType {
        &self.types[id.0]
    }

    /// Look up a type by AWS name.
    pub fn by_name(&self, name: &str) -> Option<InstanceTypeId> {
        self.types
            .iter()
            .position(|t| t.name == name)
            .map(InstanceTypeId)
    }

    /// Iterate over `(id, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceTypeId, &InstanceType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (InstanceTypeId(i), t))
    }

    /// Number of types in the catalog.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_has_the_five_types() {
        let c = InstanceCatalog::paper_2014();
        for name in [
            "m1.small",
            "m1.medium",
            "m1.large",
            "c3.xlarge",
            "cc2.8xlarge",
        ] {
            assert!(c.by_name(name).is_some(), "missing {name}");
        }
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn instances_for_128_processes_matches_paper() {
        // The paper: 128 m1.small instances for a 128-process NPB run, and
        // 4 cc2.8xlarge instances (32 cores each).
        let c = InstanceCatalog::paper_2014();
        let small = c.get(c.by_name("m1.small").unwrap());
        let cc2 = c.get(c.by_name("cc2.8xlarge").unwrap());
        assert_eq!(small.instances_for(128), 128);
        assert_eq!(cc2.instances_for(128), 4);
    }

    #[test]
    fn instances_for_rounds_up() {
        let c = InstanceCatalog::paper_2014();
        let c3 = c.get(c.by_name("c3.xlarge").unwrap());
        assert_eq!(c3.instances_for(1), 1);
        assert_eq!(c3.instances_for(5), 2);
        assert_eq!(c3.instances_for(128), 32);
    }

    #[test]
    fn cc2_is_most_expensive_and_most_capable() {
        let c = InstanceCatalog::paper_2014();
        let cc2 = c.get(c.by_name("cc2.8xlarge").unwrap());
        for (_, t) in c.iter() {
            assert!(cc2.on_demand_price >= t.on_demand_price);
            assert!(cc2.gflops() >= t.gflops());
            assert!(cc2.network_gbps >= t.network_gbps);
        }
    }

    #[test]
    fn by_name_miss_returns_none() {
        let c = InstanceCatalog::paper_2014();
        assert!(c.by_name("p5.48xlarge").is_none());
    }
}
