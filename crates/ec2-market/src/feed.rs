//! Importing real spot price history.
//!
//! AWS `describe-spot-price-history` emits *irregular* price-change events
//! (timestamp, instance type, zone, price). The estimation pipeline wants
//! uniformly sampled [`SpotTrace`]s, so this module parses the two common
//! interchange formats (the CLI's tab/space table and CSV exports) and
//! resamples the event stream with last-observation-carried-forward —
//! exactly how the spot price works: a published price holds until the
//! next change.
//!
//! With this, every experiment in the repository can run against genuine
//! AWS history instead of the synthetic generator: build a
//! [`SpotMarket`](crate::market::SpotMarket)
//! by inserting imported traces.

use crate::trace::SpotTrace;
use crate::{Hours, Usd};
use std::collections::BTreeMap;

/// One spot price-change event.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceEvent {
    /// Seconds since an arbitrary epoch (only differences matter).
    pub timestamp_s: f64,
    /// AWS instance type name, e.g. `"m1.medium"`.
    pub instance_type: String,
    /// Availability zone string, e.g. `"us-east-1a"`.
    pub zone: String,
    /// Price, USD/hour.
    pub price: Usd,
}

/// Errors from feed parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedError {
    /// A line had fewer than the four required columns.
    MissingColumns {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// No events at all.
    Empty,
    /// A non-positive resampling step.
    BadStep {
        /// The offending step, hours.
        step_hours: f64,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::MissingColumns { line } => {
                write!(f, "line {line}: expected `timestamp type zone price`")
            }
            FeedError::BadNumber { line, field } => {
                write!(f, "line {line}: cannot parse number from {field:?}")
            }
            FeedError::Empty => write!(f, "feed contained no events"),
            FeedError::BadStep { step_hours } => {
                write!(f, "resampling step {step_hours} h must be positive")
            }
        }
    }
}

impl std::error::Error for FeedError {}

/// Parse a whitespace- or comma-separated feed with columns
/// `timestamp_seconds instance_type zone price`. Lines starting with `#`
/// and blank lines are skipped. Events may arrive in any order.
pub fn parse_feed(input: &str) -> Result<Vec<PriceEvent>, FeedError> {
    let mut events = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .collect();
        if cols.len() < 4 {
            return Err(FeedError::MissingColumns { line });
        }
        let timestamp_s: f64 = cols[0].parse().map_err(|_| FeedError::BadNumber {
            line,
            field: cols[0].into(),
        })?;
        let price: f64 =
            cols[3]
                .trim_start_matches('$')
                .parse()
                .map_err(|_| FeedError::BadNumber {
                    line,
                    field: cols[3].into(),
                })?;
        events.push(PriceEvent {
            timestamp_s,
            instance_type: cols[1].to_string(),
            zone: cols[2].to_string(),
            price,
        });
    }
    if events.is_empty() {
        return Err(FeedError::Empty);
    }
    Ok(events)
}

/// Resample one (type, zone)'s events into a uniform [`SpotTrace`] with
/// last-observation-carried-forward semantics.
///
/// Errors on an empty event list ([`FeedError::Empty`]) or a non-positive
/// step ([`FeedError::BadStep`]). Events before the first sample seed the
/// initial price; the trace spans from the earliest to the latest event
/// timestamp.
pub fn resample(events: &[PriceEvent], step_hours: Hours) -> Result<SpotTrace, FeedError> {
    if step_hours <= 0.0 || step_hours.is_nan() {
        return Err(FeedError::BadStep { step_hours });
    }
    if events.is_empty() {
        return Err(FeedError::Empty);
    }
    let mut sorted: Vec<&PriceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| a.timestamp_s.total_cmp(&b.timestamp_s));
    let t0 = sorted[0].timestamp_s;
    let t1 = sorted[sorted.len() - 1].timestamp_s;
    let duration_h = ((t1 - t0) / 3600.0).max(step_hours);
    let n = (duration_h / step_hours).ceil() as usize;

    let mut prices = Vec::with_capacity(n);
    let mut cursor = 0usize;
    let mut current = sorted[0].price;
    for i in 0..n {
        let sample_time = t0 + i as f64 * step_hours * 3600.0;
        while cursor < sorted.len() && sorted[cursor].timestamp_s <= sample_time {
            current = sorted[cursor].price;
            cursor += 1;
        }
        prices.push(current);
    }
    Ok(SpotTrace::new(step_hours, prices))
}

/// Split a mixed feed into per-(type, zone) traces.
pub fn traces_by_group(
    events: &[PriceEvent],
    step_hours: Hours,
) -> BTreeMap<(String, String), SpotTrace> {
    let mut buckets: BTreeMap<(String, String), Vec<PriceEvent>> = BTreeMap::new();
    for e in events {
        buckets
            .entry((e.instance_type.clone(), e.zone.clone()))
            .or_default()
            .push(e.clone());
    }
    buckets
        .into_iter()
        .filter_map(|(k, v)| resample(&v, step_hours).ok().map(|t| (k, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FEED: &str = "\
# ts          type       zone        price
0             m1.medium  us-east-1a  0.010
3600          m1.medium  us-east-1a  0.020
10800         m1.medium  us-east-1a  0.005
0             m1.small   us-east-1a  0.004
7200          m1.small   us-east-1a  0.008
";

    #[test]
    fn parses_table_format() {
        let events = parse_feed(FEED).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].instance_type, "m1.medium");
        assert_eq!(events[0].price, 0.010);
    }

    #[test]
    fn parses_csv_and_dollar_signs() {
        let events = parse_feed("0,c3.xlarge,us-east-1b,$0.042\n").unwrap();
        assert_eq!(events[0].price, 0.042);
        assert_eq!(events[0].zone, "us-east-1b");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(
            parse_feed("0 m1.small us-east-1a"),
            Err(FeedError::MissingColumns { line: 1 })
        );
        assert!(matches!(
            parse_feed("zero m1.small us-east-1a 0.1"),
            Err(FeedError::BadNumber { line: 1, .. })
        ));
        assert_eq!(parse_feed("# only a comment\n"), Err(FeedError::Empty));
    }

    #[test]
    fn resample_carries_last_observation_forward() {
        let events = parse_feed(FEED).unwrap();
        let groups = traces_by_group(&events, 1.0);
        let t = &groups[&("m1.medium".to_string(), "us-east-1a".to_string())];
        // Events at 0 h ($0.010), 1 h ($0.020), 3 h ($0.005); span 3 h.
        assert_eq!(t.price_at(0.0), 0.010);
        assert_eq!(t.price_at(0.9), 0.010);
        assert_eq!(t.price_at(1.0), 0.020);
        assert_eq!(t.price_at(2.5), 0.020);
    }

    #[test]
    fn resample_handles_unsorted_events() {
        let mut events = parse_feed(FEED).unwrap();
        events.reverse();
        let t = resample(
            &events
                .iter()
                .filter(|e| e.instance_type == "m1.medium")
                .cloned()
                .collect::<Vec<_>>(),
            0.5,
        )
        .unwrap();
        assert_eq!(t.price_at(0.0), 0.010);
        assert_eq!(t.price_at(1.2), 0.020);
    }

    #[test]
    fn groups_are_split_correctly() {
        let events = parse_feed(FEED).unwrap();
        let groups = traces_by_group(&events, 1.0);
        assert_eq!(groups.len(), 2);
        assert!(groups.contains_key(&("m1.small".to_string(), "us-east-1a".to_string())));
    }

    #[test]
    fn imported_trace_feeds_the_estimator() {
        // The whole point: a real feed slots straight into estimation.
        let events = parse_feed(FEED).unwrap();
        let groups = traces_by_group(&events, 0.25);
        let t = &groups[&("m1.medium".to_string(), "us-east-1a".to_string())];
        let est = crate::failure::FailureEstimator::from_window(t.window(0.0, f64::INFINITY));
        let f = est.failure_rate_exact(0.015, 2);
        // Bidding $0.015 must fail when the price hits $0.020.
        assert!(f.prob_fail() > 0.0);
    }

    #[test]
    fn resample_rejects_bad_inputs_without_panicking() {
        let events = parse_feed(FEED).unwrap();
        assert_eq!(resample(&[], 1.0), Err(FeedError::Empty));
        assert_eq!(
            resample(&events, 0.0),
            Err(FeedError::BadStep { step_hours: 0.0 })
        );
        assert_eq!(
            resample(&events, -1.0),
            Err(FeedError::BadStep { step_hours: -1.0 })
        );
        assert!(resample(&events, f64::NAN).is_err());
    }

    #[test]
    fn single_event_yields_minimal_trace() {
        let t = resample(
            &[PriceEvent {
                timestamp_s: 50.0,
                instance_type: "x".into(),
                zone: "z".into(),
                price: 0.3,
            }],
            1.0,
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.price_at(0.0), 0.3);
    }
}
