//! Synthetic spot price trace generation.
//!
//! The paper's evaluation replays real us-east-1 price history from 2014.
//! That data is no longer obtainable (AWS only serves ~90 days of history,
//! and the 2015-12 spot market redesign changed its statistics), so this
//! module generates traces from a **regime-switching model** calibrated to
//! the qualitative features the paper documents in Section 2:
//!
//! * prices sit on long *calm plateaus* well below the on-demand price
//!   (spot was typically 70–85% cheaper in 2014),
//! * occasionally they *spike* far above on-demand — Figure 1(a) shows
//!   m1.medium in us-east-1a jumping from <$0.10 to ≈$10 (≈100×),
//! * volatility is heterogeneous across types and zones: m1.medium in
//!   us-east-1b stays flat the whole time, m1.large in us-east-1a barely
//!   moves while m1.medium in the same zone thrashes,
//! * the empirical price *distribution* over a day is stable day-to-day
//!   (Figure 2), which a plateau+spike mixture with stationary parameters
//!   reproduces by construction.
//!
//! Generation is deterministic given the configured seed.

use crate::instance::{InstanceCatalog, InstanceTypeId};
use crate::trace::SpotTrace;
use crate::zone::AvailabilityZone;
use crate::{Hours, Usd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Volatility regime of one circle group's spot market.
///
/// These presets encode the spatial heterogeneity of Section 2: the same
/// instance type can be violently volatile in one zone and flat in another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZoneVolatility {
    /// Essentially constant price — m1.medium in us-east-1b in Figure 1.
    Flat,
    /// Gentle plateau changes, very rare small spikes.
    Calm,
    /// Frequent plateau changes and regular spikes above on-demand.
    Volatile,
    /// Violent: spikes reaching ~100× the base price — m1.medium in
    /// us-east-1a around hour 10 of Figure 1(a).
    Extreme,
}

/// Parameters of the regime-switching price process for one circle group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGenConfig {
    /// Median calm-regime price in USD/hour (the plateau level).
    pub base_price: Usd,
    /// Log-normal sigma of plateau-to-plateau level changes.
    pub calm_sigma: f64,
    /// Mean plateau duration in hours (exponentially distributed).
    pub plateau_mean_hours: Hours,
    /// Spike arrival rate per hour while calm (Poisson).
    pub spike_rate_per_hour: f64,
    /// Mean spike duration in hours (exponentially distributed).
    pub spike_duration_mean_hours: Hours,
    /// Spike price as a multiple of `base_price`, drawn uniformly from this
    /// range.
    pub spike_multiplier: (f64, f64),
    /// Hard floor on any generated price (AWS never published $0).
    pub floor_price: Usd,
    /// Optional diurnal seasonality: relative amplitude of a 24-hour
    /// sinusoid multiplying the calm price (0 = none; 0.2 means ±20%
    /// between the daily trough and peak). Real 2014 spot prices showed
    /// business-hours demand cycles; seasonality also gives the adaptive
    /// algorithm a *predictable* drift component to exploit.
    pub diurnal_amplitude: f64,
}

impl TraceGenConfig {
    /// Preset for a given volatility regime around a calm `base_price`.
    pub fn preset(base_price: Usd, vol: ZoneVolatility) -> Self {
        // Plateau sigmas are deliberately large for the non-flat regimes:
        // 2014 spot prices wandered across a 2–4× band around their base
        // level (supply-demand repricing), which is what makes low bids
        // genuinely cheaper (smaller S_i) *and* genuinely riskier — the
        // trade-off the whole optimization lives on. Spikes add the rare
        // 10–100× out-of-bid shocks of Figure 1.
        // Spike amplitudes are relative to the *spot base*, which is
        // ~8–20% of on-demand — so even "calm" spikes overshoot the
        // on-demand price, and extreme ones reach the ~100× on-demand
        // levels of the paper's Figure 1 (m1.medium at ≈$10 vs $0.087
        // on-demand). Riding such a spike at an infinite bid for one
        // billed hour costs more than whole plans — which is precisely
        // why Spot-Inf loses to bid-aware strategies.
        let (calm_sigma, plateau_mean, spike_rate, spike_dur, mult) = match vol {
            ZoneVolatility::Flat => (0.005, 48.0, 0.000_2, 0.3, (2.0, 4.0)),
            ZoneVolatility::Calm => (0.25, 12.0, 0.004, 0.5, (5.0, 50.0)),
            ZoneVolatility::Volatile => (0.45, 4.0, 0.02, 0.8, (20.0, 300.0)),
            ZoneVolatility::Extreme => (0.60, 2.0, 0.035, 1.0, (60.0, 1200.0)),
        };
        Self {
            base_price,
            calm_sigma,
            plateau_mean_hours: plateau_mean,
            spike_rate_per_hour: spike_rate,
            spike_duration_mean_hours: spike_dur,
            spike_multiplier: mult,
            floor_price: (base_price * 0.2).max(0.001),
            diurnal_amplitude: 0.0,
        }
    }

    /// Enable a 24-hour demand cycle of relative amplitude `amplitude`.
    ///
    /// # Panics
    /// Panics if `amplitude` is not in `[0, 1)`.
    pub fn with_diurnal(mut self, amplitude: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Generate a trace of `duration_hours` at `step_hours` resolution.
    ///
    /// # Panics
    /// Panics if the step or duration is non-positive.
    pub fn generate(&self, duration_hours: Hours, step_hours: Hours, seed: u64) -> SpotTrace {
        assert!(step_hours > 0.0 && duration_hours > 0.0);
        let n = (duration_hours / step_hours).ceil() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prices = Vec::with_capacity(n);

        // Piecewise process state.
        let mut plateau_price = self.draw_plateau(&mut rng);
        let mut plateau_left = self.draw_exp(&mut rng, self.plateau_mean_hours);
        let mut spike_left: Hours = 0.0;
        let mut spike_price: Usd = 0.0;

        for i in 0..n {
            // Diurnal multiplier: peak demand (price) at hour 14, trough
            // at hour 2, matching business-hours load.
            let season = if self.diurnal_amplitude > 0.0 {
                let hour = i as f64 * step_hours;
                1.0 + self.diurnal_amplitude * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos()
            } else {
                1.0
            };
            if spike_left > 0.0 {
                prices.push(spike_price);
                spike_left -= step_hours;
            } else {
                // Spike arrival within this step?
                let p_spike = 1.0 - (-self.spike_rate_per_hour * step_hours).exp();
                if rng.gen::<f64>() < p_spike {
                    let m = rng.gen_range(self.spike_multiplier.0..=self.spike_multiplier.1);
                    spike_price = (self.base_price * m).max(self.floor_price);
                    spike_left = self
                        .draw_exp(&mut rng, self.spike_duration_mean_hours)
                        .max(step_hours);
                    prices.push(spike_price);
                    spike_left -= step_hours;
                } else {
                    prices.push((plateau_price * season).max(self.floor_price));
                    plateau_left -= step_hours;
                    if plateau_left <= 0.0 {
                        plateau_price = self.draw_plateau(&mut rng);
                        plateau_left = self.draw_exp(&mut rng, self.plateau_mean_hours);
                    }
                }
            }
        }
        SpotTrace::new(step_hours, prices)
    }

    fn draw_plateau(&self, rng: &mut StdRng) -> Usd {
        let z = gaussian(rng);
        (self.base_price * (self.calm_sigma * z).exp()).max(self.floor_price)
    }

    fn draw_exp(&self, rng: &mut StdRng, mean: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * mean
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Market-wide calibration: one [`TraceGenConfig`] per (type, zone) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketProfile {
    entries: Vec<(InstanceTypeId, AvailabilityZone, TraceGenConfig)>,
}

impl MarketProfile {
    /// Empty profile.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The calibration used throughout this reproduction, mirroring the
    /// paper's trace observations:
    ///
    /// * base spot prices are a type-dependent fraction of on-demand: 2014
    ///   discounts were deepest on the oversupplied legacy m1 family
    ///   (~90%+ off) and shallower on newer / cluster-compute types —
    ///   which is precisely why the paper's optimizer picks "powerless"
    ///   instances for compute-intensive jobs under loose deadlines,
    /// * us-east-1a is the turbulent zone (m1.medium there is `Extreme`,
    ///   matching the $10 spike in Figure 1(a)),
    /// * us-east-1b is flat and cheap for the m1 family,
    /// * us-east-1c sits in between,
    /// * big instances (cc2.8xlarge) see moderate volatility everywhere —
    ///   their market was thinner but bids were conservative.
    pub fn paper_2014(catalog: &InstanceCatalog) -> Self {
        use AvailabilityZone::*;
        use ZoneVolatility::*;
        let mut p = Self::new();
        for (id, ty) in catalog.iter() {
            let discount = match ty.name.as_str() {
                "m1.small" => 0.080,
                "m1.medium" => 0.085,
                "m1.large" => 0.120,
                "c3.xlarge" => 0.200,
                "cc2.8xlarge" => 0.220,
                _ => 0.250,
            };
            let base = ty.on_demand_price * discount;
            let plan: [(AvailabilityZone, ZoneVolatility); 3] = match ty.name.as_str() {
                "m1.small" => [(UsEast1a, Volatile), (UsEast1b, Calm), (UsEast1c, Calm)],
                "m1.medium" => [(UsEast1a, Extreme), (UsEast1b, Flat), (UsEast1c, Calm)],
                "m1.large" => [(UsEast1a, Flat), (UsEast1b, Calm), (UsEast1c, Calm)],
                "c3.xlarge" => [(UsEast1a, Volatile), (UsEast1b, Calm), (UsEast1c, Volatile)],
                "cc2.8xlarge" => [(UsEast1a, Calm), (UsEast1b, Calm), (UsEast1c, Volatile)],
                _ => [(UsEast1a, Volatile), (UsEast1b, Calm), (UsEast1c, Calm)],
            };
            for (zone, vol) in plan {
                p.set(id, zone, TraceGenConfig::preset(base, vol));
            }
        }
        p
    }

    /// Set (or replace) the config for a (type, zone) pair.
    pub fn set(&mut self, ty: InstanceTypeId, zone: AvailabilityZone, cfg: TraceGenConfig) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(t, z, _)| *t == ty && *z == zone)
        {
            e.2 = cfg;
        } else {
            self.entries.push((ty, zone, cfg));
        }
    }

    /// Config for a (type, zone) pair, if calibrated.
    pub fn get(&self, ty: InstanceTypeId, zone: AvailabilityZone) -> Option<&TraceGenConfig> {
        self.entries
            .iter()
            .find(|(t, z, _)| *t == ty && *z == zone)
            .map(|(_, _, c)| c)
    }

    /// All calibrated (type, zone) pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (InstanceTypeId, AvailabilityZone)> + '_ {
        self.entries.iter().map(|(t, z, _)| (*t, *z))
    }
}

impl Default for MarketProfile {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience generator tying a profile to a base seed so every (type,
/// zone) pair gets an independent but reproducible random stream.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: MarketProfile,
    base_seed: u64,
}

impl TraceGenerator {
    /// Create a generator over `profile` with a base seed.
    pub fn new(profile: MarketProfile, base_seed: u64) -> Self {
        Self { profile, base_seed }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &MarketProfile {
        &self.profile
    }

    /// Generate the trace for a (type, zone) pair. Errors when the pair is
    /// not calibrated in the profile.
    pub fn try_generate(
        &self,
        ty: InstanceTypeId,
        zone: AvailabilityZone,
        duration_hours: Hours,
        step_hours: Hours,
    ) -> Result<SpotTrace, crate::market::UnknownGroupError> {
        let cfg = self.profile.get(ty, zone).ok_or_else(|| {
            crate::market::UnknownGroupError::new(crate::market::CircleGroupId::new(ty, zone))
        })?;
        Ok(cfg.generate(duration_hours, step_hours, self.seed_for(ty, zone)))
    }

    /// Generate traces for every calibrated (type, zone) pair, in profile
    /// order. Infallible by construction — the pairs come straight from the
    /// profile's own entries.
    pub fn generate_all(
        &self,
        duration_hours: Hours,
        step_hours: Hours,
    ) -> impl Iterator<Item = (InstanceTypeId, AvailabilityZone, SpotTrace)> + '_ {
        self.profile.entries.iter().map(move |(ty, zone, cfg)| {
            let trace = cfg.generate(duration_hours, step_hours, self.seed_for(*ty, *zone));
            (*ty, *zone, trace)
        })
    }

    fn seed_for(&self, ty: InstanceTypeId, zone: AvailabilityZone) -> u64 {
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((ty.0 as u64) << 8)
            .wrapping_add(zone.index() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STEP: f64 = 1.0 / 12.0; // 5-minute samples

    fn gen(vol: ZoneVolatility, seed: u64) -> SpotTrace {
        TraceGenConfig::preset(0.03, vol).generate(96.0, STEP, seed)
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            gen(ZoneVolatility::Volatile, 7),
            gen(ZoneVolatility::Volatile, 7)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            gen(ZoneVolatility::Volatile, 7),
            gen(ZoneVolatility::Volatile, 8)
        );
    }

    #[test]
    fn flat_zone_has_tiny_range() {
        let t = gen(ZoneVolatility::Flat, 3);
        assert!(
            t.max_price() / t.min_price() < 2.0,
            "flat trace moved too much: {} / {}",
            t.max_price(),
            t.min_price()
        );
    }

    #[test]
    fn extreme_zone_spikes_far_above_base() {
        // With a 0.035/h spike rate over 960 hours a spike is essentially
        // certain; amplitude is 10–100× base.
        let t = TraceGenConfig::preset(0.03, ZoneVolatility::Extreme).generate(960.0, STEP, 11);
        assert!(
            t.max_price() > 0.03 * 8.0,
            "expected a large spike, max was {}",
            t.max_price()
        );
    }

    #[test]
    fn prices_respect_floor() {
        for vol in [
            ZoneVolatility::Flat,
            ZoneVolatility::Calm,
            ZoneVolatility::Volatile,
            ZoneVolatility::Extreme,
        ] {
            let cfg = TraceGenConfig::preset(0.05, vol);
            let t = cfg.generate(200.0, STEP, 5);
            assert!(t.min_price() >= cfg.floor_price);
        }
    }

    #[test]
    fn calm_trace_mostly_near_base() {
        let t = gen(ZoneVolatility::Calm, 9);
        let near = t
            .samples()
            .iter()
            .filter(|&&p| p > 0.015 && p < 0.06)
            .count();
        assert!(
            near as f64 / t.len() as f64 > 0.9,
            "calm trace should hug the base price"
        );
    }

    #[test]
    fn paper_profile_covers_all_pairs() {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        for (id, _) in cat.iter() {
            for z in AvailabilityZone::PAPER_ZONES {
                assert!(prof.get(id, z).is_some(), "missing {id} {z}");
            }
        }
    }

    #[test]
    fn generator_streams_are_independent_per_pair() {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let g = TraceGenerator::new(prof, 42);
        let medium = cat.by_name("m1.medium").unwrap();
        let a = g
            .try_generate(medium, AvailabilityZone::UsEast1a, 72.0, STEP)
            .unwrap();
        let c = g
            .try_generate(medium, AvailabilityZone::UsEast1c, 72.0, STEP)
            .unwrap();
        assert_ne!(a, c);
        // And reproducible.
        let a2 = g
            .try_generate(medium, AvailabilityZone::UsEast1a, 72.0, STEP)
            .unwrap();
        assert_eq!(a, a2);
        // generate_all hands out the same per-pair streams.
        let all: Vec<_> = g.generate_all(72.0, STEP).collect();
        assert!(all
            .iter()
            .any(|(t, z, tr)| *t == medium && *z == AvailabilityZone::UsEast1a && *tr == a));
        // An uncalibrated pair is an error, not a panic.
        let mut fresh = MarketProfile::new();
        fresh.set(
            medium,
            AvailabilityZone::UsEast1a,
            TraceGenConfig::preset(0.05, ZoneVolatility::Calm),
        );
        let sparse = TraceGenerator::new(fresh, 1);
        assert!(sparse
            .try_generate(medium, AvailabilityZone::UsEast1c, 10.0, STEP)
            .is_err());
    }

    #[test]
    fn profile_set_replaces_existing() {
        let cat = InstanceCatalog::paper_2014();
        let mut prof = MarketProfile::paper_2014(&cat);
        let id = cat.by_name("m1.small").unwrap();
        let z = AvailabilityZone::UsEast1a;
        let custom = TraceGenConfig::preset(9.9, ZoneVolatility::Flat);
        prof.set(id, z, custom.clone());
        assert_eq!(prof.get(id, z), Some(&custom));
        // No duplicate entries.
        assert_eq!(
            prof.pairs().filter(|&(t, zz)| t == id && zz == z).count(),
            1
        );
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;

    #[test]
    fn diurnal_cycle_shifts_daily_means() {
        let cfg = TraceGenConfig::preset(0.05, ZoneVolatility::Flat).with_diurnal(0.3);
        let t = cfg.generate(240.0, 1.0 / 12.0, 5);
        // Afternoon (12-16h of each day) should be pricier than night (0-4h).
        let mut day = 0.0;
        let mut night = 0.0;
        let mut nd = 0;
        let mut nn = 0;
        for (i, &p) in t.samples().iter().enumerate() {
            let hour = (i as f64 / 12.0) % 24.0;
            if (12.0..16.0).contains(&hour) {
                day += p;
                nd += 1;
            } else if hour < 4.0 {
                night += p;
                nn += 1;
            }
        }
        assert!(day / nd as f64 > 1.2 * night / nn as f64);
    }

    #[test]
    fn zero_amplitude_is_the_default_process() {
        let base = TraceGenConfig::preset(0.05, ZoneVolatility::Calm);
        let with = base.clone().with_diurnal(0.0);
        assert_eq!(
            base.generate(48.0, 1.0 / 12.0, 9),
            with.generate(48.0, 1.0 / 12.0, 9)
        );
    }

    #[test]
    fn seasonal_prices_respect_floor() {
        let cfg = TraceGenConfig::preset(0.01, ZoneVolatility::Calm).with_diurnal(0.9);
        let t = cfg.generate(100.0, 1.0 / 12.0, 3);
        assert!(t.min_price() >= cfg.floor_price);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn amplitude_bounds_checked() {
        TraceGenConfig::preset(0.05, ZoneVolatility::Flat).with_diurnal(1.5);
    }
}
