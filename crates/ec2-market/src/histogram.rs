//! Spot price histograms and distribution-stability measures.
//!
//! Section 2 of the paper argues that although the spot price itself is
//! unpredictable, its *distribution* over a short horizon is stable — their
//! Figure 2 overlays the m1.medium/us-east-1a histograms of four consecutive
//! days. This module provides the histogram type used to regenerate that
//! figure and the distance measures used to quantify "stable".

use crate::trace::TraceWindow;
use crate::Usd;
use serde::{Deserialize, Serialize};

/// A fixed-bin histogram of spot prices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceHistogram {
    lo: Usd,
    hi: Usd,
    counts: Vec<u64>,
    total: u64,
}

impl PriceHistogram {
    /// Build a histogram of the window's samples over `[lo, hi)` with
    /// `bins` equal-width bins. Samples outside the range are clamped into
    /// the first/last bin so mass is never silently dropped.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn from_window(window: TraceWindow<'_>, lo: Usd, hi: Usd, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &p in window.samples() {
            let idx = if p < lo {
                0
            } else {
                (((p - lo) / width) as usize).min(bins - 1)
            };
            counts[idx] += 1;
        }
        let total = window.len() as u64;
        Self {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Build a histogram from precomputed bin counts — the indexed fast
    /// path in [`crate::index`]. The counts must reflect the same clamped
    /// binning as [`PriceHistogram::from_window`] (every sample lands in
    /// exactly one bin, so the total is the sum of the counts).
    pub(crate) fn from_counts(lo: Usd, hi: Usd, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "need at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let total = counts.iter().sum();
        Self {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized bin frequencies (sums to 1 for a non-empty histogram).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(bin_center, frequency)` pairs — the series plotted in Figure 2.
    pub fn series(&self) -> Vec<(Usd, f64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.frequencies()
            .into_iter()
            .enumerate()
            .map(|(i, f)| (self.lo + width * (i as f64 + 0.5), f))
            .collect()
    }

    /// Total-variation distance to another histogram with identical binning
    /// — `0` means identical distributions, `1` disjoint support.
    ///
    /// # Panics
    /// Panics if the two histograms have different binning.
    pub fn total_variation(&self, other: &PriceHistogram) -> f64 {
        assert_eq!(self.bins(), other.bins(), "histograms must share binning");
        assert!(
            (self.lo - other.lo).abs() < 1e-12 && (self.hi - other.hi).abs() < 1e-12,
            "histograms must share the price range"
        );
        let a = self.frequencies();
        let b = other.frequencies();
        0.5 * a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpotTrace;

    fn hist(prices: &[f64], lo: f64, hi: f64, bins: usize) -> PriceHistogram {
        let t = SpotTrace::new(1.0, prices.to_vec());
        PriceHistogram::from_window(t.window(0.0, f64::INFINITY), lo, hi, bins)
    }

    #[test]
    fn counts_land_in_right_bins() {
        let h = hist(&[0.05, 0.15, 0.15, 0.25], 0.0, 0.3, 3);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let h = hist(&[0.1, 0.6, 10.0], 0.5, 1.0, 2);
        assert_eq!(h.counts(), &[2, 1]);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = hist(&[0.1, 0.2, 0.3, 0.4, 0.5], 0.0, 1.0, 4);
        let s: f64 = h.frequencies().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_histograms_have_zero_tv() {
        let h1 = hist(&[0.1, 0.2, 0.3], 0.0, 1.0, 5);
        let h2 = hist(&[0.1, 0.2, 0.3], 0.0, 1.0, 5);
        assert_eq!(h1.total_variation(&h2), 0.0);
    }

    #[test]
    fn disjoint_histograms_have_tv_one() {
        let h1 = hist(&[0.1, 0.1], 0.0, 1.0, 2);
        let h2 = hist(&[0.9, 0.9], 0.0, 1.0, 2);
        assert!((h1.total_variation(&h2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_centers_are_correct() {
        let h = hist(&[0.25, 0.75], 0.0, 1.0, 2);
        let s = h.series();
        assert_eq!(s[0], (0.25, 0.5));
        assert_eq!(s[1], (0.75, 0.5));
    }

    #[test]
    #[should_panic(expected = "share binning")]
    fn tv_rejects_mismatched_bins() {
        let h1 = hist(&[0.1], 0.0, 1.0, 2);
        let h2 = hist(&[0.1], 0.0, 1.0, 3);
        h1.total_variation(&h2);
    }

    #[test]
    fn stability_of_stationary_generator_across_windows() {
        // Regenerating Figure 2's claim in miniature: two consecutive
        // multi-day windows of a stationary calm process have close
        // histograms (single days of a wandering plateau are noisier, so
        // the stability statement is about windows long enough to mix).
        use crate::tracegen::{TraceGenConfig, ZoneVolatility};
        let t = TraceGenConfig::preset(0.03, ZoneVolatility::Calm).generate(384.0, 1.0 / 12.0, 5);
        let d1 = PriceHistogram::from_window(t.window(0.0, 192.0), 0.0, 0.1, 10);
        let d2 = PriceHistogram::from_window(t.window(192.0, 192.0), 0.0, 0.1, 10);
        assert!(
            d1.total_variation(&d2) < 0.5,
            "tv {}",
            d1.total_variation(&d2)
        );
    }
}
