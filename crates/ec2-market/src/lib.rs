//! EC2 market substrate for the SOMPI reproduction.
//!
//! This crate models everything the SOMPI optimizer needs from Amazon EC2
//! circa 2014:
//!
//! * an **instance catalog** ([`instance`]) with per-type core counts,
//!   compute/network/IO capabilities and on-demand prices,
//! * **availability zones** ([`zone`]) and the (type, zone) pairs the paper
//!   calls *circle groups*,
//! * **spot price traces** ([`trace`]) with a deterministic synthetic
//!   generator ([`tracegen`]) calibrated to the qualitative observations of
//!   the paper (Figures 1 and 2): long calm plateaus, rare 10–100× spikes,
//!   strong heterogeneity across types and zones, and a short-horizon-stable
//!   empirical price distribution,
//! * **price histograms** ([`histogram`]) for distribution-stability studies,
//! * the **failure-rate function** `f_i(P, t)` and the **expected spot
//!   price** `S_i(P)` ([`failure`]), estimated from price history exactly the
//!   way Section 4.4 of the paper prescribes (random-start first-passage
//!   sampling),
//! * 2014-era **billing rules** ([`billing`]) for on-demand and spot
//!   instances,
//! * and a [`market`] facade bundling traces for a set of circle groups.
//!
//! Everything is deterministic given a seed so experiments are repeatable.
//!
//! ```
//! use ec2_market::instance::InstanceCatalog;
//! use ec2_market::market::SpotMarket;
//! use ec2_market::tracegen::{MarketProfile, TraceGenerator};
//!
//! // Two days of synthetic history for every (type, zone) pair.
//! let catalog = InstanceCatalog::paper_2014();
//! let profile = MarketProfile::paper_2014(&catalog);
//! let market = SpotMarket::generate(catalog, &TraceGenerator::new(profile, 42), 48.0, 1.0 / 12.0);
//!
//! // Estimate the failure-rate function f(P, t) for one circle group.
//! let group = market.groups().next().unwrap();
//! let estimator = market.try_estimator(group, 0.0, 48.0).unwrap();
//! let f = estimator.failure_rate_exact(estimator.max_price() / 2.0, 12);
//! assert!(f.survival() >= 0.0 && f.survival() <= 1.0);
//! ```

pub mod billing;
pub mod calibrate;
pub mod death;
pub mod failure;
pub mod fault;
pub mod feed;
pub mod histogram;
pub mod index;
pub mod instance;
pub mod market;
pub mod trace;
pub mod tracegen;
pub mod zone;

pub use billing::{BillingModel, BillingPolicy};
pub use calibrate::{calibrate, Calibration};
pub use death::{DeathTimeCache, DeathTimeTable};
pub use failure::{ExpectedSpotPrice, FailureCounts, FailureEstimator, FailureRateFn};
pub use fault::{FaultInjector, FaultPlan, RetryPolicy, Storm};
pub use feed::{parse_feed, resample, traces_by_group, PriceEvent};
pub use histogram::PriceHistogram;
pub use index::{PrefixHistogram, TraceIndex, TraceQuery};
pub use instance::{InstanceCatalog, InstanceType, InstanceTypeId};
pub use market::{CircleGroupId, SpotMarket, UnknownGroupError};
pub use trace::{SpotTrace, TraceWindow};
pub use tracegen::{MarketProfile, TraceGenConfig, TraceGenerator, ZoneVolatility};
pub use zone::AvailabilityZone;

/// Hours are the native time unit of the market model, matching the paper's
/// hourly discretization of failure times and EC2's 2014 hourly billing.
pub type Hours = f64;

/// US dollars.
pub type Usd = f64;
