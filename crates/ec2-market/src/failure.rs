//! Failure-rate function `f_i(P, t)` and expected spot price `S_i(P)`.
//!
//! Section 4.4 ("Obtaining Failure Rate Function") estimates the probability
//! that a circle group bidding `P` suffers its first out-of-bid event in the
//! hour bucket `[t, t+1)` by repeatedly picking a random start point in the
//! recent spot price history and recording the first passage above `P`. We
//! implement both that Monte-Carlo estimator (seeded, reproducible) and the
//! exhaustive all-start-points estimator it converges to.
//!
//! The expected spot price `S_i(P)` is the mean of historical prices at or
//! below the bid (Section 3.2.1), precomputed here with a sorted prefix-sum
//! table so bid-price sweeps are O(log n) per query.

use crate::trace::TraceWindow;
use crate::{Hours, Usd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The estimated failure-rate function of one circle group at one bid price:
/// a sub-distribution over hourly failure buckets plus the survival mass.
///
/// ```
/// use ec2_market::failure::FailureRateFn;
///
/// // 10% chance of dying in hour [0,1), 30% in [1,2), 60% survival.
/// let f = FailureRateFn::new(0.2, vec![0.1, 0.3], 0.6);
/// assert_eq!(f.horizon(), 2);
/// assert_eq!(f.prob_fail_in(0), 0.1);
/// assert_eq!(f.prob_fail_in(5), 0.0); // past the horizon
/// assert!((f.prob_fail() - 0.4).abs() < 1e-12);
/// assert!(f.mean_time_to_failure().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRateFn {
    bid: Usd,
    /// `bucket[t]` = P[first out-of-bid event lands in hour `[t, t+1)`].
    buckets: Vec<f64>,
    /// P[no out-of-bid event within the horizon] — the paper's
    /// `f_i(P, T_i)`, i.e. the application completes on this circle group.
    survival: f64,
}

impl FailureRateFn {
    /// Construct from raw bucket probabilities. Normalizes tiny numerical
    /// drift; panics if the mass is not ≈ 1 or any entry is negative.
    pub fn new(bid: Usd, buckets: Vec<f64>, survival: f64) -> Self {
        assert!(
            buckets.iter().all(|p| *p >= 0.0) && survival >= 0.0,
            "probabilities must be non-negative"
        );
        let mass: f64 = buckets.iter().sum::<f64>() + survival;
        assert!(
            (mass - 1.0).abs() < 1e-6,
            "failure distribution mass must be 1, got {mass}"
        );
        Self {
            bid,
            buckets,
            survival,
        }
    }

    /// The bid price this function was estimated for.
    pub fn bid(&self) -> Usd {
        self.bid
    }

    /// Horizon in hours (number of buckets).
    pub fn horizon(&self) -> usize {
        self.buckets.len()
    }

    /// P[first failure in `[t, t+1)`]; zero past the horizon.
    pub fn prob_fail_in(&self, t: usize) -> f64 {
        self.buckets.get(t).copied().unwrap_or(0.0)
    }

    /// All bucket probabilities.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// Consume the function and take ownership of its bucket vector —
    /// for callers that would otherwise `buckets().to_vec()` a function
    /// they are done with (the assessment hot path clones nothing).
    pub fn into_buckets(self) -> Vec<f64> {
        self.buckets
    }

    /// P[survive the entire horizon].
    pub fn survival(&self) -> f64 {
        self.survival
    }

    /// P[fail at some point within the horizon].
    pub fn prob_fail(&self) -> f64 {
        1.0 - self.survival
    }

    /// Mean time to failure in hours, treating survival as censoring at the
    /// horizon and extrapolating with the empirical tail hazard.
    ///
    /// Returns `None` when no failure mass was observed at all — the bid is
    /// effectively un-terminable (e.g. `P_i = H_i` in the paper, "terminated
    /// in extremely low probability, which we can ignore") and the optimal
    /// checkpoint interval degenerates to "no checkpoints".
    pub fn mean_time_to_failure(&self) -> Option<Hours> {
        let pf = self.prob_fail();
        if pf <= 1e-12 {
            return None;
        }
        let horizon = self.buckets.len() as f64;
        // Conditional mean within the horizon (bucket midpoints)...
        let within: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(t, p)| (t as f64 + 0.5) * p)
            .sum();
        // ...plus the censored mass extrapolated geometrically: survivors
        // restart the same first-passage experiment after `horizon` hours.
        // E[T] = within + survival * (horizon + E[T])  =>
        let ettf = (within + self.survival * horizon) / pf;
        Some(ettf)
    }
}

/// Raw integer first-passage counts behind a [`FailureRateFn`]: how many
/// admissible start points failed in each hour bucket, how many survived
/// the horizon, and how many were usable at all.
///
/// Keeping the *integer* counts (rather than the normalized probabilities)
/// makes horizon truncation exact: a count recorded at sample offset
/// `k ≤ h·sph` lands in the same hour bucket for any horizon `≥ h`, and
/// counts past `h·sph` fold into the survivors, so
/// [`FailureCounts::to_fn`] reproduces `failure_rate_exact(bid, h)` bit
/// for bit for every `h` up to the recorded horizon. This is what lets
/// warm-started re-optimization reuse one table across adaptive windows
/// whose residual horizons shrink.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureCounts {
    bid: Usd,
    /// `buckets[t]` = number of admissible starts whose first out-of-bid
    /// event landed in hour `[t, t+1)`.
    buckets: Vec<u64>,
    /// Starts that survived the full recorded horizon.
    survived: u64,
    /// Admissible starts (price at or below the bid).
    used: u64,
}

impl FailureCounts {
    /// The bid these counts were recorded for.
    pub fn bid(&self) -> Usd {
        self.bid
    }

    /// The recorded horizon in hours — the largest horizon `to_fn` serves.
    pub fn horizon(&self) -> usize {
        self.buckets.len()
    }

    /// Normalize into the failure-rate function for `horizon_hours`,
    /// truncating exactly: the result is bit-identical to
    /// `failure_rate_exact(bid, horizon_hours)` on the same history.
    ///
    /// # Panics
    /// Panics when `horizon_hours` is zero or exceeds the recorded horizon.
    pub fn to_fn(&self, horizon_hours: usize) -> FailureRateFn {
        assert!(horizon_hours > 0, "horizon must be positive");
        assert!(
            horizon_hours <= self.buckets.len(),
            "horizon {horizon_hours} exceeds recorded horizon {}",
            self.buckets.len()
        );
        let buckets = self.buckets[..horizon_hours].to_vec();
        let survived = self.survived + self.buckets[horizon_hours..].iter().sum::<u64>();
        FailureEstimator::finish(self.bid, horizon_hours, buckets, survived, self.used)
    }
}

/// Precomputed `S_i(P)` table: expected spot price given the bid, plus the
/// instant launch probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectedSpotPrice {
    sorted: Vec<Usd>,
    prefix_sum: Vec<f64>,
}

impl ExpectedSpotPrice {
    /// Build the table from a history window.
    pub fn from_window(window: TraceWindow<'_>) -> Self {
        let mut sorted = window.samples().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite prices"));
        let mut prefix_sum = Vec::with_capacity(sorted.len() + 1);
        prefix_sum.push(0.0);
        let mut acc = 0.0;
        for &p in &sorted {
            acc += p;
            prefix_sum.push(acc);
        }
        Self { sorted, prefix_sum }
    }

    fn count_at_or_below(&self, bid: Usd) -> usize {
        self.sorted.partition_point(|&p| p <= bid)
    }

    /// Mean of historical prices at or below `bid` — the paper's `S_i(P_i)`.
    /// `None` when the bid is below every observed price (the instance
    /// would never launch).
    pub fn mean_below(&self, bid: Usd) -> Option<Usd> {
        let n = self.count_at_or_below(bid);
        (n > 0).then(|| self.prefix_sum[n] / n as f64)
    }

    /// Fraction of history time during which the price is at or below
    /// `bid` — the probability a launch request is immediately satisfied.
    pub fn launch_fraction(&self, bid: Usd) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.count_at_or_below(bid) as f64 / self.sorted.len() as f64
    }

    /// Highest observed price (`H_i`).
    pub fn max_price(&self) -> Usd {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Lowest observed price.
    pub fn min_price(&self) -> Usd {
        self.sorted.first().copied().unwrap_or(0.0)
    }
}

/// Estimates failure-rate functions and expected spot prices from a price
/// history window (typically "the previous two days", per the paper).
///
/// ```
/// use ec2_market::failure::FailureEstimator;
/// use ec2_market::trace::SpotTrace;
///
/// // 48 h of calm $0.10 prices with one $1.00 spike at hour 10.
/// let mut prices = vec![0.1; 48];
/// prices[10] = 1.0;
/// let trace = SpotTrace::new(1.0, prices);
///
/// let est = FailureEstimator::from_window(trace.window(0.0, 48.0));
/// assert_eq!(est.max_price(), 1.0);
///
/// // Bidding $0.50 loses only to the single spike, so most of the
/// // exhaustively-enumerated start points survive a 12 h horizon
/// // (only starts within 12 h before the spike die).
/// let f = est.failure_rate_exact(0.5, 12);
/// assert!(f.survival() > 0.5);
///
/// // S_i(P): the mean of historical prices at or below the bid.
/// let s = est.expected_spot_price().mean_below(0.5).unwrap();
/// assert!((s - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FailureEstimator {
    step_hours: Hours,
    prices: Vec<Usd>,
    expected: ExpectedSpotPrice,
}

impl FailureEstimator {
    /// Build an estimator over a history window.
    ///
    /// # Panics
    /// Panics if the window is empty.
    pub fn from_window(window: TraceWindow<'_>) -> Self {
        assert!(!window.is_empty(), "history window must be non-empty");
        Self {
            step_hours: window.step_hours(),
            prices: window.samples().to_vec(),
            expected: ExpectedSpotPrice::from_window(window),
        }
    }

    /// `S_i(P)` table for this history.
    pub fn expected_spot_price(&self) -> &ExpectedSpotPrice {
        &self.expected
    }

    /// FNV-1a digest over the history this estimator was built from (the
    /// step size and every price sample, bit for bit). Two estimators with
    /// equal digests produce bit-identical failure rates, launch delays,
    /// and expected prices, so the digest is a sound cache key for
    /// warm-started re-optimization across adaptive windows.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for shift in (0..64).step_by(8) {
                h ^= (word >> shift) & 0xff;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.prices.len() as u64);
        mix(self.step_hours.to_bits());
        for &p in &self.prices {
            mix(p.to_bits());
        }
        h
    }

    /// Highest historical price `H_i` — the top of the bid search range.
    pub fn max_price(&self) -> Usd {
        self.expected.max_price()
    }

    /// Expected delay (hours) between requesting an instance at a uniformly
    /// random time and the spot price first being at or below `bid` — the
    /// paper's "otherwise it waits" launch semantics. Zero when the bid
    /// covers the whole history; the full window duration when the bid
    /// never admits a launch.
    pub fn expected_launch_delay(&self, bid: Usd) -> Hours {
        let n = self.prices.len();
        if n == 0 {
            return 0.0;
        }
        // Walk backwards over the circular history, carrying the distance
        // to the next admissible sample — O(n) total.
        let mut dist = vec![u32::MAX; n];
        // Two passes over the circle to resolve wrap-around.
        let mut next: Option<usize> = None;
        for pass in 0..2 {
            for i in (0..n).rev() {
                if self.prices[i] <= bid {
                    next = Some(i);
                }
                if let Some(j) = next {
                    let d = if j >= i { j - i } else { j + n - i };
                    dist[i] = dist[i].min(d as u32);
                }
            }
            let _ = pass;
        }
        if dist.contains(&u32::MAX) {
            return self.step_hours * n as f64;
        }
        let total: f64 = dist.iter().map(|&d| d as f64).sum();
        total / n as f64 * self.step_hours
    }

    /// Exhaustive estimator: every sample of the history serves as a start
    /// point once (the `G → all` limit of the paper's sampler). The history
    /// is treated as circular so late start points still observe a full
    /// horizon. Start points where the price already exceeds the bid (the
    /// instance cannot launch) are skipped, matching the paper's bidding
    /// semantics: "if the bid price is higher than the spot price, the
    /// instance can be successfully launched; otherwise it waits".
    pub fn failure_rate_exact(&self, bid: Usd, horizon_hours: usize) -> FailureRateFn {
        let starts = 0..self.prices.len();
        self.estimate(bid, horizon_hours, starts)
    }

    /// Exhaustive first-passage counts at `bid` over `horizon_hours`,
    /// before normalization. `counts.to_fn(h)` for any `h ≤ horizon_hours`
    /// is bit-identical to `failure_rate_exact(bid, h)`, which makes the
    /// counts reusable across shrinking horizons without re-walking the
    /// history.
    pub fn failure_counts(&self, bid: Usd, horizon_hours: usize) -> FailureCounts {
        let starts = 0..self.prices.len();
        let (buckets, survived, used) = self.count(bid, horizon_hours, starts);
        FailureCounts {
            bid,
            buckets,
            survived,
            used,
        }
    }

    /// The paper's Monte-Carlo estimator with `g` random start points.
    pub fn failure_rate_sampled(
        &self,
        bid: Usd,
        horizon_hours: usize,
        g: usize,
        seed: u64,
    ) -> FailureRateFn {
        assert!(g > 0, "need at least one sample");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.prices.len();
        let starts: Vec<usize> = (0..g).map(|_| rng.gen_range(0..n)).collect();
        self.estimate(bid, horizon_hours, starts.into_iter())
    }

    fn estimate(
        &self,
        bid: Usd,
        horizon_hours: usize,
        starts: impl Iterator<Item = usize>,
    ) -> FailureRateFn {
        let (buckets, survived, used) = self.count(bid, horizon_hours, starts);
        Self::finish(bid, horizon_hours, buckets, survived, used)
    }

    /// The shared counting core of `estimate`/`failure_counts`: integer
    /// bucket counts, survivors, and usable starts.
    fn count(
        &self,
        bid: Usd,
        horizon_hours: usize,
        starts: impl Iterator<Item = usize>,
    ) -> (Vec<u64>, u64, u64) {
        assert!(horizon_hours > 0, "horizon must be positive");
        let n = self.prices.len();
        let samples_per_hour = (1.0 / self.step_hours).round().max(1.0) as usize;
        let horizon_samples = horizon_hours * samples_per_hour;

        // Distance (in samples) from each index to the first sample at or
        // after it (circularly) whose price strictly exceeds the bid;
        // `u32::MAX` when the bid is never exceeded. Same two-pass backward
        // carry as `expected_launch_delay`, so the whole precompute is O(n)
        // — it replaces an O(horizon) probe loop *per start point*, which
        // made `failure_rate_exact` O(n · horizon).
        let mut dist = vec![u32::MAX; n];
        let mut next: Option<usize> = None;
        for _pass in 0..2 {
            for i in (0..n).rev() {
                if self.prices[i] > bid {
                    next = Some(i);
                }
                if let Some(j) = next {
                    let d = if j >= i { j - i } else { j + n - i };
                    dist[i] = dist[i].min(d as u32);
                }
            }
        }

        let mut buckets = vec![0u64; horizon_hours];
        let mut survived = 0u64;
        let mut used = 0u64;
        for s in starts {
            if self.prices[s] > bid {
                continue; // cannot launch here
            }
            used += 1;
            // The first strictly-after-`s` sample above the bid is
            // `dist[(s+1) % n] + 1` steps ahead — exactly the `k` the
            // replaced linear probe found, so the integer bucket counts are
            // bit-identical to the scan (kept below as a test reference).
            let k = match dist[(s + 1) % n] {
                u32::MAX => usize::MAX,
                d => d as usize + 1,
            };
            if k <= horizon_samples {
                let hour = ((k - 1) / samples_per_hour).min(horizon_hours - 1);
                buckets[hour] += 1;
            } else {
                survived += 1;
            }
        }

        (buckets, survived, used)
    }

    /// The original per-start probe loop, retained verbatim as the
    /// reference implementation the O(n) carry rewrite is differentially
    /// tested against.
    #[cfg(test)]
    fn estimate_by_scan(
        &self,
        bid: Usd,
        horizon_hours: usize,
        starts: impl Iterator<Item = usize>,
    ) -> FailureRateFn {
        assert!(horizon_hours > 0, "horizon must be positive");
        let n = self.prices.len();
        let samples_per_hour = (1.0 / self.step_hours).round().max(1.0) as usize;
        let horizon_samples = horizon_hours * samples_per_hour;
        let mut buckets = vec![0u64; horizon_hours];
        let mut survived = 0u64;
        let mut used = 0u64;

        for s in starts {
            if self.prices[s] > bid {
                continue; // cannot launch here
            }
            used += 1;
            let mut failed = false;
            for k in 1..=horizon_samples {
                let p = self.prices[(s + k) % n];
                if p > bid {
                    let hour = ((k - 1) / samples_per_hour).min(horizon_hours - 1);
                    buckets[hour] += 1;
                    failed = true;
                    break;
                }
            }
            if !failed {
                survived += 1;
            }
        }

        Self::finish(bid, horizon_hours, buckets, survived, used)
    }

    fn finish(
        bid: Usd,
        horizon_hours: usize,
        buckets: Vec<u64>,
        survived: u64,
        used: u64,
    ) -> FailureRateFn {
        if used == 0 {
            // The bid never admits a launch; model it as immediate failure,
            // which the optimizer prices as "this circle group is useless".
            let mut b = vec![0.0; horizon_hours];
            b[0] = 1.0;
            return FailureRateFn::new(bid, b, 0.0);
        }
        let buckets = buckets
            .into_iter()
            .map(|c| c as f64 / used as f64)
            .collect();
        FailureRateFn::new(bid, buckets, survived as f64 / used as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpotTrace;

    fn estimator(prices: &[f64], step: f64) -> FailureEstimator {
        let t = SpotTrace::new(step, prices.to_vec());
        FailureEstimator::from_window(t.window(0.0, f64::INFINITY))
    }

    #[test]
    fn constant_price_never_fails_above_it() {
        let e = estimator(&[0.1; 48], 1.0);
        let f = e.failure_rate_exact(0.2, 10);
        assert_eq!(f.survival(), 1.0);
        assert_eq!(f.prob_fail(), 0.0);
        assert!(f.mean_time_to_failure().is_none());
    }

    #[test]
    fn bid_below_all_prices_is_immediate_failure() {
        let e = estimator(&[0.1; 48], 1.0);
        let f = e.failure_rate_exact(0.05, 10);
        assert_eq!(f.prob_fail_in(0), 1.0);
        assert_eq!(f.survival(), 0.0);
    }

    #[test]
    fn periodic_spike_concentrates_failures() {
        // Price spikes every 12 hours for 1 hour; bidding between base and
        // spike must fail within 12 hours from any start.
        let mut prices = Vec::new();
        for day in 0..8 {
            let _ = day;
            prices.extend(std::iter::repeat_n(0.1, 11));
            prices.push(1.0);
        }
        let e = estimator(&prices, 1.0);
        let f = e.failure_rate_exact(0.5, 12);
        assert!(f.survival() < 1e-9, "survival {}", f.survival());
        let mass: f64 = f.buckets().iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_bid_survives_no_worse() {
        let t = crate::tracegen::TraceGenConfig::preset(
            0.03,
            crate::tracegen::ZoneVolatility::Volatile,
        )
        .generate(240.0, 1.0 / 12.0, 3);
        let e = FailureEstimator::from_window(t.window(0.0, f64::INFINITY));
        let lo = e.failure_rate_exact(0.035, 24);
        let hi = e.failure_rate_exact(0.5, 24);
        assert!(hi.survival() >= lo.survival());
    }

    #[test]
    fn sampled_estimator_approaches_exact() {
        let t = crate::tracegen::TraceGenConfig::preset(
            0.03,
            crate::tracegen::ZoneVolatility::Volatile,
        )
        .generate(480.0, 1.0 / 12.0, 9);
        let e = FailureEstimator::from_window(t.window(0.0, f64::INFINITY));
        let exact = e.failure_rate_exact(0.06, 24);
        let sampled = e.failure_rate_sampled(0.06, 24, 20_000, 1);
        assert!(
            (exact.survival() - sampled.survival()).abs() < 0.05,
            "exact {} vs sampled {}",
            exact.survival(),
            sampled.survival()
        );
    }

    #[test]
    fn sampled_estimator_is_deterministic_per_seed() {
        let e = estimator(&[0.1, 0.2, 0.05, 0.4, 0.1, 0.1], 1.0);
        let a = e.failure_rate_sampled(0.25, 4, 500, 7);
        let b = e.failure_rate_sampled(0.25, 4, 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn expected_spot_price_means_below_bid() {
        let e = estimator(&[0.1, 0.2, 0.3, 0.4], 1.0);
        let s = e.expected_spot_price();
        assert_eq!(s.mean_below(0.05), None);
        assert!((s.mean_below(0.25).unwrap() - 0.15).abs() < 1e-12);
        assert!((s.mean_below(1.0).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(s.launch_fraction(0.25), 0.5);
        assert_eq!(s.max_price(), 0.4);
    }

    #[test]
    fn launch_delay_zero_when_bid_covers_history() {
        let e = estimator(&[0.1, 0.2, 0.15, 0.1], 1.0);
        assert_eq!(e.expected_launch_delay(0.2), 0.0);
    }

    #[test]
    fn launch_delay_full_window_when_unlaunchable() {
        let e = estimator(&[0.1; 10], 0.5);
        assert_eq!(e.expected_launch_delay(0.05), 5.0);
    }

    #[test]
    fn launch_delay_matches_hand_computation() {
        // Prices: [hi, hi, lo, hi]; bid admits only index 2.
        // Distances to next admissible (circular): [2, 1, 0, 3] → mean 1.5
        // steps × 1 h.
        let e = estimator(&[9.0, 9.0, 0.1, 9.0], 1.0);
        assert!((e.expected_launch_delay(0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn launch_delay_monotone_in_bid() {
        let t = crate::tracegen::TraceGenConfig::preset(
            0.03,
            crate::tracegen::ZoneVolatility::Volatile,
        )
        .generate(240.0, 1.0 / 12.0, 17);
        let e = FailureEstimator::from_window(t.window(0.0, f64::INFINITY));
        let mut prev = f64::INFINITY;
        for bid in [0.02, 0.03, 0.05, 0.1, 0.5] {
            let d = e.expected_launch_delay(bid);
            assert!(d <= prev + 1e-12, "bid {bid}: {d} > {prev}");
            prev = d;
        }
    }

    #[test]
    fn mttf_of_geometric_hazard_is_plausible() {
        // Hourly independent failure with p = 0.25 per hour has MTTF 4h
        // (geometric mean 1/p, measured from bucket midpoints ≈ 3.5–4.5).
        let buckets: Vec<f64> = (0..40).map(|t| 0.25 * (0.75f64).powi(t)).collect();
        let survival = 1.0 - buckets.iter().sum::<f64>();
        let f = FailureRateFn::new(0.1, buckets, survival);
        let mttf = f.mean_time_to_failure().unwrap();
        assert!((mttf - 4.0).abs() < 0.6, "mttf {mttf}");
    }

    #[test]
    fn carry_estimate_matches_scan_reference() {
        // The O(n) distance-carry rewrite must reproduce the original
        // O(n·horizon) probe loop bit for bit — same integer bucket counts,
        // so the same float divisions. Exercise generated traces (sub-hour
        // steps, wrap-around) and degenerate hand traces at several bids.
        let gen = crate::tracegen::TraceGenConfig::preset(
            0.05,
            crate::tracegen::ZoneVolatility::Volatile,
        )
        .generate(120.0, 1.0 / 12.0, 23);
        let estimators = [
            estimator(gen.samples(), 1.0 / 12.0),
            estimator(&[0.1; 5], 1.0),
            estimator(&[0.4], 1.0),
            estimator(&[9.0, 9.0, 0.1, 9.0, 0.1, 0.1], 0.5),
        ];
        for e in &estimators {
            let max = e.max_price();
            for bid in [0.0, 0.05, 0.09, 0.3, max, max * 2.0] {
                for horizon in [1usize, 7, 24, 400] {
                    let fast = e.estimate(bid, horizon, 0..e.prices.len());
                    let slow = e.estimate_by_scan(bid, horizon, 0..e.prices.len());
                    assert_eq!(fast, slow, "bid {bid} horizon {horizon}");
                }
            }
            // Sampled start points go through the same code path.
            let fast = e.failure_rate_sampled(0.08, 12, 200, 5);
            let slow = e.estimate_by_scan(0.08, 12, {
                use rand::rngs::StdRng;
                use rand::{Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(5);
                let n = e.prices.len();
                let starts: Vec<usize> = (0..200).map(|_| rng.gen_range(0..n)).collect();
                starts.into_iter()
            });
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn truncated_counts_match_direct_estimation() {
        // `failure_counts(bid, H).to_fn(h)` must be bit-identical to
        // `failure_rate_exact(bid, h)` for every h ≤ H — the exactness
        // contract warm-started re-optimization relies on. Cover generated
        // traces, degenerate traces, unlaunchable bids, and h == H.
        let gen = crate::tracegen::TraceGenConfig::preset(
            0.05,
            crate::tracegen::ZoneVolatility::Volatile,
        )
        .generate(120.0, 1.0 / 12.0, 29);
        let estimators = [
            estimator(gen.samples(), 1.0 / 12.0),
            estimator(&[0.1; 5], 1.0),
            estimator(&[0.4], 1.0),
            estimator(&[9.0, 9.0, 0.1, 9.0, 0.1, 0.1], 0.5),
        ];
        for e in &estimators {
            let max = e.max_price();
            for bid in [0.0, 0.05, 0.09, 0.3, max, max * 2.0] {
                let counts = e.failure_counts(bid, 400);
                assert_eq!(counts.horizon(), 400);
                assert_eq!(counts.bid(), bid);
                for horizon in [1usize, 2, 7, 24, 399, 400] {
                    assert_eq!(
                        counts.to_fn(horizon),
                        e.failure_rate_exact(bid, horizon),
                        "bid {bid} horizon {horizon}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds recorded horizon")]
    fn truncated_counts_reject_longer_horizons() {
        let e = estimator(&[0.1; 5], 1.0);
        e.failure_counts(0.2, 4).to_fn(5);
    }

    #[test]
    fn digest_separates_histories_and_sticks_to_equal_ones() {
        let a = estimator(&[0.1, 0.2, 0.3], 1.0);
        let b = estimator(&[0.1, 0.2, 0.3], 1.0);
        assert_eq!(a.digest(), b.digest());
        // Different prices, different step, and different length all move
        // the digest.
        assert_ne!(a.digest(), estimator(&[0.1, 0.2, 0.4], 1.0).digest());
        assert_ne!(a.digest(), estimator(&[0.1, 0.2, 0.3], 0.5).digest());
        assert_ne!(a.digest(), estimator(&[0.1, 0.2], 1.0).digest());
    }

    #[test]
    fn sub_hour_resolution_buckets_correctly() {
        // 5-minute steps; spike at sample 13 (~65 min) => failure in hour 1.
        let mut prices = vec![0.1; 36];
        prices[13] = 9.0;
        let e = estimator(&prices, 1.0 / 12.0);
        // Only start point 0 matters for this check; use exact and confirm
        // the mass in bucket 1 from starts near 0 is nonzero.
        let f = e.failure_rate_exact(0.5, 3);
        assert!(f.prob_fail() > 0.0);
        let mass: f64 = f.buckets().iter().sum::<f64>() + f.survival();
        assert!((mass - 1.0).abs() < 1e-9);
    }
}
