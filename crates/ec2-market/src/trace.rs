//! Spot price traces.
//!
//! A [`SpotTrace`] is a fixed-resolution time series of spot prices for one
//! circle group (one instance type in one availability zone). All market
//! estimation in this crate — failure rates, expected spot prices, histogram
//! stability — consumes traces through this type, so real AWS price history
//! (if available) and the synthetic generator in [`crate::tracegen`] are
//! interchangeable.

use crate::{Hours, Usd};
use serde::{DeError, Deserialize, Serialize, Value};

/// A uniformly sampled spot price time series.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotTrace {
    /// Sampling step in hours (e.g. `1.0 / 12.0` for 5-minute resolution).
    step_hours: Hours,
    /// Price at sample `i`, valid over `[i*step, (i+1)*step)`.
    prices: Vec<Usd>,
    /// Cached `(max, min)` over `prices`, maintained by the constructor and
    /// [`SpotTrace::extend_from`]. Bit-identical to the folds it replaces:
    /// `f64::max`/`f64::min` over finite values always return one of their
    /// arguments, so incremental updates equal a full left-fold recompute.
    extrema: (Usd, Usd),
}

fn fold_extrema(prices: &[Usd]) -> (Usd, Usd) {
    (
        prices.iter().cloned().fold(0.0, f64::max),
        prices.iter().cloned().fold(f64::INFINITY, f64::min),
    )
}

impl SpotTrace {
    /// Build a trace from raw samples.
    ///
    /// # Panics
    /// Panics if `step_hours` is not strictly positive, if `prices` is
    /// empty, or if any price is negative or non-finite.
    pub fn new(step_hours: Hours, prices: Vec<Usd>) -> Self {
        assert!(step_hours > 0.0, "step must be positive");
        assert!(!prices.is_empty(), "trace must contain at least one sample");
        assert!(
            prices.iter().all(|p| p.is_finite() && *p >= 0.0),
            "prices must be finite and non-negative"
        );
        let extrema = fold_extrema(&prices);
        Self {
            step_hours,
            prices,
            extrema,
        }
    }

    /// Sampling step in hours.
    pub fn step_hours(&self) -> Hours {
        self.step_hours
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the trace has no samples (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Total covered duration in hours.
    pub fn duration(&self) -> Hours {
        self.step_hours * self.prices.len() as f64
    }

    /// Raw samples.
    pub fn samples(&self) -> &[Usd] {
        &self.prices
    }

    /// Price in effect at time `t` (hours since trace start). Times at or
    /// past the end clamp to the final sample, which lets replay runs outlive
    /// a finite trace gracefully.
    pub fn price_at(&self, t: Hours) -> Usd {
        if t <= 0.0 {
            return self.prices[0];
        }
        let idx = (t / self.step_hours) as usize;
        self.prices[idx.min(self.prices.len() - 1)]
    }

    /// Index of the sample containing time `t`, clamped to the trace.
    pub fn index_at(&self, t: Hours) -> usize {
        if t <= 0.0 {
            return 0;
        }
        ((t / self.step_hours) as usize).min(self.prices.len() - 1)
    }

    /// Maximum price in the trace — the paper's `H_i`, the upper end of the
    /// bid-price search range for this circle group. O(1): cached at
    /// construction.
    pub fn max_price(&self) -> Usd {
        self.extrema.0
    }

    /// Minimum price in the trace. O(1): cached at construction.
    pub fn min_price(&self) -> Usd {
        self.extrema.1
    }

    /// Arithmetic mean price.
    pub fn mean_price(&self) -> Usd {
        self.prices.iter().sum::<f64>() / self.prices.len() as f64
    }

    /// A borrowed window `[start, start + len_hours)` of this trace.
    ///
    /// The window is clamped to the trace bounds; it always contains at
    /// least one sample.
    pub fn window(&self, start: Hours, len_hours: Hours) -> TraceWindow<'_> {
        let lo = self.index_at(start.max(0.0));
        let want = (len_hours / self.step_hours).ceil() as usize;
        let hi = (lo + want.max(1)).min(self.prices.len());
        TraceWindow {
            step_hours: self.step_hours,
            prices: &self.prices[lo..hi],
        }
    }

    /// First-passage time: the earliest time `>= start` at which the price
    /// strictly exceeds `bid`, or `None` if it never does within the trace.
    ///
    /// This is the out-of-bid event for an instance bidding `bid` launched
    /// at `start`: EC2 terminates the instance the moment the spot price
    /// rises above the bid.
    pub fn first_passage_above(&self, start: Hours, bid: Usd) -> Option<Hours> {
        let lo = self.index_at(start.max(0.0));
        self.prices[lo..]
            .iter()
            .position(|&p| p > bid)
            .map(|off| (lo + off) as f64 * self.step_hours)
            .map(|t| t.max(start))
    }

    /// Launch-search twin of [`SpotTrace::first_passage_above`]: the
    /// earliest time `>= start` at which the price is at or below `bid`,
    /// searching sample boundaries only, or `None` if that time would fall
    /// at or past `cutoff` (or past the end of the trace).
    ///
    /// A request launched at `start` starts immediately if the sample
    /// containing `start` is already affordable; otherwise the price can
    /// only change at the next sample boundary `i * step`, so boundaries
    /// are the only candidate launch times. This replaces the executors'
    /// old `t += step` probe loops: stepping from an arbitrary float
    /// `start` accumulates rounding drift, while boundary times are
    /// computed directly as `i as f64 * step` — the same arithmetic form
    /// the indexed search uses, so both paths agree bit for bit.
    pub fn first_time_at_or_below(&self, start: Hours, bid: Usd, cutoff: Hours) -> Option<Hours> {
        if start >= cutoff || start >= self.duration() {
            return None;
        }
        let lo = self.index_at(start);
        if self.prices[lo] <= bid {
            return Some(start);
        }
        self.prices[lo + 1..]
            .iter()
            .position(|&p| p <= bid)
            .map(|off| (lo + 1 + off) as f64 * self.step_hours)
            .filter(|&t| t < cutoff)
    }

    /// Concatenate another trace (same step) onto this one. Used by the
    /// adaptive algorithm to extend the known history window by window.
    pub fn extend_from(&mut self, other: &SpotTrace) {
        assert!(
            (self.step_hours - other.step_hours).abs() < 1e-12,
            "cannot concatenate traces with different steps"
        );
        self.prices.extend_from_slice(&other.prices);
        self.extrema = (
            self.extrema.0.max(other.extrema.0),
            self.extrema.1.min(other.extrema.1),
        );
    }
}

// Manual serde impls: the cached extrema are derived state and must not
// change the serialized shape (`{step_hours, prices}`), and the vendored
// `serde_derive` has no `#[serde(skip)]`.
impl Serialize for SpotTrace {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("step_hours".to_string(), self.step_hours.to_value()),
            ("prices".to_string(), self.prices.to_value()),
        ])
    }
}

impl Deserialize for SpotTrace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let step_hours = f64::from_value(v.field("step_hours"))?;
        let prices = Vec::<Usd>::from_value(v.field("prices"))?;
        if step_hours.is_nan() || step_hours <= 0.0 {
            return Err(DeError::msg("trace step must be positive"));
        }
        if prices.is_empty() {
            return Err(DeError::msg("trace must contain at least one sample"));
        }
        if !prices.iter().all(|p| p.is_finite() && *p >= 0.0) {
            return Err(DeError::msg("trace prices must be finite and non-negative"));
        }
        Ok(SpotTrace::new(step_hours, prices))
    }
}

/// A borrowed, zero-copy view of a contiguous slice of a [`SpotTrace`].
///
/// Estimators accept windows so the adaptive algorithm can re-estimate from
/// "the previous optimization window" without cloning price data.
#[derive(Debug, Clone, Copy)]
pub struct TraceWindow<'a> {
    step_hours: Hours,
    prices: &'a [Usd],
}

impl<'a> TraceWindow<'a> {
    /// Sampling step in hours.
    pub fn step_hours(&self) -> Hours {
        self.step_hours
    }

    /// Samples in the window.
    pub fn samples(&self) -> &'a [Usd] {
        self.prices
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Covered duration in hours.
    pub fn duration(&self) -> Hours {
        self.step_hours * self.prices.len() as f64
    }

    /// Maximum price in the window (`H_i` over this window).
    pub fn max_price(&self) -> Usd {
        self.prices.iter().cloned().fold(0.0, f64::max)
    }

    /// Price at offset `t` hours from the window start (clamped).
    pub fn price_at(&self, t: Hours) -> Usd {
        if t <= 0.0 {
            return self.prices[0];
        }
        let idx = (t / self.step_hours) as usize;
        self.prices[idx.min(self.prices.len() - 1)]
    }

    /// Copy this window into an owned [`SpotTrace`].
    pub fn to_trace(&self) -> SpotTrace {
        SpotTrace::new(self.step_hours, self.prices.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(prices: &[f64]) -> SpotTrace {
        SpotTrace::new(0.5, prices.to_vec())
    }

    #[test]
    fn price_lookup_uses_floor_semantics() {
        let tr = t(&[1.0, 2.0, 3.0]);
        assert_eq!(tr.price_at(0.0), 1.0);
        assert_eq!(tr.price_at(0.49), 1.0);
        assert_eq!(tr.price_at(0.5), 2.0);
        assert_eq!(tr.price_at(1.49), 3.0);
        // Past the end clamps.
        assert_eq!(tr.price_at(99.0), 3.0);
        // Negative clamps to start.
        assert_eq!(tr.price_at(-1.0), 1.0);
    }

    #[test]
    fn duration_and_extrema() {
        let tr = t(&[0.1, 0.9, 0.4]);
        assert!((tr.duration() - 1.5).abs() < 1e-12);
        assert_eq!(tr.max_price(), 0.9);
        assert_eq!(tr.min_price(), 0.1);
        assert!((tr.mean_price() - (0.1 + 0.9 + 0.4) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn first_passage_finds_out_of_bid_event() {
        let tr = t(&[0.1, 0.1, 0.5, 0.1, 0.8]);
        // Bid 0.3: first exceeded at sample 2 => time 1.0.
        assert_eq!(tr.first_passage_above(0.0, 0.3), Some(1.0));
        // Starting after the first spike, next passage is sample 4 => 2.0.
        assert_eq!(tr.first_passage_above(1.6, 0.3), Some(2.0));
        // Bid above the max never fails.
        assert_eq!(tr.first_passage_above(0.0, 1.0), None);
        // Bid equal to a price does NOT fail (strictly greater).
        assert_eq!(tr.first_passage_above(0.0, 0.8), None);
    }

    #[test]
    fn first_passage_when_already_above_is_immediate() {
        let tr = t(&[0.9, 0.1]);
        let fp = tr.first_passage_above(0.0, 0.5).unwrap();
        assert_eq!(fp, 0.0);
        // Start strictly inside the failing sample: failure can't predate
        // the launch time.
        let fp = tr.first_passage_above(0.2, 0.5).unwrap();
        assert!(fp >= 0.2);
    }

    #[test]
    fn window_clamps_to_bounds() {
        let tr = t(&[1.0, 2.0, 3.0, 4.0]);
        let w = tr.window(0.5, 1.0);
        assert_eq!(w.samples(), &[2.0, 3.0]);
        let w = tr.window(1.5, 99.0);
        assert_eq!(w.samples(), &[4.0]);
        let w = tr.window(-5.0, 0.6);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn window_roundtrips_to_trace() {
        let tr = t(&[1.0, 2.0, 3.0, 4.0]);
        let owned = tr.window(0.0, 99.0).to_trace();
        assert_eq!(owned, tr);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = t(&[1.0]);
        a.extend_from(&t(&[2.0, 3.0]));
        assert_eq!(a.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn extend_updates_cached_extrema() {
        let mut a = t(&[0.5]);
        a.extend_from(&t(&[0.9, 0.2]));
        assert_eq!(a.max_price(), 0.9);
        assert_eq!(a.min_price(), 0.2);
        assert_eq!((a.max_price(), a.min_price()), {
            let full = t(&[0.5, 0.9, 0.2]);
            (full.max_price(), full.min_price())
        });
    }

    #[test]
    fn launch_search_uses_boundary_semantics() {
        let tr = t(&[0.9, 0.9, 0.1, 0.9]); // step 0.5
                                           // Already affordable at start: launch immediately.
        assert_eq!(tr.first_time_at_or_below(0.0, 1.0, 99.0), Some(0.0));
        // Affordable first at sample 2: launch at the boundary 1.0, even
        // from a fractional start inside sample 0.
        assert_eq!(tr.first_time_at_or_below(0.2, 0.5, 99.0), Some(1.0));
        // Cutoff excludes the boundary (strictly-before semantics).
        assert_eq!(tr.first_time_at_or_below(0.2, 0.5, 1.0), None);
        // Start at or past the end never launches.
        assert_eq!(tr.first_time_at_or_below(2.0, 1.0, 99.0), None);
        // Never affordable within the trace.
        assert_eq!(tr.first_time_at_or_below(0.0, 0.05, 99.0), None);
    }

    #[test]
    fn serde_roundtrip_skips_cached_extrema() {
        let tr = t(&[0.1, 0.9]);
        let v = tr.to_value();
        assert!(v.get("extrema").is_none(), "cache must not be serialized");
        let back = SpotTrace::from_value(&v).unwrap();
        assert_eq!(back, tr);
        assert!(SpotTrace::from_value(&Value::Obj(vec![])).is_err());
    }

    #[test]
    #[should_panic(expected = "different steps")]
    fn extend_rejects_mismatched_step() {
        let mut a = t(&[1.0]);
        a.extend_from(&SpotTrace::new(0.25, vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        SpotTrace::new(1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_price_rejected() {
        SpotTrace::new(1.0, vec![-0.1]);
    }
}
