//! EC2 billing rules.
//!
//! In 2014 (the paper's setting) EC2 billed in whole instance-hours:
//!
//! * **on-demand**: every started hour is charged at the fixed rate;
//! * **spot**: each instance-hour is charged at the *spot price in effect at
//!   the start of that hour* (not the bid); if AWS terminates the instance
//!   out-of-bid, the final partial hour is **free**; if the user terminates
//!   it (e.g. a replica cancelled because another circle group finished),
//!   the partial hour is charged.
//!
//! A per-second policy is included so ablation experiments can quantify how
//! much of the paper's cost structure is an artifact of hourly billing.

use crate::trace::SpotTrace;
use crate::{Hours, Usd};
use serde::{Deserialize, Serialize};

/// Billing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BillingPolicy {
    /// 2014 rules: whole instance-hours, spot priced at hour start,
    /// provider-terminated partial spot hours free.
    #[default]
    HourlyRoundUp,
    /// Modern rules: exact duration at the prevailing price.
    PerSecond,
}

/// Who ended the instance's life — decides whether the last partial spot
/// hour is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// Out-of-bid event: AWS reclaimed the instance. Last partial hour free.
    Provider,
    /// The user released the instance (job done / replica cancelled).
    User,
}

/// Stateless billing calculator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BillingModel {
    /// Active billing policy.
    pub policy: BillingPolicy,
}

impl BillingModel {
    /// 2014-era hourly billing.
    pub fn hourly() -> Self {
        Self {
            policy: BillingPolicy::HourlyRoundUp,
        }
    }

    /// Modern per-second billing.
    pub fn per_second() -> Self {
        Self {
            policy: BillingPolicy::PerSecond,
        }
    }

    /// Cost of `count` on-demand instances at `unit_price` running for
    /// `duration` hours.
    pub fn on_demand_cost(&self, unit_price: Usd, duration: Hours, count: u32) -> Usd {
        if duration <= 0.0 {
            return 0.0;
        }
        let hours = match self.policy {
            BillingPolicy::HourlyRoundUp => duration.ceil(),
            BillingPolicy::PerSecond => duration,
        };
        unit_price * hours * count as f64
    }

    /// Cost of `count` spot instances launched at `start` (hours into the
    /// trace) and ending at `end`, charged per the policy against the
    /// trace's realized prices.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn spot_cost(
        &self,
        trace: &SpotTrace,
        start: Hours,
        end: Hours,
        terminated_by: Termination,
        count: u32,
    ) -> Usd {
        assert!(end >= start, "end must not precede start");
        if end == start {
            return 0.0;
        }
        let per_instance = match self.policy {
            BillingPolicy::PerSecond => {
                // Integrate the realized price over [start, end).
                let mut acc = 0.0;
                let mut t = start;
                while t < end {
                    let next = (t.floor() + 1.0).min(end);
                    acc += trace.price_at(t) * (next - t);
                    t = next;
                }
                acc
            }
            BillingPolicy::HourlyRoundUp => {
                let mut acc = 0.0;
                let mut hour_start = start;
                while hour_start < end {
                    let hour_end = hour_start + 1.0;
                    let full_hour = hour_end <= end;
                    let charge = match (full_hour, terminated_by) {
                        (true, _) => true,
                        (false, Termination::User) => true,
                        (false, Termination::Provider) => false,
                    };
                    if charge {
                        acc += trace.price_at(hour_start);
                    }
                    hour_start = hour_end;
                }
                acc
            }
        };
        per_instance * count as f64
    }

    /// Expected-model spot cost: the paper's Formula 5 charges the expected
    /// spot price `S_i` for the whole runtime; this helper applies the same
    /// hour-granularity convention so model and replay agree in shape.
    pub fn spot_cost_expected(&self, expected_price: Usd, duration: Hours, count: u32) -> Usd {
        if duration <= 0.0 {
            return 0.0;
        }
        let hours = match self.policy {
            BillingPolicy::HourlyRoundUp => duration.ceil(),
            BillingPolicy::PerSecond => duration,
        };
        expected_price * hours * count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(price: f64, hours: usize) -> SpotTrace {
        SpotTrace::new(1.0, vec![price; hours])
    }

    #[test]
    fn on_demand_rounds_up() {
        let b = BillingModel::hourly();
        assert_eq!(b.on_demand_cost(2.0, 1.5, 1), 4.0);
        assert_eq!(b.on_demand_cost(2.0, 2.0, 1), 4.0);
        assert_eq!(b.on_demand_cost(2.0, 0.0, 10), 0.0);
        assert_eq!(b.on_demand_cost(2.0, 1.0, 3), 6.0);
    }

    #[test]
    fn on_demand_per_second_is_exact() {
        let b = BillingModel::per_second();
        assert_eq!(b.on_demand_cost(2.0, 1.5, 2), 6.0);
    }

    #[test]
    fn spot_full_hours_charged_at_hour_start_price() {
        let t = SpotTrace::new(1.0, vec![0.1, 0.2, 0.4, 0.8]);
        let b = BillingModel::hourly();
        let c = b.spot_cost(&t, 0.0, 3.0, Termination::User, 1);
        assert!((c - (0.1 + 0.2 + 0.4)).abs() < 1e-12);
    }

    #[test]
    fn provider_termination_waives_partial_hour() {
        let t = flat(0.1, 10);
        let b = BillingModel::hourly();
        let user = b.spot_cost(&t, 0.0, 2.5, Termination::User, 1);
        let prov = b.spot_cost(&t, 0.0, 2.5, Termination::Provider, 1);
        assert!((user - 0.3).abs() < 1e-12);
        assert!((prov - 0.2).abs() < 1e-12);
    }

    #[test]
    fn per_second_integrates_price() {
        let t = SpotTrace::new(1.0, vec![0.1, 0.3]);
        let b = BillingModel::per_second();
        let c = b.spot_cost(&t, 0.5, 1.5, Termination::User, 1);
        assert!((c - (0.1 * 0.5 + 0.3 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_costs_nothing() {
        let t = flat(0.1, 4);
        let b = BillingModel::hourly();
        assert_eq!(b.spot_cost(&t, 1.0, 1.0, Termination::User, 8), 0.0);
    }

    #[test]
    fn instance_count_scales_linearly() {
        let t = flat(0.1, 4);
        let b = BillingModel::hourly();
        let c1 = b.spot_cost(&t, 0.0, 2.0, Termination::User, 1);
        let c4 = b.spot_cost(&t, 0.0, 2.0, Termination::User, 4);
        assert!((c4 - 4.0 * c1).abs() < 1e-12);
    }

    #[test]
    fn expected_model_matches_flat_replay() {
        // On a flat trace, Formula-5 style expected cost equals replayed
        // cost for user-terminated whole-hour runs.
        let t = flat(0.07, 48);
        let b = BillingModel::hourly();
        let replay = b.spot_cost(&t, 0.0, 5.0, Termination::User, 3);
        let model = b.spot_cost_expected(0.07, 5.0, 3);
        assert!((replay - model).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn negative_interval_panics() {
        let t = flat(0.1, 2);
        BillingModel::hourly().spot_cost(&t, 2.0, 1.0, Termination::User, 1);
    }
}
