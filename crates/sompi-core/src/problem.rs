//! Problem construction: turning (application profile, market, deadline)
//! into the optimizer's inputs.
//!
//! For every candidate circle group we pre-compute the paper's per-group
//! constants — `M_i` (instance count), `T_i` (productive execution time,
//! via the TAU-style estimator in `mpi-sim`), `O_i` (checkpoint overhead)
//! and `R_i` (recovery overhead) — and for every instance type an
//! [`OnDemandOption`] (`T_d`, `D_d`, `M_d`).

use crate::error::SompiError;
use crate::model::{CircleGroup, OnDemandOption};
use crate::Hours;
use ec2_market::instance::InstanceTypeId;
use ec2_market::market::{CircleGroupId, SpotMarket};
use mpi_sim::checkpoint::CheckpointSpec;
use mpi_sim::cluster::ClusterSpec;
use mpi_sim::profile::AppProfile;
use mpi_sim::storage::S3Store;
use serde::{Deserialize, Serialize};

/// A fully specified optimization problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Application name, for reports.
    pub app: String,
    /// Process count `N`.
    pub processes: u32,
    /// User deadline, hours.
    pub deadline: Hours,
    /// Candidate circle groups (`K` of them) with per-group constants.
    pub candidates: Vec<CircleGroup>,
    /// On-demand options, one per instance type.
    pub on_demand: Vec<OnDemandOption>,
}

impl Problem {
    /// Build a problem from a market and an application profile.
    ///
    /// `candidate_types` restricts which instance types may host circle
    /// groups (the paper uses m1.small, m1.medium, c3.xlarge, cc2.8xlarge);
    /// pass `None` to allow every type present in the market. On-demand
    /// options are built for the same set.
    pub fn build(
        market: &SpotMarket,
        profile: &AppProfile,
        deadline: Hours,
        candidate_types: Option<&[InstanceTypeId]>,
        store: S3Store,
    ) -> Self {
        let catalog = market.catalog();
        let allowed = |ty: InstanceTypeId| {
            candidate_types
                .map(|list| list.contains(&ty))
                .unwrap_or(true)
        };

        let mut candidates = Vec::new();
        for id in market.groups() {
            if !allowed(id.instance_type) {
                continue;
            }
            let cluster = ClusterSpec::for_processes(catalog, id.instance_type, profile.processes);
            let exec = cluster.estimate(catalog, profile).total_hours();
            let ckpt = CheckpointSpec::for_app(catalog, &cluster, profile, store);
            candidates.push(CircleGroup {
                id,
                instances: cluster.instances,
                exec_hours: exec,
                ckpt_overhead_hours: ckpt.overhead_hours(),
                recovery_hours: ckpt.recovery_hours(),
            });
        }

        let mut on_demand = Vec::new();
        let mut seen = Vec::new();
        for id in market.groups() {
            let ty = id.instance_type;
            if !allowed(ty) || seen.contains(&ty) {
                continue;
            }
            seen.push(ty);
            let cluster = ClusterSpec::for_processes(catalog, ty, profile.processes);
            let exec = cluster.estimate(catalog, profile).total_hours();
            let ckpt = CheckpointSpec::for_app(catalog, &cluster, profile, store);
            on_demand.push(OnDemandOption {
                instance_type: ty,
                instances: cluster.instances,
                exec_hours: exec,
                unit_price: catalog.get(ty).on_demand_price,
                recovery_hours: ckpt.recovery_hours_on(cluster.instances),
            });
        }

        Self {
            app: profile.name.clone(),
            processes: profile.processes,
            deadline,
            candidates,
            on_demand,
        }
    }

    /// The *Baseline* of the evaluation: the on-demand execution with the
    /// minimal execution time. Its time and cost normalize every result.
    ///
    /// # Panics
    /// Panics if the problem offers no on-demand option. Library entry
    /// points reached from user input use [`Problem::try_baseline`].
    pub fn baseline(&self) -> &OnDemandOption {
        self.try_baseline()
            .expect("problem must offer at least one on-demand option")
    }

    /// Fallible [`Problem::baseline`]: `Err(SompiError::NoOnDemandOption)`
    /// when the problem has no on-demand options.
    pub fn try_baseline(&self) -> Result<&OnDemandOption, SompiError> {
        self.on_demand
            .iter()
            .min_by(|a, b| a.exec_hours.total_cmp(&b.exec_hours))
            .ok_or(SompiError::NoOnDemandOption)
    }

    /// Baseline execution time (fastest on-demand), hours.
    pub fn baseline_time(&self) -> Hours {
        self.baseline().exec_hours
    }

    /// Baseline cost, USD (raw hours — the model's normalization).
    pub fn baseline_cost(&self) -> f64 {
        self.baseline().full_cost()
    }

    /// Baseline cost under 2014 hourly billing — the normalization used by
    /// replay experiments, matching what the baseline run would be charged.
    pub fn baseline_cost_billed(&self) -> f64 {
        self.baseline().full_cost_billed()
    }

    /// The candidate group buying from `id`, if any.
    pub fn candidate(&self, id: CircleGroupId) -> Option<&CircleGroup> {
        self.candidates.iter().find(|c| c.id == id)
    }

    /// A copy of the problem with all remaining work scaled by `fraction`
    /// (the adaptive algorithm re-optimizes the residual application) and
    /// the deadline replaced.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1]`. Library entry points
    /// reached from user input use [`Problem::try_residual`].
    pub fn residual(&self, fraction: f64, deadline: Hours) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "residual fraction must be in (0, 1]"
        );
        self.try_residual(fraction, deadline).unwrap()
    }

    /// Fallible [`Problem::residual`]:
    /// `Err(SompiError::InvalidFraction)` when `fraction` is outside
    /// `(0, 1]`.
    pub fn try_residual(&self, fraction: f64, deadline: Hours) -> Result<Self, SompiError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(SompiError::InvalidFraction { fraction });
        }
        let mut p = self.clone();
        for c in &mut p.candidates {
            c.exec_hours *= fraction;
        }
        for od in &mut p.on_demand {
            od.exec_hours *= fraction;
        }
        p.deadline = deadline;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceCatalog;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};

    fn market() -> SpotMarket {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        SpotMarket::generate(cat, &TraceGenerator::new(prof, 7), 96.0, 1.0 / 12.0)
    }

    fn paper_types(m: &SpotMarket) -> Vec<InstanceTypeId> {
        ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| m.catalog().by_name(n).unwrap())
            .collect()
    }

    fn bt_problem() -> Problem {
        let m = market();
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types = paper_types(&m);
        Problem::build(&m, &profile, 2.0, Some(&types), S3Store::paper_2014())
    }

    #[test]
    fn builds_candidates_for_allowed_types_only() {
        let p = bt_problem();
        // 4 types × 3 zones.
        assert_eq!(p.candidates.len(), 12);
        assert_eq!(p.on_demand.len(), 4);
    }

    #[test]
    fn candidate_constants_are_positive_and_sane() {
        let p = bt_problem();
        for c in &p.candidates {
            assert!(c.exec_hours > 0.0);
            assert!(c.ckpt_overhead_hours > 0.0);
            assert!(c.recovery_hours > c.ckpt_overhead_hours * 0.5);
            assert!(c.instances >= 4);
            // Checkpoint overhead must be a small fraction of the run.
            assert!(c.ckpt_overhead_hours < 0.1 * c.exec_hours);
        }
    }

    #[test]
    fn baseline_is_fastest_on_demand() {
        let p = bt_problem();
        let b = p.baseline();
        for od in &p.on_demand {
            assert!(b.exec_hours <= od.exec_hours);
        }
        // For compute-intensive BT, cc2.8xlarge is the fastest type.
        let m = market();
        assert_eq!(b.instance_type, m.catalog().by_name("cc2.8xlarge").unwrap());
    }

    #[test]
    fn baseline_time_is_about_an_hour_for_bt_200_repeats() {
        // Keeps the experiment scale consistent with the paper's hourly
        // spot dynamics.
        let p = bt_problem();
        let t = p.baseline_time();
        assert!(t > 0.5 && t < 4.0, "baseline {t}h");
    }

    #[test]
    fn m1_small_within_loose_deadline_of_baseline() {
        // Figure 7(a) selects m1.small under a +50% deadline, so its
        // execution time must be within ~1.6× of the baseline.
        let p = bt_problem();
        let m = market();
        let small = m.catalog().by_name("m1.small").unwrap();
        let t = p
            .candidates
            .iter()
            .find(|c| c.id.instance_type == small)
            .unwrap()
            .exec_hours;
        assert!(
            t < 1.6 * p.baseline_time(),
            "m1.small {t} vs baseline {}",
            p.baseline_time()
        );
    }

    #[test]
    fn residual_scales_work_and_deadline() {
        let p = bt_problem();
        let r = p.residual(0.5, 1.0);
        assert_eq!(r.deadline, 1.0);
        for (c, rc) in p.candidates.iter().zip(&r.candidates) {
            assert!((rc.exec_hours - c.exec_hours * 0.5).abs() < 1e-12);
            // Overheads unchanged.
            assert_eq!(rc.ckpt_overhead_hours, c.ckpt_overhead_hours);
        }
    }

    #[test]
    #[should_panic(expected = "residual fraction")]
    fn residual_rejects_zero() {
        bt_problem().residual(0.0, 1.0);
    }

    #[test]
    fn try_variants_return_errors_instead_of_panicking() {
        use crate::error::SompiError;
        let p = bt_problem();
        assert_eq!(
            p.try_residual(0.0, 1.0),
            Err(SompiError::InvalidFraction { fraction: 0.0 })
        );
        assert_eq!(
            p.try_residual(1.5, 1.0),
            Err(SompiError::InvalidFraction { fraction: 1.5 })
        );
        assert!(p.try_baseline().is_ok());
        let mut empty = p.clone();
        empty.on_demand.clear();
        assert_eq!(empty.try_baseline(), Err(SompiError::NoOnDemandOption));
    }
}
