//! SOMPI: monetary cost optimization for MPI applications on EC2 spot
//! markets — the primary contribution of Gong, He & Zhou (SC '15).
//!
//! Given an MPI application profile, a deadline, and spot price history for
//! a set of candidate *circle groups* (instance type × availability zone),
//! SOMPI chooses
//!
//! 1. which circle groups to run replicated executions on (≤ κ of them),
//! 2. the bid price `P_i` for each chosen group,
//! 3. the checkpoint interval `F_i` for each chosen group, and
//! 4. the on-demand instance type `d` used to recover if every replica is
//!    killed by out-of-bid events,
//!
//! to minimize the expected monetary cost subject to
//! `E[Time] ≤ Deadline`.
//!
//! Module map (paper section in parentheses):
//!
//! * [`model`] — plan/decision types (Table 1 notation),
//! * [`problem`] — building a [`problem::Problem`] from a market + profile,
//! * [`view`] — estimation access to spot history (`f_i(P,t)`, `S_i(P)`),
//! * [`cost`] — the expected cost/time model, Formulas 1–11 (§3.2), made
//!   tractable by an exact `O(2^K · K · T)` decomposition,
//! * [`ondemand`] — on-demand type selection with Slack (§4.1),
//! * [`phi`] — the `F = φ(P)` dimension reduction (§4.2.2, Theorem 1),
//! * [`logsearch`] — the logarithmic bid-price grid (§4.2.2),
//! * [`twolevel`] — the two-level optimizer with κ-subset selection
//!   (§4.2.2 + §4.4),
//! * [`pool`] — the persistent search worker pool reused across adaptive
//!   windows and server requests (DESIGN.md §14),
//! * [`adaptive`] — the windowed adaptive re-optimizer, Algorithm 1 (§4.3),
//! * [`warmstart`] — exactness-preserving warm-start state carried across
//!   the adaptive loop's searches (DESIGN.md §12),
//! * [`policy`] — the [`policy::Policy`] trait unifying planning and
//!   per-window execution decisions, rival policies from the literature
//!   (No-FT, Ckpt-Only, App-Centric, Deadline-Hedge), and the
//!   name→policy registry behind the CLI/server/tournament
//!   (docs/POLICIES.md),
//! * [`baselines`] — every comparison strategy in the evaluation:
//!   On-demand, Marathe, Marathe-Opt, Spot-Inf, Spot-Avg, and the
//!   fault-tolerance ablations (§5.3, §5.4.2), all implementing
//!   [`policy::Policy`].

pub mod adaptive;
pub mod baselines;
pub mod cost;
pub mod error;
pub mod logsearch;
pub mod model;
pub mod ondemand;
pub mod pareto;
pub mod phi;
pub mod policy;
pub mod pool;
pub mod problem;
pub mod twolevel;
pub mod view;
pub mod warmstart;

pub use adaptive::{
    AdaptiveConfig, AdaptiveConfigBuilder, AdaptivePlanner, PlanCache, PlanContext, PlannedWindow,
    ViewFingerprint, WindowDecision,
};
pub use cost::{evaluate, EvalScratch, Evaluation, GroupAssessment, KernelMode};
pub use error::SompiError;
pub use logsearch::BidGrid;
pub use model::{CircleGroup, GroupDecision, OnDemandOption, Plan};
pub use ondemand::select_on_demand;
pub use pareto::{collapse_bid_dominated, frontier, ParetoPoint};
pub use phi::optimal_interval;
pub use policy::{
    policy_by_name, KillObservation, KillReaction, Policy, WindowObservation, WindowReaction,
    POLICY_NAMES,
};
pub use pool::SearchPool;
pub use problem::Problem;
pub use twolevel::{OptimizedPlan, OptimizerConfig, OptimizerConfigBuilder, TwoLevelOptimizer};
pub use view::MarketView;
pub use warmstart::WarmStart;

/// Hours, matching the substrate crates.
pub type Hours = f64;
/// US dollars.
pub type Usd = f64;
