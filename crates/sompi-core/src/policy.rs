//! The policy arena: one [`Policy`] trait over planning *and* per-window
//! execution decisions, plus rival strategies from the wider
//! spot-market-HPC literature.
//!
//! The paper evaluates SOMPI against a fixed set of baselines that only
//! map `(problem, view) → plan`. Real rivals differ in *both* halves of
//! the loop: what they plan, and how they react at window boundaries and
//! out-of-bid kills. [`Policy`] owns both:
//!
//! * [`Policy::plan`] — the single context-taking planning entry point
//!   (the recorder / warm-start / search-pool plumbing rides in the
//!   [`PlanContext`], exactly like `AdaptivePlanner::plan_window`);
//! * [`Policy::on_window`] / [`Policy::on_kill`] — the adaptive loop's
//!   per-window hooks, with defaults that reproduce `AdaptiveRunner`'s
//!   historical behavior bit-for-bit.
//!
//! Rival policies implemented here (sources in PAPERS.md):
//!
//! | Name             | Source | Idea |
//! |------------------|--------|------|
//! | [`NoFt`]         | Alourani & Kshemkalyani | no fault-tolerance provisioning at all |
//! | [`CheckpointOnly`] | Spot-on style | single group + Young/Daly checkpoints, no replication |
//! | [`AppCentric`]   | Khatua & Mukherjee | lowest bid whose survival meets an availability target |
//! | [`DeadlineHedge`] | Teylo et al. | full optimizer against a tightened deadline |
//!
//! The evaluation baselines (`On-demand`, `Marathe`, `Spot-Inf`, …) live
//! in [`crate::baselines`] and implement the same trait; `Strategy` is a
//! thin re-export of [`Policy`] kept for source compatibility. See
//! `docs/POLICIES.md` for the trait contract and how to add a policy.

use crate::adaptive::PlanContext;
use crate::cost::{evaluate_plan, Evaluation};
use crate::error::SompiError;
use crate::logsearch::BidGrid;
use crate::model::{CircleGroup, GroupDecision, Plan};
use crate::ondemand::{select_on_demand, DEFAULT_SLACK};
use crate::phi::{optimal_interval_for, phi_horizon};
use crate::problem::Problem;
use crate::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use crate::view::MarketView;
use crate::{Hours, Usd};

/// What the adaptive loop observed over one executed window; input to
/// [`Policy::on_window`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowObservation {
    /// 0-based index of the window that just executed.
    pub window: u32,
    /// Wall hours consumed when the window started.
    pub elapsed_hours: Hours,
    /// Residual work fraction *before* the window ran, in `(0, 1]`.
    pub remaining_fraction: f64,
    /// Spot groups killed out-of-bid during the window.
    pub groups_failed: u32,
    /// Fraction of the residual plan durably saved (checkpointed) by the
    /// window; `<= 0` means no progress survived.
    pub saved_fraction: f64,
}

/// What a policy wants the adaptive loop to do after a window; output of
/// [`Policy::on_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowReaction {
    /// Re-optimize at the next window boundary instead of carrying the
    /// current plan forward (plan continuity).
    pub replan: bool,
}

/// An out-of-bid kill the adaptive loop observed; input to
/// [`Policy::on_kill`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillObservation {
    /// 0-based index of the window in which the kill happened.
    pub window: u32,
    /// Trace hours at the start of the killing window.
    pub at_hours: Hours,
    /// Spot groups killed during the window (≥ 1).
    pub groups_failed: u32,
}

/// How a policy reacts to an out-of-bid kill; output of
/// [`Policy::on_kill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillReaction {
    /// Drop the fingerprint plan cache: the realized market just diverged
    /// from what the fingerprint digested.
    pub clear_plan_cache: bool,
    /// Drop the warm-start incumbent seed (bucket tables survive either
    /// way — they digest the view, not the plan).
    pub drop_warm_plan: bool,
}

/// A planning-and-execution policy: the one strategy abstraction behind
/// the baselines, the rival policies, the service layer, and the
/// tournament harness.
///
/// Implementors provide [`Policy::plan`]; the hooks and the evaluation
/// convenience have defaults that reproduce the historical
/// `AdaptiveRunner` behavior bit-for-bit, so a plain planning strategy
/// stays a one-method impl.
pub trait Policy: Send + Sync {
    /// Display name used in experiment tables and reports.
    fn name(&self) -> &'static str;

    /// Produce the plan this policy would execute for `problem` against
    /// the market history exposed by `view`.
    ///
    /// Everything optional rides in `ctx` (see [`PlanContext`]): the
    /// trace recorder, warm-start state carried across adaptive windows,
    /// and the persistent search pool. Policies without a search simply
    /// ignore what they do not use; `&mut PlanContext::new()` is the
    /// all-no-op context. Plans must be deterministic functions of
    /// `(problem, view)` — the context only changes *how* the search
    /// runs, never its result.
    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError>;

    /// Decide whether the adaptive loop should re-optimize after an
    /// executed window. The default reproduces `AdaptiveRunner`'s
    /// historical rule exactly: re-plan when the window went badly —
    /// someone was killed out-of-bid, or no durable progress was made.
    fn on_window(&self, obs: &WindowObservation) -> WindowReaction {
        WindowReaction {
            replan: obs.groups_failed > 0 || obs.saved_fraction <= 1e-9,
        }
    }

    /// React to an out-of-bid kill. The default reproduces
    /// `AdaptiveRunner`'s historical rule exactly: invalidate both the
    /// fingerprint plan cache and the warm-start incumbent.
    fn on_kill(&self, _obs: &KillObservation) -> KillReaction {
        KillReaction {
            clear_plan_cache: true,
            drop_warm_plan: true,
        }
    }

    /// Convenience: plan with an all-no-op context and evaluate under
    /// the cost model. Errors instead of panicking when the problem has
    /// no on-demand option ([`SompiError::NoOnDemandOption`]) or the
    /// plan cannot launch under the view
    /// ([`SompiError::UnlaunchablePlan`]).
    fn plan_and_evaluate(
        &self,
        problem: &Problem,
        view: &MarketView,
    ) -> Result<(Plan, Evaluation), SompiError> {
        let plan = self.plan(problem, view, &mut PlanContext::new())?;
        let eval = evaluate_plan(&plan, view)?.ok_or(SompiError::UnlaunchablePlan)?;
        Ok((plan, eval))
    }
}

/// The canonical policy names [`policy_by_name`] accepts, in report
/// order: the paper's baselines and ablations first, then the rival
/// policies from the literature.
pub const POLICY_NAMES: &[&str] = &[
    "sompi",
    "on-demand",
    "marathe",
    "marathe-opt",
    "spot-inf",
    "spot-avg",
    "no-rp",
    "no-ck",
    "all-unable",
    "no-ft",
    "ckpt-only",
    "app-centric",
    "deadline-hedge",
];

/// Look a policy up by its CLI/wire name (case-insensitive; `ondemand`
/// is accepted as an alias of `on-demand`). `config` parameterizes the
/// optimizer-backed policies and is ignored by the closed-form ones.
/// Errors with [`SompiError::InvalidConfig`] naming the known policies
/// on an unknown name.
pub fn policy_by_name(name: &str, config: OptimizerConfig) -> Result<Box<dyn Policy>, SompiError> {
    use crate::baselines::{
        AllUnable, Marathe, MaratheOpt, OnDemandOnly, Sompi, SompiNoCheckpoint, SompiNoReplication,
        SpotAvg, SpotInf,
    };
    Ok(match name.to_lowercase().as_str() {
        "sompi" => Box::new(Sompi { config }),
        "on-demand" | "ondemand" => Box::new(OnDemandOnly),
        "marathe" => Box::new(Marathe),
        "marathe-opt" => Box::new(MaratheOpt),
        "spot-inf" => Box::new(SpotInf),
        "spot-avg" => Box::new(SpotAvg),
        "no-rp" => Box::new(SompiNoReplication { config }),
        "no-ck" => Box::new(SompiNoCheckpoint { config }),
        "all-unable" => Box::new(AllUnable { config }),
        "no-ft" | "noft" => Box::new(NoFt),
        "ckpt-only" | "checkpoint-only" => Box::new(CheckpointOnly),
        "app-centric" | "appcentric" => Box::new(AppCentric::default()),
        "deadline-hedge" => Box::new(DeadlineHedge {
            config,
            ..DeadlineHedge::default()
        }),
        other => {
            return Err(SompiError::InvalidConfig {
                message: format!(
                    "unknown strategy {other:?} (one of: {})",
                    POLICY_NAMES.join(", ")
                ),
            })
        }
    })
}

/// The on-demand unit price of a candidate group's instance type, when
/// the problem offers that type on demand.
fn on_demand_price_of(problem: &Problem, group: &CircleGroup) -> Option<Usd> {
    problem
        .on_demand
        .iter()
        .find(|o| o.instance_type == group.id.instance_type)
        .map(|o| o.unit_price)
}

/// Shared single-group selector for the rival policies: offer each
/// candidate group one `GroupDecision` (or skip it), evaluate the
/// one-group plan under the cost model, and keep the cheapest —
/// deadline-feasible plans strictly preferred. Falls back to the pure
/// on-demand plan when no group yields a launchable option.
fn best_single_group<F>(
    problem: &Problem,
    view: &MarketView,
    mut option_for: F,
) -> Result<Plan, SompiError>
where
    F: FnMut(&CircleGroup) -> Result<Option<GroupDecision>, SompiError>,
{
    problem.try_baseline()?;
    let od = select_on_demand(&problem.on_demand, problem.deadline, DEFAULT_SLACK);
    let mut best: Option<(Plan, Evaluation)> = None;
    for c in &problem.candidates {
        let Some(decision) = option_for(c)? else {
            continue;
        };
        let plan = Plan {
            groups: vec![(*c, decision)],
            on_demand: od,
        };
        let Some(eval) = evaluate_plan(&plan, view)? else {
            continue;
        };
        let feasible = eval.meets(problem.deadline);
        let better = match &best {
            None => true,
            Some((_, b)) => {
                let b_feasible = b.meets(problem.deadline);
                match (feasible, b_feasible) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => eval.expected_cost < b.expected_cost,
                }
            }
        };
        if better {
            best = Some((plan, eval));
        }
    }
    Ok(best
        .map(|(p, _)| p)
        .unwrap_or_else(|| Plan::on_demand_only(od)))
}

/// No fault-tolerance provisioning (Alourani & Kshemkalyani): one spot
/// group, bid at its type's on-demand price, **no checkpointing and no
/// replication** — a kill means restarting from scratch. The execution
/// hooks match: the loop never re-plans and never invalidates carried
/// state, because the policy has no adaptation story at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFt;

impl Policy for NoFt {
    fn name(&self) -> &'static str {
        "No-FT"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        _ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        best_single_group(problem, view, |c| {
            Ok(on_demand_price_of(problem, c).map(|bid| GroupDecision {
                bid,
                // F = T_i disables checkpointing by convention.
                ckpt_interval: c.exec_hours,
            }))
        })
    }

    fn on_window(&self, _obs: &WindowObservation) -> WindowReaction {
        WindowReaction { replan: false }
    }

    fn on_kill(&self, _obs: &KillObservation) -> KillReaction {
        KillReaction {
            clear_plan_cache: false,
            drop_warm_plan: false,
        }
    }
}

/// Checkpointing framework without replication (Spot-on style): one spot
/// group, bid at its type's on-demand price, Young/Daly checkpoint
/// interval from the group's failure behavior at that bid. Default
/// execution hooks (re-plan on kills and stalls).
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointOnly;

impl Policy for CheckpointOnly {
    fn name(&self) -> &'static str {
        "Ckpt-Only"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        _ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        best_single_group(problem, view, |c| {
            let Some(bid) = on_demand_price_of(problem, c) else {
                return Ok(None);
            };
            let est = view.try_estimator(c.id)?;
            Ok(Some(GroupDecision {
                bid,
                ckpt_interval: optimal_interval_for(c, bid, est),
            }))
        })
    }
}

/// Application-centric bidding (Khatua & Mukherjee): per group, take the
/// *lowest* bid on the logarithmic grid whose survival probability over
/// the application's own duration meets the availability target, then
/// keep the cheapest feasible group. Checkpoints at the Young/Daly
/// interval for the chosen bid.
#[derive(Debug, Clone, Copy)]
pub struct AppCentric {
    /// Required probability of surviving the application's duration at
    /// the chosen bid (the paper's availability SLO; 0.9 by default).
    pub availability: f64,
    /// Bid-grid resolution used for the per-group bid scan.
    pub bid_levels: u32,
}

impl Default for AppCentric {
    fn default() -> Self {
        Self {
            availability: 0.9,
            bid_levels: 12,
        }
    }
}

impl Policy for AppCentric {
    fn name(&self) -> &'static str {
        "App-Centric"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        _ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        best_single_group(problem, view, |c| {
            let est = view.try_estimator(c.id)?;
            let max_bid = est.max_price();
            if !(max_bid.is_finite() && max_bid > 0.0) {
                return Ok(None);
            }
            let grid = BidGrid::logarithmic(max_bid, self.bid_levels);
            let horizon = phi_horizon(c);
            // Grid bids are highest-first; scan from the lowest up and
            // take the first meeting the availability target.
            let bid =
                grid.bids().iter().rev().copied().find(|&bid| {
                    est.failure_rate_exact(bid, horizon).survival() >= self.availability
                });
            Ok(bid.map(|bid| GroupDecision {
                bid,
                ckpt_interval: optimal_interval_for(c, bid, est),
            }))
        })
    }
}

/// Deadline-aware hedging (Teylo et al.): run the full SOMPI optimizer,
/// but against a deadline tightened by `margin` — the plan keeps a
/// reserve against estimation error and spot volatility. The execution
/// hook re-plans at *every* window boundary, trading re-optimization
/// cost for the freshest market knowledge.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineHedge {
    /// Fraction of the deadline held back as reserve (0.1 = plan as if
    /// the deadline were 10% earlier). Must lie in `[0, 1)`.
    pub margin: f64,
    /// Inner optimizer knobs.
    pub config: OptimizerConfig,
}

impl Default for DeadlineHedge {
    fn default() -> Self {
        Self {
            margin: 0.1,
            config: OptimizerConfig::default(),
        }
    }
}

impl Policy for DeadlineHedge {
    fn name(&self) -> &'static str {
        "Deadline-Hedge"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        if !(0.0..1.0).contains(&self.margin) {
            return Err(SompiError::InvalidConfig {
                message: format!("deadline-hedge margin {} outside [0, 1)", self.margin),
            });
        }
        let mut hedged = problem.clone();
        hedged.deadline = problem.deadline * (1.0 - self.margin);
        Ok(TwoLevelOptimizer::new(&hedged, view, self.config)
            .optimize_with(ctx)?
            .plan)
    }

    fn on_window(&self, _obs: &WindowObservation) -> WindowReaction {
        WindowReaction { replan: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    fn setup() -> (SpotMarket, Problem, MarketView) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 21), 200.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(&market, &profile, 3.0, Some(&types), S3Store::paper_2014());
        let view = MarketView::from_market(&market, 0.0, 48.0);
        (market, problem, view)
    }

    #[test]
    fn registry_resolves_every_canonical_name() {
        for name in POLICY_NAMES {
            let p = policy_by_name(name, OptimizerConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.name().is_empty());
        }
        // Aliases and case-insensitivity.
        assert_eq!(
            policy_by_name("ondemand", OptimizerConfig::default())
                .unwrap()
                .name(),
            "On-demand"
        );
        assert_eq!(
            policy_by_name("SOMPI", OptimizerConfig::default())
                .unwrap()
                .name(),
            "SOMPI"
        );
    }

    #[test]
    fn unknown_policy_is_an_error_naming_the_roster() {
        let Err(err) = policy_by_name("magic", OptimizerConfig::default()) else {
            panic!("unknown name must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("unknown strategy"), "{msg}");
        assert!(msg.contains("deadline-hedge"), "{msg}");
    }

    #[test]
    fn no_ft_has_no_fault_tolerance_and_never_adapts() {
        let (_, p, v) = setup();
        let plan = NoFt.plan(&p, &v, &mut PlanContext::new()).unwrap();
        assert_eq!(plan.replication_degree(), 1, "single group only");
        for (g, d) in &plan.groups {
            assert!(d.ckpt_interval >= g.exec_hours, "checkpointing must be off");
            let od = on_demand_price_of(&p, g).unwrap();
            assert!((d.bid - od).abs() < 1e-12, "bids at the on-demand price");
        }
        // A healthy window, a stalled window, and a kill: never re-plan,
        // never invalidate carried state.
        for (failed, saved) in [(0, 0.5), (0, 0.0), (2, 0.0)] {
            let r = NoFt.on_window(&WindowObservation {
                window: 0,
                elapsed_hours: 0.0,
                remaining_fraction: 1.0,
                groups_failed: failed,
                saved_fraction: saved,
            });
            assert!(!r.replan);
        }
        let k = NoFt.on_kill(&KillObservation {
            window: 1,
            at_hours: 10.0,
            groups_failed: 1,
        });
        assert!(!k.clear_plan_cache && !k.drop_warm_plan);
    }

    #[test]
    fn ckpt_only_checkpoints_one_group_at_the_young_daly_interval() {
        let (_, p, v) = setup();
        let plan = CheckpointOnly
            .plan(&p, &v, &mut PlanContext::new())
            .unwrap();
        assert_eq!(plan.replication_degree(), 1);
        let (g, d) = &plan.groups[0];
        let od = on_demand_price_of(&p, g).unwrap();
        assert!((d.bid - od).abs() < 1e-12);
        let est = v.try_estimator(g.id).unwrap();
        assert_eq!(d.ckpt_interval, optimal_interval_for(g, d.bid, est));
        // Default hooks: a killed window demands a re-plan.
        let r = CheckpointOnly.on_window(&WindowObservation {
            window: 0,
            elapsed_hours: 1.0,
            remaining_fraction: 0.8,
            groups_failed: 1,
            saved_fraction: 0.2,
        });
        assert!(r.replan);
    }

    #[test]
    fn app_centric_takes_the_lowest_bid_meeting_the_availability_target() {
        let (_, p, v) = setup();
        let pol = AppCentric::default();
        let plan = pol.plan(&p, &v, &mut PlanContext::new()).unwrap();
        assert_eq!(plan.replication_degree(), 1);
        let (g, d) = &plan.groups[0];
        let est = v.try_estimator(g.id).unwrap();
        let horizon = phi_horizon(g);
        let survival = est.failure_rate_exact(d.bid, horizon).survival();
        assert!(
            survival >= pol.availability,
            "chosen bid survival {survival} misses the target"
        );
        // No strictly lower grid bid may meet the target.
        let grid = BidGrid::logarithmic(est.max_price(), pol.bid_levels);
        for &bid in grid.bids() {
            if bid < d.bid - 1e-12 {
                assert!(
                    est.failure_rate_exact(bid, horizon).survival() < pol.availability,
                    "bid {bid} also meets the target but is lower than {}",
                    d.bid
                );
            }
        }
    }

    #[test]
    fn deadline_hedge_plans_against_the_tightened_deadline() {
        let (_, p, v) = setup();
        let pol = DeadlineHedge::default();
        let (plan, eval) = pol.plan_and_evaluate(&p, &v).unwrap();
        assert!(!plan.groups.is_empty());
        // The hedged plan must meet the *tightened* deadline in
        // expectation whenever the optimizer found a feasible spot plan.
        assert!(
            eval.expected_time <= p.deadline * (1.0 - pol.margin) + 1e-9,
            "expected time {} exceeds the hedged deadline",
            eval.expected_time
        );
        // Hedging always re-plans.
        let r = pol.on_window(&WindowObservation {
            window: 3,
            elapsed_hours: 2.0,
            remaining_fraction: 0.5,
            groups_failed: 0,
            saved_fraction: 0.4,
        });
        assert!(r.replan);
        let bad = DeadlineHedge {
            margin: 1.5,
            ..DeadlineHedge::default()
        };
        assert!(matches!(
            bad.plan(&p, &v, &mut PlanContext::new()),
            Err(SompiError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn plan_and_evaluate_reports_errors_instead_of_panicking() {
        let (_, p, v) = setup();
        // A problem stripped of on-demand options must error, not abort.
        let mut restricted = p.clone();
        restricted.on_demand.clear();
        assert_eq!(
            NoFt.plan_and_evaluate(&restricted, &v).unwrap_err(),
            SompiError::NoOnDemandOption
        );
    }
}
