//! On-demand instance type selection — Section 4.1, Formulas 12–13.
//!
//! The monetary cost of the on-demand fallback is independent of the spot
//! decisions, so the paper selects the type `d*` first: minimize
//! `T_d · D_d · M_d` subject to `T_d ≤ Deadline · (1 − Slack)`, where the
//! Slack (20% by default, per the paper's parameter study) reserves time
//! for checkpointing and recovery.

use crate::model::OnDemandOption;
use crate::Hours;

/// Default slack, from the paper's Section 5.2 study ("we select the slack
/// as 20% in our experiments").
pub const DEFAULT_SLACK: f64 = 0.20;

/// Select the cheapest on-demand option whose execution time fits within
/// `deadline · (1 − slack)`.
///
/// Falls back to the *fastest* option when none fits (the deadline is
/// infeasible even on demand; the fastest type is the least-bad recovery
/// vehicle — the paper's Algorithm 1 does the same when the deadline can
/// no longer be satisfied).
pub fn select_on_demand(options: &[OnDemandOption], deadline: Hours, slack: f64) -> OnDemandOption {
    assert!(!options.is_empty(), "need at least one on-demand option");
    assert!((0.0..1.0).contains(&slack), "slack must be in [0, 1)");
    let budget = deadline * (1.0 - slack);
    options
        .iter()
        .filter(|o| o.exec_hours <= budget)
        .min_by(|a, b| a.full_cost().total_cmp(&b.full_cost()))
        .or_else(|| {
            options
                .iter()
                .min_by(|a, b| a.exec_hours.total_cmp(&b.exec_hours))
        })
        .copied()
        .expect("non-empty options")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceTypeId;

    fn opt(ty: usize, t: Hours, price: f64, m: u32) -> OnDemandOption {
        OnDemandOption {
            instance_type: InstanceTypeId(ty),
            instances: m,
            exec_hours: t,
            unit_price: price,
            recovery_hours: 0.05,
        }
    }

    #[test]
    fn picks_cheapest_fitting_option() {
        // Option 0: slow but cheap (cost 4.0); option 1: fast, pricier
        // (cost 6.0). Both fit a deadline of 10.
        let opts = [opt(0, 4.0, 1.0, 1), opt(1, 2.0, 3.0, 1)];
        let d = select_on_demand(&opts, 10.0, 0.2);
        assert_eq!(d.instance_type, InstanceTypeId(0));
    }

    #[test]
    fn slack_shrinks_the_budget() {
        // Deadline 5, slack 20% → budget 4.0; the slow option (4.0 h) fits
        // exactly. Slack 30% → budget 3.5; only the fast one fits.
        let opts = [opt(0, 4.0, 1.0, 1), opt(1, 2.0, 3.0, 1)];
        assert_eq!(
            select_on_demand(&opts, 5.0, 0.2).instance_type,
            InstanceTypeId(0)
        );
        assert_eq!(
            select_on_demand(&opts, 5.0, 0.3).instance_type,
            InstanceTypeId(1)
        );
    }

    #[test]
    fn infeasible_deadline_falls_back_to_fastest() {
        let opts = [opt(0, 4.0, 1.0, 1), opt(1, 2.0, 3.0, 1)];
        let d = select_on_demand(&opts, 0.5, 0.2);
        assert_eq!(d.instance_type, InstanceTypeId(1));
    }

    #[test]
    fn cost_accounts_for_instance_count() {
        // Type 0: 1 h × $1 × 10 instances = $10; type 1: 1 h × $5 × 1 = $5.
        let opts = [opt(0, 1.0, 1.0, 10), opt(1, 1.0, 5.0, 1)];
        let d = select_on_demand(&opts, 10.0, 0.2);
        assert_eq!(d.instance_type, InstanceTypeId(1));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_options_panics() {
        select_on_demand(&[], 1.0, 0.2);
    }
}
