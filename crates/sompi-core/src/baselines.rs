//! Every comparison strategy from the paper's evaluation (Sections 5.3 and
//! 5.4.2), behind the one [`crate::policy::Policy`] trait so experiments
//! can sweep them (`Strategy` is a thin re-export of that trait, kept for
//! source compatibility).
//!
//! | Name        | Paper description |
//! |-------------|-------------------|
//! | `OnDemandOnly` | cheapest on-demand type meeting the deadline |
//! | `Marathe`   | Marathe et al. \[30\]: replicated execution of one fixed instance type (cc2.8xlarge) across availability zones, near-on-demand bids |
//! | `MaratheOpt`| Marathe with the instance type chosen by cost model |
//! | `SpotInf`   | single spot group, effectively infinite bid ($999) |
//! | `SpotAvg`   | single spot group, bid = average historical price |
//! | `Sompi`     | the full two-level optimizer |
//! | `SompiNoReplication` | SOMPI restricted to one circle group (w/o-RP) |
//! | `SompiNoCheckpoint`  | SOMPI with checkpointing disabled (w/o-CK) |
//! | `AllUnable` | one spot group, no checkpoints, no replication |

use crate::adaptive::PlanContext;
use crate::cost::{evaluate_plan, Evaluation};
use crate::error::SompiError;
use crate::model::{GroupDecision, Plan};
use crate::ondemand::{select_on_demand, DEFAULT_SLACK};
use crate::phi::optimal_interval;
use crate::policy::Policy;
use crate::problem::Problem;
use crate::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use crate::view::MarketView;

/// The historical name for [`Policy`], kept as a thin re-export so
/// long-lived experiment code keeps compiling. New code should name
/// [`Policy`] directly.
pub use crate::policy::Policy as Strategy;

/// The evaluation's *On-demand* method.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnDemandOnly;

impl Policy for OnDemandOnly {
    fn name(&self) -> &'static str {
        "On-demand"
    }

    fn plan(
        &self,
        problem: &Problem,
        _view: &MarketView,
        _ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        problem.try_baseline()?;
        Ok(Plan::on_demand_only(select_on_demand(
            &problem.on_demand,
            problem.deadline,
            DEFAULT_SLACK,
        )))
    }
}

/// Marathe et al.: replicate one fixed instance type — the fastest
/// (cc2.8xlarge in the paper's catalog, "they utilize CC2 instances as
/// default setting") — across all its availability zones, bid at the
/// type's on-demand price, checkpoint at a Young/Daly interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct Marathe;

impl Policy for Marathe {
    fn name(&self) -> &'static str {
        "Marathe"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        _ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        // Identify the fixed type: the most capable (fastest) candidate —
        // cc2.8xlarge in the paper's catalog — unless the problem was built
        // without it.
        let target = *problem.try_baseline()?;
        let mut groups = Vec::new();
        for c in &problem.candidates {
            if c.id.instance_type != target.instance_type {
                continue;
            }
            let bid = target.unit_price; // bid at the on-demand price
            let interval = optimal_interval(c, bid, view)?;
            groups.push((
                *c,
                GroupDecision {
                    bid,
                    ckpt_interval: interval,
                },
            ));
        }
        Ok(Plan {
            groups,
            on_demand: target,
        })
    }
}

/// Marathe with the replicated instance type optimized: try each candidate
/// type, keep the cheapest (by the cost model) that meets the deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaratheOpt;

impl Policy for MaratheOpt {
    fn name(&self) -> &'static str {
        "Marathe-Opt"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        let mut best: Option<(Plan, Evaluation)> = None;
        for od in &problem.on_demand {
            let mut groups = Vec::new();
            for c in &problem.candidates {
                if c.id.instance_type != od.instance_type {
                    continue;
                }
                let bid = od.unit_price;
                let interval = optimal_interval(c, bid, view)?;
                groups.push((
                    *c,
                    GroupDecision {
                        bid,
                        ckpt_interval: interval,
                    },
                ));
            }
            if groups.is_empty() {
                continue;
            }
            let plan = Plan {
                groups,
                on_demand: *od,
            };
            let Ok(Some(eval)) = evaluate_plan(&plan, view) else {
                continue;
            };
            let feasible = eval.meets(problem.deadline);
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    let b_feasible = b.meets(problem.deadline);
                    match (feasible, b_feasible) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => eval.expected_cost < b.expected_cost,
                    }
                }
            };
            if better {
                best = Some((plan, eval));
            }
        }
        match best {
            Some((p, _)) => Ok(p),
            None => OnDemandOnly.plan(problem, view, ctx),
        }
    }
}

/// Spot-Inf: one spot group with an effectively infinite bid ($999), no
/// checkpointing, no replication; the group with minimal expected cost
/// meeting the deadline wins.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpotInf;

/// The "infinite" bid used by the paper's Spot-Inf heuristic.
pub const INFINITE_BID: f64 = 999.0;

impl Policy for SpotInf {
    fn name(&self) -> &'static str {
        "Spot-Inf"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        _ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        single_group_plan(problem, view, |_, _| INFINITE_BID)
    }
}

/// Spot-Avg: like Spot-Inf but bidding the average historical price.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpotAvg;

impl Policy for SpotAvg {
    fn name(&self) -> &'static str {
        "Spot-Avg"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        _ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        single_group_plan(problem, view, |view, id| {
            // Candidates come from the view's market; a missing group can
            // only mean a hand-built mismatch, where a zero bid simply
            // never launches and the option drops out below.
            view.mean_price(id).unwrap_or(0.0)
        })
    }
}

fn single_group_plan(
    problem: &Problem,
    view: &MarketView,
    bid_of: impl Fn(&MarketView, ec2_market::market::CircleGroupId) -> f64,
) -> Result<Plan, SompiError> {
    problem.try_baseline()?;
    let od = select_on_demand(&problem.on_demand, problem.deadline, DEFAULT_SLACK);
    let mut best: Option<(Plan, Evaluation)> = None;
    for c in &problem.candidates {
        let bid = bid_of(view, c.id);
        let decision = GroupDecision {
            bid,
            ckpt_interval: c.exec_hours,
        };
        let plan = Plan {
            groups: vec![(*c, decision)],
            on_demand: od,
        };
        let Ok(Some(eval)) = evaluate_plan(&plan, view) else {
            continue;
        };
        let feasible = eval.meets(problem.deadline);
        let better = match &best {
            None => true,
            Some((_, b)) => {
                let bf = b.meets(problem.deadline);
                match (feasible, bf) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => eval.expected_cost < b.expected_cost,
                }
            }
        };
        if better {
            best = Some((plan, eval));
        }
    }
    Ok(best
        .map(|(p, _)| p)
        .unwrap_or_else(|| Plan::on_demand_only(od)))
}

/// The full SOMPI optimizer as a [`Strategy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Sompi {
    /// Optimizer knobs.
    pub config: OptimizerConfig,
}

impl Policy for Sompi {
    fn name(&self) -> &'static str {
        "SOMPI"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        Ok(TwoLevelOptimizer::new(problem, view, self.config)
            .optimize_with(ctx)?
            .plan)
    }
}

/// w/o-RP: SOMPI restricted to a single circle group (checkpointing only).
#[derive(Debug, Clone, Copy, Default)]
pub struct SompiNoReplication {
    /// Optimizer knobs (κ is forced to 1).
    pub config: OptimizerConfig,
}

impl Policy for SompiNoReplication {
    fn name(&self) -> &'static str {
        "w/o-RP"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        let cfg = OptimizerConfig {
            kappa: 1,
            ..self.config
        };
        Ok(TwoLevelOptimizer::new(problem, view, cfg)
            .optimize_with(ctx)?
            .plan)
    }
}

/// w/o-CK: SOMPI with checkpointing disabled (replication only). Uses the
/// interval-grid hook with a single point `F = T_i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SompiNoCheckpoint {
    /// Optimizer knobs (interval forced to `T_i`).
    pub config: OptimizerConfig,
}

impl Policy for SompiNoCheckpoint {
    fn name(&self) -> &'static str {
        "w/o-CK"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        let cfg = OptimizerConfig {
            interval_grid: Some(1),
            ..self.config
        };
        Ok(TwoLevelOptimizer::new(problem, view, cfg)
            .optimize_with(ctx)?
            .plan)
    }
}

/// All-Unable: single group, no checkpointing — bid still optimized, which
/// is the strongest version of "no fault tolerance at all".
#[derive(Debug, Clone, Copy, Default)]
pub struct AllUnable {
    /// Optimizer knobs (κ = 1 and interval forced to `T_i`).
    pub config: OptimizerConfig,
}

impl Policy for AllUnable {
    fn name(&self) -> &'static str {
        "All-Unable"
    }

    fn plan(
        &self,
        problem: &Problem,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<Plan, SompiError> {
        let cfg = OptimizerConfig {
            kappa: 1,
            interval_grid: Some(1),
            ..self.config
        };
        Ok(TwoLevelOptimizer::new(problem, view, cfg)
            .optimize_with(ctx)?
            .plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    fn setup() -> (SpotMarket, Problem, MarketView) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 21), 200.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(&market, &profile, 3.0, Some(&types), S3Store::paper_2014());
        let view = MarketView::from_market(&market, 0.0, 48.0);
        (market, problem, view)
    }

    #[test]
    fn on_demand_only_uses_no_spot() {
        let (_, p, v) = setup();
        let plan = OnDemandOnly.plan(&p, &v, &mut PlanContext::new()).unwrap();
        assert_eq!(plan.replication_degree(), 0);
    }

    #[test]
    fn marathe_replicates_cc2_across_zones() {
        let (m, p, v) = setup();
        let plan = Marathe.plan(&p, &v, &mut PlanContext::new()).unwrap();
        let cc2 = m.catalog().by_name("cc2.8xlarge").unwrap();
        assert_eq!(plan.replication_degree(), 3); // three zones
        for (g, d) in &plan.groups {
            assert_eq!(g.id.instance_type, cc2);
            assert!((d.bid - 2.0).abs() < 1e-12); // on-demand price bid
        }
        assert_eq!(plan.on_demand.instance_type, cc2);
    }

    #[test]
    fn marathe_opt_single_type_but_chosen() {
        let (_, p, v) = setup();
        let plan = MaratheOpt.plan(&p, &v, &mut PlanContext::new()).unwrap();
        assert!(!plan.groups.is_empty());
        let ty = plan.groups[0].0.id.instance_type;
        assert!(plan.groups.iter().all(|(g, _)| g.id.instance_type == ty));
        // For compute-intensive BT under a loose deadline, Marathe-Opt
        // should pick something cheaper than cc2.8xlarge.
        let (_, eval_opt) = MaratheOpt.plan_and_evaluate(&p, &v).unwrap();
        let (_, eval_fixed) = Marathe.plan_and_evaluate(&p, &v).unwrap();
        assert!(eval_opt.expected_cost <= eval_fixed.expected_cost + 1e-9);
    }

    #[test]
    fn spot_inf_never_fails() {
        let (_, p, v) = setup();
        let (plan, eval) = SpotInf.plan_and_evaluate(&p, &v).unwrap();
        assert_eq!(plan.replication_degree(), 1);
        assert_eq!(plan.groups[0].1.bid, INFINITE_BID);
        assert!(eval.p_all_fail < 1e-9);
    }

    #[test]
    fn spot_avg_bids_the_mean() {
        let (_, p, v) = setup();
        let plan = SpotAvg.plan(&p, &v, &mut PlanContext::new()).unwrap();
        assert_eq!(plan.replication_degree(), 1);
        let (g, d) = &plan.groups[0];
        assert!((d.bid - v.mean_price(g.id).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn ablations_respect_their_restrictions() {
        let (_, p, v) = setup();
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..OptimizerConfig::default()
        };
        let no_rp = SompiNoReplication { config: cfg }
            .plan(&p, &v, &mut PlanContext::new())
            .unwrap();
        assert!(no_rp.replication_degree() <= 1);
        let no_ck = SompiNoCheckpoint { config: cfg }
            .plan(&p, &v, &mut PlanContext::new())
            .unwrap();
        for (g, d) in &no_ck.groups {
            assert!(
                d.ckpt_interval >= g.exec_hours,
                "checkpointing not disabled"
            );
        }
        let none = AllUnable { config: cfg }
            .plan(&p, &v, &mut PlanContext::new())
            .unwrap();
        assert!(none.replication_degree() <= 1);
        for (g, d) in &none.groups {
            assert!(d.ckpt_interval >= g.exec_hours);
        }
    }

    #[test]
    fn sompi_beats_or_ties_every_restricted_variant_in_expectation() {
        let (_, p, v) = setup();
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..OptimizerConfig::default()
        };
        let (_, full) = Sompi { config: cfg }.plan_and_evaluate(&p, &v).unwrap();
        for (name, eval) in [
            (
                "w/o-RP",
                SompiNoReplication { config: cfg }
                    .plan_and_evaluate(&p, &v)
                    .unwrap()
                    .1,
            ),
            (
                "w/o-CK",
                SompiNoCheckpoint { config: cfg }
                    .plan_and_evaluate(&p, &v)
                    .unwrap()
                    .1,
            ),
            (
                "All-Unable",
                AllUnable { config: cfg }
                    .plan_and_evaluate(&p, &v)
                    .unwrap()
                    .1,
            ),
        ] {
            assert!(
                full.expected_cost <= eval.expected_cost + 1e-9,
                "SOMPI {} vs {name} {}",
                full.expected_cost,
                eval.expected_cost
            );
        }
    }
}
