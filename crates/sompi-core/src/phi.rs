//! The `F = φ(P)` dimension reduction — Section 4.2.2, Theorem 1.
//!
//! Given a bid price, the optimal checkpoint interval for a circle group is
//! determined by the group's failure behaviour at that bid alone (Theorem 1
//! lets the optimizer substitute `φ(P)` for `F` without losing optimality).
//! Following the paper's reference to Daly's first-order model, we use the
//! Young/Daly interval `F* = sqrt(2 · O_i · MTTF(P_i))`, clamped into
//! `[O_i, T_i]`:
//!
//! * an un-terminable bid (no failure mass observed) degenerates to
//!   `F = T_i` — checkpointing disabled, matching the paper's convention;
//! * a very failure-prone bid clamps to `O_i` (checkpointing any faster
//!   than the checkpoint itself is useless).

use crate::error::SompiError;
use crate::model::CircleGroup;
use crate::view::MarketView;
use crate::{Hours, Usd};
use ec2_market::failure::FailureEstimator;

/// Compute `φ_i(P_i)`: the checkpoint interval for `group` at bid `bid`.
///
/// This is the Theorem 1 substitution: the optimizer never searches over
/// `F` directly — each bid maps to its interval via the market view's
/// failure estimate. The chosen interval per group is surfaced in
/// `SubsetEvaluated.phi_intervals` trace events (see
/// `docs/OBSERVABILITY.md`). Errors when the view has no history for the
/// group.
pub fn optimal_interval(
    group: &CircleGroup,
    bid: Usd,
    view: &MarketView,
) -> Result<Hours, SompiError> {
    Ok(optimal_interval_for(
        group,
        bid,
        view.try_estimator(group.id)?,
    ))
}

/// [`optimal_interval`] with the group's estimator already in hand —
/// infallible, and the form the warm-started optimizer uses so a cached
/// failure table can stand in for the estimator walk.
pub fn optimal_interval_for(group: &CircleGroup, bid: Usd, est: &FailureEstimator) -> Hours {
    // Estimate MTTF over the group's own wall-clock horizon (without
    // checkpoints yet — a first-order self-consistent choice: O_i ≪ T_i).
    let horizon = phi_horizon(group);
    let f = est.failure_rate_exact(bid, horizon);
    interval_from_mttf(group, f.mean_time_to_failure())
}

/// The hourly horizon `φ` estimates MTTF over: the group's own execution
/// time. Shared with the warm-start table cache so cached counts serve the
/// exact horizon the cold path would have used.
pub fn phi_horizon(group: &CircleGroup) -> usize {
    group.exec_hours.ceil().max(1.0) as usize
}

/// The Young/Daly interval given an MTTF estimate; exposed separately for
/// tests and for the ablation bench that sweeps MTTF directly.
///
/// ```
/// use sompi_core::phi::interval_from_mttf;
/// use sompi_core::CircleGroup;
/// use ec2_market::instance::InstanceTypeId;
/// use ec2_market::market::CircleGroupId;
/// use ec2_market::zone::AvailabilityZone;
///
/// let group = CircleGroup {
///     id: CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a),
///     instances: 4,
///     exec_hours: 100.0,
///     ckpt_overhead_hours: 0.02,
///     recovery_hours: 0.1,
/// };
/// // MTTF 25 h → F* = sqrt(2 · 0.02 · 25) = 1.0 h.
/// assert!((interval_from_mttf(&group, Some(25.0)) - 1.0).abs() < 1e-12);
/// // No observed failure mass → checkpointing disabled (F = T).
/// assert_eq!(interval_from_mttf(&group, None), 100.0);
/// ```
pub fn interval_from_mttf(group: &CircleGroup, mttf: Option<Hours>) -> Hours {
    match mttf {
        // No observed failures: do not checkpoint.
        None => group.exec_hours,
        Some(m) => {
            let f = (2.0 * group.ckpt_overhead_hours * m).sqrt();
            f.clamp(group.ckpt_overhead_hours, group.exec_hours)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceTypeId;
    use ec2_market::market::CircleGroupId;
    use ec2_market::zone::AvailabilityZone;

    fn group(t: Hours, o: Hours) -> CircleGroup {
        CircleGroup {
            id: CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a),
            instances: 4,
            exec_hours: t,
            ckpt_overhead_hours: o,
            recovery_hours: 0.1,
        }
    }

    #[test]
    fn young_daly_formula() {
        let g = group(100.0, 0.02);
        // MTTF 25 h → F* = sqrt(2·0.02·25) = 1.0 h.
        let f = interval_from_mttf(&g, Some(25.0));
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_failures_means_no_checkpoints() {
        let g = group(10.0, 0.02);
        assert_eq!(interval_from_mttf(&g, None), 10.0);
    }

    #[test]
    fn clamps_to_execution_time() {
        let g = group(2.0, 0.02);
        // Huge MTTF → interval would exceed T; clamp to T (disable).
        assert_eq!(interval_from_mttf(&g, Some(1e6)), 2.0);
    }

    #[test]
    fn clamps_to_overhead() {
        let g = group(10.0, 0.5);
        // Tiny MTTF → interval would go below O; clamp to O.
        assert_eq!(interval_from_mttf(&g, Some(1e-6)), 0.5);
    }

    #[test]
    fn interval_grows_with_mttf() {
        let g = group(1000.0, 0.02);
        let mut prev = 0.0;
        for mttf in [1.0, 5.0, 25.0, 125.0] {
            let f = interval_from_mttf(&g, Some(mttf));
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn end_to_end_against_market_history() {
        use ec2_market::instance::InstanceCatalog;
        use ec2_market::market::SpotMarket;
        use ec2_market::tracegen::{MarketProfile, TraceGenerator};
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 11), 200.0, 1.0 / 12.0);
        let view = crate::view::MarketView::from_market(&market, 0.0, 96.0);
        let id = market
            .groups()
            .find(|g| g.zone == AvailabilityZone::UsEast1a)
            .unwrap();
        let mut g = group(12.0, 0.03);
        g.id = id;
        // A bid at the historical max never fails → no checkpoints.
        let f_hi = optimal_interval(&g, view.max_bid(id).unwrap(), &view).unwrap();
        assert_eq!(f_hi, g.exec_hours);
        // A low-but-launchable bid fails often → finite interval.
        let low_bid = view.mean_price(id).unwrap() * 0.8;
        let f_lo = optimal_interval(&g, low_bid, &view).unwrap();
        assert!(f_lo <= f_hi);
        // The estimator-in-hand form is the same computation.
        let est = view.try_estimator(id).unwrap();
        assert_eq!(optimal_interval_for(&g, low_bid, est), f_lo);
    }
}
