//! A persistent worker pool for the subset search.
//!
//! Every parallel [`crate::twolevel::TwoLevelOptimizer`] search used to
//! spawn fresh OS threads through a `crossbeam::thread::scope` — one
//! spawn/join round per `optimize()` call. That tax is invisible for a
//! single offline search but real for the adaptive loop (one search per
//! window) and for `sompi-server` (one search per uncached request). A
//! [`SearchPool`] keeps the workers alive across searches: callers submit
//! a batch of borrowed closures, the pool runs them on its resident
//! threads, and [`SearchPool::run`] blocks until the whole batch is done —
//! the same strict join barrier a scoped spawn gives, which is what makes
//! handing the workers stack-borrowed data sound.
//!
//! Exactness: the pool never decides how work is split. Callers chunk the
//! enumeration order themselves (by [`crate::twolevel::OptimizerConfig::threads`],
//! exactly as the scoped-spawn path does) and receive results in
//! submission order, so the deterministic total-order merge sees the same
//! per-chunk results in the same order regardless of how many resident
//! workers drained the queue — plans are bit-identical with or without
//! the pool, at any pool size.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased unit of work, lifetime-erased to `'static` for the
/// resident threads (see the safety argument in [`SearchPool::run`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool id source: unique per process so traces can prove that many
/// searches reused one pool.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job is queued or shutdown is requested.
    ready: Condvar,
}

/// Countdown latch: [`SearchPool::run`] blocks on it until every job of
/// its batch has executed (including panicked ones — panics are caught
/// and re-thrown on the caller's thread after the barrier).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch mutex poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch mutex poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch mutex poisoned");
        }
    }
}

/// A fixed set of resident worker threads that executes batches of
/// borrowed closures with a strict completion barrier per batch. See the
/// module docs for the exactness contract; see DESIGN.md §14 for the
/// lifecycle (create once, share via `&SearchPool` or `Arc<SearchPool>`
/// across adaptive windows and server requests, drop to join).
pub struct SearchPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    id: u64,
    searches: AtomicU64,
}

impl std::fmt::Debug for SearchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchPool")
            .field("id", &self.id)
            .field("workers", &self.workers.len())
            .field("searches", &self.searches.load(Ordering::Relaxed))
            .finish()
    }
}

impl SearchPool {
    /// Spawn a pool with `workers` resident threads (`0` = one per
    /// available core, matching `OptimizerConfig::threads` semantics).
    /// The pool size only bounds concurrency — searches that chunk into
    /// more jobs than workers still complete, the excess jobs queue.
    pub fn new(workers: usize) -> Self {
        let n = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers,
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            searches: AtomicU64::new(0),
        }
    }

    /// Process-unique pool id, for trace events proving pool reuse.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of resident worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// How many searches have dispatched through this pool so far.
    pub fn searches_served(&self) -> u64 {
        self.searches.load(Ordering::Relaxed)
    }

    /// Record one search dispatching onto the pool; returns its 1-based
    /// sequence number (the `search_seq` of the `SearchPoolUsed` event).
    pub fn begin_search(&self) -> u64 {
        self.searches.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Run a batch of borrowed closures to completion and return their
    /// results in submission order. Blocks until every job has executed;
    /// if any job panicked, the first panic (in submission order) is
    /// resumed on the caller's thread — after the barrier, so no borrow
    /// escapes either way.
    pub fn run<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(n);
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            for (slot, task) in slots.iter().zip(tasks) {
                let latch = &latch;
                // SAFETY: the job borrows `slot`, `latch`, and whatever
                // `task` captured (`'env` at most). `latch.wait()` below
                // does not return until every job has finished running
                // (panics included — `catch_unwind` still reaches
                // `count_down`), so no borrow is used after this call
                // frame ends. This is the same argument that makes scoped
                // threads sound, with the scope's join replaced by the
                // latch.
                let job: Job = unsafe {
                    erase_job_lifetime(Box::new(move || {
                        let result = catch_unwind(AssertUnwindSafe(task));
                        *slot.lock().expect("slot mutex poisoned") = Some(result);
                        latch.count_down();
                    }))
                };
                state.queue.push_back(job);
            }
            self.shared.ready.notify_all();
        }
        latch.wait();
        slots
            .into_iter()
            .map(|slot| {
                let result = slot
                    .into_inner()
                    .expect("slot mutex poisoned")
                    .expect("pool job never ran");
                match result {
                    Ok(value) => value,
                    Err(payload) => resume_unwind(payload),
                }
            })
            .collect()
    }
}

impl Drop for SearchPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Pretend a borrowing job is `'static` so the resident threads can hold
/// it.
///
/// # Safety
///
/// The caller must not let any borrow captured by `job` expire until the
/// job has finished running ([`SearchPool::run`] guarantees this with its
/// per-batch latch barrier).
unsafe fn erase_job_lifetime<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> Job {
    std::mem::transmute(job)
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.ready.wait(state).expect("pool mutex poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = SearchPool::new(3);
        let inputs: Vec<usize> = (0..17).collect();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = inputs
            .iter()
            .map(|&i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out, inputs.iter().map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn borrowed_state_survives_many_batches_on_one_pool() {
        // More jobs than workers, stack-borrowed accumulator, repeated
        // batches on the same pool — the persistent-reuse shape.
        let pool = SearchPool::new(2);
        assert_eq!(pool.workers(), 2);
        let data: Vec<u64> = (1..=100).collect();
        for round in 0..5 {
            let hits = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
                .chunks(7)
                .map(|chunk| {
                    let hits = &hits;
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                        chunk.iter().sum::<u64>()
                    }) as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect();
            let jobs = tasks.len();
            let seq = pool.begin_search();
            assert_eq!(seq, round + 1, "search sequence must be monotone");
            let total: u64 = pool.run(tasks).into_iter().sum();
            assert_eq!(total, 5050);
            assert_eq!(hits.load(Ordering::Relaxed), jobs);
        }
        assert_eq!(pool.searches_served(), 5);
    }

    #[test]
    fn panics_propagate_after_the_barrier() {
        let pool = SearchPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
                Box::new(|| 1),
                Box::new(|| std::panic::panic_any("job exploded")),
                Box::new(|| 3),
            ];
            pool.run(tasks)
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool is still serviceable after a panicked batch.
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 7)];
        assert_eq!(pool.run(tasks), vec![7]);
    }

    #[test]
    fn pool_ids_are_unique() {
        let a = SearchPool::new(1);
        let b = SearchPool::new(1);
        assert_ne!(a.id(), b.id());
    }
}
