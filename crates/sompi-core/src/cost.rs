//! The expected monetary cost and execution time model — Formulas 1–11.
//!
//! The paper defines
//!
//! ```text
//! E[Cost] = Σ_{t⃗} f(P⃗, t⃗) · Cost(t⃗, F⃗, d)        (Formula 2)
//! f(P⃗, t⃗) = Π_i f_i(P_i, t_i)                      (Formula 3, independence)
//! ```
//!
//! with `t_i` the hour bucket in which circle group `i` suffers its first
//! out-of-bid event (`t_i = T_i` meaning "completes"). A naive sum is
//! `O(T^K)`. Because (a) completed groups end at a *deterministic* wall
//! time `W_i = T_i + O_i·⌊T_i/F_i⌋` and (b) failure times are independent
//! across groups, the sum factors exactly over the `2^K` complete/fail
//! patterns:
//!
//! * For a pattern with completing set `C ≠ ∅` the run ends at
//!   `W* = min_{i∈C} W_i` (the paper's hybrid rule: the first finished
//!   replica wins and everything else is terminated). Each failed group's
//!   contribution `E[min(e_j, W*) | j fails]` is a 1-D sum.
//! * For the all-fail pattern, `E[max_j e_j]` (Formula 10) and
//!   `E[min_j Ratio_j]` (Formulas 7/11) are computed from products of
//!   per-group CDFs — again 1-D.
//!
//! Total: `O(2^K · K · T)` exact, no sampling — and the default kernel
//! tightens that to `O(K² · T + 2^K · K)` by memoizing the per-candidate
//! caps table (see below). `replay` cross-checks this model against
//! Monte-Carlo trace replay (the paper's §5.4.1 accuracy study, max
//! relative difference ≈ 15%).
//!
//! # Hot-path design
//!
//! [`evaluate`] is called once per candidate configuration by the odometer
//! loop in [`crate::twolevel`] — millions of times at paper scale. Three
//! things keep it fast and allocation-free per call:
//!
//! * It borrows its groups (`&[&GroupAssessment]`), so callers compose
//!   candidates from pre-assessed options without cloning `fail_buckets`.
//! * Every per-bucket quantity (`fail_wall`, billed floors, remaining
//!   ratios) is precomputed once in [`GroupAssessment::from_parts`] and
//!   looked up in the loops; every buffer the kernel needs lives in a
//!   caller-reusable [`EvalScratch`].
//! * The winner wall `w*` can only take one of the ≤ `K` completion
//!   walls, so the default [`KernelMode`] memoizes each group's
//!   `E[billed | fail, cap]` at every attainable wall once per candidate
//!   (a `K × K` table) instead of rescanning the `T` fail buckets in
//!   every one of the `2^K − 1` patterns, and packs the per-mask scalars
//!   into contiguous SoA arrays. The memo calls the same summation the
//!   scalar kernel runs, so results are bit-identical (DESIGN.md §14).

use crate::error::SompiError;
use crate::model::{CircleGroup, GroupDecision, OnDemandOption, Plan};
use crate::view::MarketView;
use crate::{Hours, Usd};
use ec2_market::failure::FailureEstimator;
use serde::{Deserialize, Serialize};

/// Tolerance for probability-mass conservation: `survival + Σ fail_buckets`
/// may drift from 1 by at most this before the tail is renormalized.
const MASS_TOLERANCE: f64 = 1e-9;

/// Everything the evaluator needs to know about one circle group at one
/// realized bid price: the paper's `f_i(P_i, ·)` and `S_i(P_i)` plus the
/// group constants, with every per-bucket quantity precomputed so that
/// [`evaluate`] is pure table lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAssessment {
    /// The group and its constants.
    pub group: CircleGroup,
    /// The decision (bid + checkpoint interval) this assessment is for.
    pub decision: GroupDecision,
    /// `S_i(P_i)`: expected spot price while running, USD/instance-hour.
    pub expected_price: Usd,
    /// P[group survives until it completes the application].
    pub survival: f64,
    /// Unconditional failure probabilities per hour bucket `[t, t+1)`,
    /// covering the group's full wall-clock horizon (measured from launch).
    /// Always satisfies `survival + Σ fail_buckets ≈ 1`.
    pub fail_buckets: Vec<f64>,
    /// Expected wait before the group can launch at this bid ("otherwise
    /// it waits"). Shifts every wall-clock quantity; costs nothing (idle
    /// requests are not billed).
    pub launch_delay: Hours,
    /// Precomputed `fail_wall(t)` per bucket: wall-clock failure instant
    /// including launch delay.
    wall_at_bucket: Vec<Hours>,
    /// Precomputed `fail_run_wall(t)` per bucket: billed running time until
    /// the bucket-`t` failure (no launch delay).
    run_wall_at_bucket: Vec<Hours>,
    /// Precomputed `fail_run_wall(t).floor()` per bucket: billed hours of a
    /// provider kill (partial last hour free under 2014 billing).
    billed_floor_at_bucket: Vec<Hours>,
    /// Precomputed `fail_ratio(t)` per bucket: remaining work fraction.
    ratio_at_bucket: Vec<f64>,
}

impl GroupAssessment {
    /// Assess `group` under `decision` against market history.
    ///
    /// Returns `Ok(None)` when the bid admits no launch at all (no
    /// historical price at or below it) — such a group cannot be part of a
    /// plan — and `Err` when the view has no history for the group.
    pub fn assess(
        group: CircleGroup,
        decision: GroupDecision,
        view: &MarketView,
    ) -> Result<Option<Self>, SompiError> {
        let est = view.try_estimator(group.id)?;
        Ok(Self::assess_with(group, decision, est))
    }

    /// [`GroupAssessment::assess`] with the estimator already in hand.
    pub fn assess_with(
        group: CircleGroup,
        decision: GroupDecision,
        est: &FailureEstimator,
    ) -> Option<Self> {
        let expected_price = est.expected_spot_price().mean_below(decision.bid)?;
        let f = est.failure_rate_exact(decision.bid, assessment_horizon(&group, &decision));
        let survival = f.survival();
        Some(Self::from_parts(
            group,
            decision,
            expected_price,
            survival,
            f.into_buckets(),
            est.expected_launch_delay(decision.bid),
        ))
    }

    /// Build an assessment from raw parts, restoring probability-mass
    /// conservation and precomputing the per-bucket tables.
    ///
    /// Estimators that truncate the failure horizon drop tail mass; the
    /// dropped mass is folded back proportionally into the failure buckets
    /// so that `survival + Σ fail_buckets = 1` always holds (a violated
    /// invariant would silently skew every expectation downstream).
    pub fn from_parts(
        group: CircleGroup,
        decision: GroupDecision,
        expected_price: Usd,
        survival: f64,
        mut fail_buckets: Vec<f64>,
        launch_delay: Hours,
    ) -> Self {
        let bucket_mass: f64 = fail_buckets.iter().sum();
        let target = 1.0 - survival;
        if bucket_mass > 0.0 && (bucket_mass - target).abs() > MASS_TOLERANCE {
            let scale = target / bucket_mass;
            for b in &mut fail_buckets {
                *b *= scale;
            }
        }
        debug_assert!(
            bucket_mass <= 0.0 || (survival + fail_buckets.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "probability mass not conserved: survival {survival} + buckets {}",
            fail_buckets.iter().sum::<f64>()
        );

        let w = group.completion_wall_hours(decision.ckpt_interval);
        let n = fail_buckets.len();
        let mut wall_at_bucket = Vec::with_capacity(n);
        let mut run_wall_at_bucket = Vec::with_capacity(n);
        let mut billed_floor_at_bucket = Vec::with_capacity(n);
        let mut ratio_at_bucket = Vec::with_capacity(n);
        for t in 0..n {
            let tau = t as f64 + 0.5;
            // Wall time ≈ productive time within the horizon: checkpoints
            // already consumed some of it. Invert approximately by scaling.
            let productive = if w > 0.0 {
                tau * group.exec_hours / w
            } else {
                tau
            };
            let productive = productive.min(group.exec_hours);
            let run_wall = group
                .wall_at_failure(productive, decision.ckpt_interval)
                .min(w);
            wall_at_bucket.push(launch_delay + run_wall);
            run_wall_at_bucket.push(run_wall);
            billed_floor_at_bucket.push(run_wall.floor());
            ratio_at_bucket.push(group.remaining_ratio(productive, decision.ckpt_interval));
        }

        Self {
            group,
            decision,
            expected_price,
            survival,
            fail_buckets,
            launch_delay,
            wall_at_bucket,
            run_wall_at_bucket,
            billed_floor_at_bucket,
            ratio_at_bucket,
        }
    }

    /// Probability the group fails before completing.
    pub fn prob_fail(&self) -> f64 {
        1.0 - self.survival
    }

    /// Wall-clock end time when completing: launch delay + `W_i`.
    pub fn completion_wall(&self) -> Hours {
        self.launch_delay
            + self
                .group
                .completion_wall_hours(self.decision.ckpt_interval)
    }

    /// Running wall time (excluding launch delay) the group's own horizon
    /// spans: `W_i` without the delay.
    fn run_wall(&self) -> Hours {
        self.group
            .completion_wall_hours(self.decision.ckpt_interval)
    }

    /// Representative wall-clock failure instant (from the start offset,
    /// including launch delay) for bucket `t` (bucket midpoint).
    fn fail_wall(&self, t: usize) -> Hours {
        self.wall_at_bucket[t]
    }

    /// Productive progress ratio remaining after a failure in bucket `t`.
    fn fail_ratio(&self, t: usize) -> f64 {
        self.ratio_at_bucket[t]
    }

    /// Hourly spot cost of the whole group (all `M_i` instances).
    fn hourly_cost(&self) -> Usd {
        self.expected_price * self.group.instances as f64
    }

    /// `E[min(e_j, cap) | fail]` — expected *billed* hours for a failed
    /// group that gets terminated by the user at absolute time `cap` if
    /// still alive, under 2014 hourly billing: an out-of-bid (provider)
    /// kill gets its last partial hour free (`floor`), a user termination
    /// is charged the started hour (`ceil`). Launch delay defers the
    /// billing window but is itself free.
    fn expected_billed_capped(&self, cap: Hours) -> Hours {
        let run_cap = (cap - self.launch_delay).max(0.0);
        let pf = self.prob_fail();
        if pf <= 0.0 {
            return run_cap.ceil().min(self.run_wall().ceil());
        }
        let run_cap_ceil = run_cap.ceil();
        let mut acc = 0.0;
        for (t, p) in self.fail_buckets.iter().enumerate() {
            let billed = if self.run_wall_at_bucket[t] <= run_cap {
                self.billed_floor_at_bucket[t] // provider kill: partial hour free
            } else {
                run_cap_ceil // user kill at the winner's completion
            };
            acc += p * billed;
        }
        acc / pf
    }

    /// `E[billed hours | fail]` until the out-of-bid event (provider
    /// kill: partial last hour free).
    fn expected_billed(&self) -> Hours {
        self.expected_billed_capped(f64::INFINITY)
    }

    /// Whether two assessments of the *same group* are indistinguishable
    /// to [`evaluate`]: identical in every field the evaluator reads —
    /// which is everything except `decision.bid`. Two bids with no
    /// historical price strictly between them produce bitwise-identical
    /// assessments (same launch set, same failure function, same φ), and
    /// then only the higher bid can win under the optimizer's total order
    /// (higher bids break cost ties). That makes the lower bid safe to
    /// drop before enumeration — the bid-collapse dominance filter in
    /// [`crate::pareto::collapse_bid_dominated`].
    pub fn eval_equivalent(&self, other: &Self) -> bool {
        self.group == other.group
            && self.decision.ckpt_interval == other.decision.ckpt_interval
            && self.expected_price == other.expected_price
            && self.survival == other.survival
            && self.launch_delay == other.launch_delay
            && self.fail_buckets == other.fail_buckets
            && self.wall_at_bucket == other.wall_at_bucket
            && self.run_wall_at_bucket == other.run_wall_at_bucket
            && self.billed_floor_at_bucket == other.billed_floor_at_bucket
            && self.ratio_at_bucket == other.ratio_at_bucket
    }

    /// Admissible lower bound on this option's additive contribution to
    /// `E[Cost]` in *any* candidate containing it, given that no group in
    /// the candidate can complete before wall time `w_min`.
    ///
    /// Derivation (`r = hourly_cost`, `cap = ⌈(w_min − delay)₊⌉`):
    ///
    /// * In every pattern where the group survives (total probability
    ///   `survival`), it is billed
    ///   `⌈clamp(w* − delay, 0, run_wall)⌉` hours with `w* ≥ w_min`, and
    ///   that expression is monotone in `w*`.
    /// * In every pattern where it fails in bucket `t` (total probability
    ///   `fail_buckets[t]`), it is billed either the provider-kill floor
    ///   `billed_floor[t]` or the user-kill `⌈(w* − delay)₊⌉ ≥ cap`; both
    ///   branches are ≥ `min(billed_floor[t], cap)`. The all-fail pattern
    ///   bills the floor and adds a nonnegative on-demand recovery cost.
    ///
    /// Summing the per-group bounds over a candidate therefore never
    /// exceeds its true expected cost — the branch-and-bound prune in
    /// `twolevel::search_chunk` is exact.
    pub fn cost_lower_bound(&self, w_min: Hours) -> Usd {
        let run_cap = (w_min - self.launch_delay).max(0.0);
        let surv_hours = run_cap.min(self.run_wall()).ceil();
        let cap_ceil = run_cap.ceil();
        let mut fail_hours = 0.0;
        for (t, p) in self.fail_buckets.iter().enumerate() {
            fail_hours += p * self.billed_floor_at_bucket[t].min(cap_ceil);
        }
        self.hourly_cost() * (self.survival * surv_hours + fail_hours)
    }
}

/// Result of evaluating a plan under the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// `E[Cost]`, USD (Formula 2).
    pub expected_cost: Usd,
    /// `E[Time]`, hours (Formula 8).
    pub expected_time: Hours,
    /// Probability that every circle group fails and the on-demand
    /// fallback runs.
    pub p_all_fail: f64,
    /// Expected spot-instance share of the cost (Formula 5).
    pub expected_spot_cost: Usd,
    /// Expected on-demand share of the cost (Formula 6).
    pub expected_od_cost: Usd,
}

impl Evaluation {
    /// Whether the plan meets `deadline` in expectation (the paper's
    /// constraint in Formula 1).
    pub fn meets(&self, deadline: Hours) -> bool {
        self.expected_time <= deadline
    }
}

/// Which kernel [`evaluate_with_scratch`] runs. Every mode returns
/// bit-identical [`Evaluation`]s — the memoized modes reuse the scalar
/// kernel's exact summation order (the caps table is filled by calling
/// `GroupAssessment::expected_billed_capped` itself, and the mask loop
/// accumulates in the same group order) — they only differ in how much
/// redundant work the mask loop performs. See DESIGN.md §14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The original kernel: every failed group rescans all `T` fail
    /// buckets in every one of the `2^k − 1` patterns — `O(2^k · k · T)`.
    /// Kept verbatim as the `--no-kernel-caps` ablation baseline.
    Scalar,
    /// Memoize the per-candidate `k × k` caps table (the winner wall
    /// `w*` can only take one of the ≤ `k` completion walls), but keep
    /// reading the per-group scalars through the `&[&GroupAssessment]`
    /// refs — `O(k² · T + 2^k · k)` with pointer-chasing intact. The
    /// all-fail branch switches to the prefix-sum sweep (see
    /// [`EvalScratch`]).
    CapsMemo,
    /// Caps table plus contiguous SoA copies of the per-mask scalars
    /// (survival, fail probability, completion wall, hourly cost), so the
    /// mask loop is pure flat-array arithmetic. The default.
    #[default]
    CapsSoa,
}

impl KernelMode {
    /// Per-subset crossover for `EXPERIMENTS.md`'s kernel ablation: the
    /// SoA copies only pay off once the `2^k` mask loop dominates the
    /// `O(k)` `prepare` copy, which BENCH_kernel.json places at `k ≈ 12`.
    /// Below that, [`KernelMode::CapsMemo`] reads the scalars through the
    /// assessment refs and wins. Results are bit-identical either way —
    /// this only picks the faster of the two memoized kernels.
    pub const AUTO_SOA_MIN_GROUPS: usize = 13;

    /// The faster memoized kernel for a `k`-group subset:
    /// [`KernelMode::CapsMemo`] for `k < `[`Self::AUTO_SOA_MIN_GROUPS`],
    /// [`KernelMode::CapsSoa`] at or above. Never returns
    /// [`KernelMode::Scalar`] — that is the `--no-kernel-caps` ablation
    /// baseline, not a performance point.
    pub fn auto_for(group_count: usize) -> Self {
        if group_count < Self::AUTO_SOA_MIN_GROUPS {
            KernelMode::CapsMemo
        } else {
            KernelMode::CapsSoa
        }
    }
}

/// Reusable workspace for [`evaluate_with_scratch`]: the candidate
/// wall/ratio value collection used by the all-fail branch, plus — in the
/// memoized [`KernelMode`]s — the per-candidate SoA scalar arrays and the
/// flat `k × k` caps/survivor-billing tables. All buffers grow to the
/// largest candidate seen and are reused after, so repeated evaluations
/// (the optimizer's odometer loop) do not allocate.
#[derive(Debug, Default)]
pub struct EvalScratch {
    values: Vec<f64>,
    mode: KernelMode,
    /// SoA: `completion_wall()` per group.
    walls: Vec<f64>,
    /// SoA: `survival` per group ([`KernelMode::CapsSoa`] only).
    survival: Vec<f64>,
    /// SoA: `prob_fail()` per group ([`KernelMode::CapsSoa`] only).
    prob_fail: Vec<f64>,
    /// SoA: `hourly_cost()` per group ([`KernelMode::CapsSoa`] only).
    hourly: Vec<f64>,
    /// `caps[j·k + i]` = `groups[j].expected_billed_capped(walls[i])` —
    /// the memoized failed-group billing at every attainable winner wall.
    caps: Vec<f64>,
    /// `surv_billed[j·k + i]` = billed hours of surviving group `j` when
    /// the winner finishes at `walls[i]`:
    /// `(walls[i] − delay_j).max(0).min(run_wall_j).ceil()`.
    surv_billed: Vec<f64>,
    /// Per-group left-to-right prefix sums of `fail_buckets`, flattened
    /// (memoized modes only). Failure walls are nondecreasing and
    /// remaining-work ratios nonincreasing in the bucket index, so every
    /// conditional-CDF sum the all-fail helpers accumulate is one of
    /// these partial sums — bitwise, since they add the same buckets in
    /// the same order.
    prefix: Vec<f64>,
    /// Group offsets into `prefix` (length `k + 1`; group `j`'s sums span
    /// `prefix[off[j]..off[j + 1]]`).
    prefix_off: Vec<usize>,
    /// Per-group bucket cursors for the merged value sweep.
    cursors: Vec<usize>,
    /// Per-value joint survivor-function products (min-ratio sweep).
    products: Vec<f64>,
}

impl EvalScratch {
    /// An empty workspace running the default kernel
    /// ([`KernelMode::CapsSoa`]). Buffers grow on first use and are
    /// reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace pinned to `mode` (the ablation hook — results
    /// are bit-identical in every mode).
    pub fn with_mode(mode: KernelMode) -> Self {
        Self {
            mode,
            ..Self::default()
        }
    }

    /// The kernel this workspace runs.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Repin the workspace to `mode`. The memo buffers are sized per
    /// candidate inside `prepare`, so switching kernels between
    /// evaluations is free — the search loop uses this to pick
    /// [`KernelMode::auto_for`] each subset size.
    pub fn set_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// Fill the memo tables for one candidate. `caps` is computed by
    /// calling [`GroupAssessment::expected_billed_capped`] per `(group,
    /// wall)` pair — the same left-to-right bucket summation the scalar
    /// kernel runs per mask — so every table entry is bitwise the value
    /// the scalar kernel would have recomputed.
    fn prepare(&mut self, groups: &[&GroupAssessment]) {
        let k = groups.len();
        self.walls.clear();
        self.walls
            .extend(groups.iter().map(|g| g.completion_wall()));
        if self.mode == KernelMode::CapsSoa {
            self.survival.clear();
            self.survival.extend(groups.iter().map(|g| g.survival));
            self.prob_fail.clear();
            self.prob_fail.extend(groups.iter().map(|g| g.prob_fail()));
            self.hourly.clear();
            self.hourly.extend(groups.iter().map(|g| g.hourly_cost()));
        }
        self.caps.clear();
        self.surv_billed.clear();
        for g in groups {
            let run_wall = g.run_wall();
            for i in 0..k {
                self.caps.push(g.expected_billed_capped(self.walls[i]));
                self.surv_billed.push(
                    (self.walls[i] - g.launch_delay)
                        .max(0.0)
                        .min(run_wall)
                        .ceil(),
                );
            }
        }
        self.prefix.clear();
        self.prefix_off.clear();
        self.prefix_off.push(0);
        for g in groups {
            debug_assert!(
                g.wall_at_bucket.windows(2).all(|w| w[0] <= w[1]),
                "failure walls must be nondecreasing for the prefix sweep"
            );
            debug_assert!(
                g.ratio_at_bucket.windows(2).all(|w| w[0] >= w[1]),
                "remaining ratios must be nonincreasing for the prefix sweep"
            );
            let mut acc = 0.0;
            self.prefix.push(acc);
            for &p in &g.fail_buckets {
                acc += p;
                self.prefix.push(acc);
            }
            self.prefix_off.push(self.prefix.len());
        }
    }
}

/// Evaluate a set of assessed circle groups plus the on-demand fallback.
///
/// An empty assessment list models a pure on-demand plan: the application
/// runs once, from scratch, on the fallback option.
///
/// Convenience wrapper over [`evaluate_with_scratch`] that allocates a
/// fresh scratch; hot loops should hold their own [`EvalScratch`].
pub fn evaluate(groups: &[&GroupAssessment], od: &OnDemandOption) -> Evaluation {
    evaluate_with_scratch(groups, od, &mut EvalScratch::new())
}

/// [`evaluate`] with a caller-provided scratch buffer (allocation-free once
/// the scratch has warmed up).
pub fn evaluate_with_scratch(
    groups: &[&GroupAssessment],
    od: &OnDemandOption,
    scratch: &mut EvalScratch,
) -> Evaluation {
    let k = groups.len();
    if k == 0 {
        let cost = od.full_cost_billed();
        return Evaluation {
            expected_cost: cost,
            expected_time: od.exec_hours,
            p_all_fail: 1.0,
            expected_spot_cost: 0.0,
            expected_od_cost: cost,
        };
    }
    assert!(k <= 16, "evaluation is exponential in group count; got {k}");

    let mut e_cost = 0.0;
    let mut e_time = 0.0;
    let mut e_spot = 0.0;
    let mut e_od = 0.0;

    // Patterns with at least one completing group. Three kernels, one
    // result: `w*` is always one of the ≤ k completion walls, and equal
    // walls memoize to bitwise-equal table entries, so looking the billed
    // hours up by wall *index* reproduces the scalar kernel's arithmetic
    // exactly — same factors, same order, same rounding.
    match scratch.mode {
        KernelMode::Scalar => {
            for mask in 1u32..(1 << k) {
                let mut p = 1.0;
                let mut w_star = f64::INFINITY;
                for (i, g) in groups.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        p *= g.survival;
                        w_star = w_star.min(g.completion_wall());
                    } else {
                        p *= g.prob_fail();
                    }
                }
                if p <= 0.0 {
                    continue;
                }
                let mut cost = 0.0;
                for (i, g) in groups.iter().enumerate() {
                    let hours = if mask & (1 << i) != 0 {
                        // Completing groups run until the winner finishes
                        // (their own waiting time is not billed); user
                        // termination charges the started hour.
                        (w_star - g.launch_delay).max(0.0).min(g.run_wall()).ceil()
                    } else {
                        g.expected_billed_capped(w_star)
                    };
                    cost += g.hourly_cost() * hours;
                }
                e_cost += p * cost;
                e_spot += p * cost;
                e_time += p * w_star;
            }
        }
        KernelMode::CapsMemo => {
            scratch.prepare(groups);
            for mask in 1u32..(1 << k) {
                let mut p = 1.0;
                let mut w_star = f64::INFINITY;
                let mut wi = 0usize;
                for (i, g) in groups.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        p *= g.survival;
                        if scratch.walls[i] <= w_star {
                            w_star = scratch.walls[i];
                            wi = i;
                        }
                    } else {
                        p *= g.prob_fail();
                    }
                }
                if p <= 0.0 {
                    continue;
                }
                let mut cost = 0.0;
                for (j, g) in groups.iter().enumerate() {
                    let hours = if mask & (1 << j) != 0 {
                        scratch.surv_billed[j * k + wi]
                    } else {
                        scratch.caps[j * k + wi]
                    };
                    cost += g.hourly_cost() * hours;
                }
                e_cost += p * cost;
                e_spot += p * cost;
                e_time += p * w_star;
            }
        }
        KernelMode::CapsSoa => {
            scratch.prepare(groups);
            for mask in 1u32..(1 << k) {
                let mut p = 1.0;
                let mut w_star = f64::INFINITY;
                let mut wi = 0usize;
                for i in 0..k {
                    if mask & (1 << i) != 0 {
                        p *= scratch.survival[i];
                        if scratch.walls[i] <= w_star {
                            w_star = scratch.walls[i];
                            wi = i;
                        }
                    } else {
                        p *= scratch.prob_fail[i];
                    }
                }
                if p <= 0.0 {
                    continue;
                }
                let mut cost = 0.0;
                for j in 0..k {
                    let hours = if mask & (1 << j) != 0 {
                        scratch.surv_billed[j * k + wi]
                    } else {
                        scratch.caps[j * k + wi]
                    };
                    cost += scratch.hourly[j] * hours;
                }
                e_cost += p * cost;
                e_spot += p * cost;
                e_time += p * w_star;
            }
        }
    }

    // All-fail pattern: on-demand recovery.
    let p0: f64 = groups.iter().map(|g| g.prob_fail()).product();
    if p0 > 0.0 {
        let spot: f64 = groups
            .iter()
            .map(|g| g.hourly_cost() * g.expected_billed())
            .sum();
        let (e_max_wall, e_min_ratio) = if scratch.mode == KernelMode::Scalar {
            (
                expected_max_wall(groups, &mut scratch.values),
                expected_min_ratio(groups, &mut scratch.values),
            )
        } else {
            (
                expected_max_wall_swept(groups, scratch),
                expected_min_ratio_swept(groups, scratch),
            )
        };
        let od_hours = od.exec_hours * e_min_ratio + od.recovery_hours;
        // On-demand is billed in whole started instance-hours.
        let od_cost = od_hours.ceil() * od.unit_price * od.instances as f64;
        e_cost += p0 * (spot + od_cost);
        e_spot += p0 * spot;
        e_od += p0 * od_cost;
        e_time += p0 * (e_max_wall + od_hours);
    }

    Evaluation {
        expected_cost: e_cost,
        expected_time: e_time,
        p_all_fail: p0,
        expected_spot_cost: e_spot,
        expected_od_cost: e_od,
    }
}

/// The hourly horizon a group is assessed over: its full wall-clock
/// completion time under the decision's checkpoint interval. Shared with
/// the warm-start table cache so cached counts serve the exact horizon the
/// cold path would have used.
pub fn assessment_horizon(group: &CircleGroup, decision: &GroupDecision) -> usize {
    group
        .completion_wall_hours(decision.ckpt_interval)
        .ceil()
        .max(1.0) as usize
}

/// Convenience: assess every group of a plan and evaluate it. Returns
/// `Ok(None)` if any group's bid admits no launch, `Err` if any group is
/// unknown to the view.
pub fn evaluate_plan(plan: &Plan, view: &MarketView) -> Result<Option<Evaluation>, SompiError> {
    let mut assessed = Vec::with_capacity(plan.groups.len());
    for (g, d) in &plan.groups {
        match GroupAssessment::assess(*g, *d, view)? {
            Some(a) => assessed.push(a),
            None => return Ok(None),
        }
    }
    let refs: Vec<&GroupAssessment> = assessed.iter().collect();
    Ok(Some(evaluate(&refs, &plan.on_demand)))
}

/// `E[max_j e_j | all fail]` — expected wall time at which the *last*
/// circle group dies (Formula 10). Exact, via the product of conditional
/// CDFs of the independent per-group failure walls. `values` is a reused
/// scratch buffer for the attainable wall values.
fn expected_max_wall(groups: &[&GroupAssessment], values: &mut Vec<Hours>) -> Hours {
    values.clear();
    for g in groups {
        for t in 0..g.fail_buckets.len() {
            if g.fail_buckets[t] > 0.0 {
                values.push(g.fail_wall(t));
            }
        }
    }
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    values.dedup();

    let cdf = |g: &GroupAssessment, x: Hours| -> f64 {
        let pf = g.prob_fail();
        if pf <= 0.0 {
            return 1.0; // vacuous: group can't be in the all-fail pattern
        }
        let mut acc = 0.0;
        for (t, p) in g.fail_buckets.iter().enumerate() {
            if g.fail_wall(t) <= x {
                acc += p;
            }
        }
        acc / pf
    };

    let mut e = 0.0;
    let mut prev_cdf = 0.0;
    for &v in values.iter() {
        let joint: f64 = groups.iter().map(|g| cdf(g, v)).product();
        e += v * (joint - prev_cdf);
        prev_cdf = joint;
    }
    e
}

/// `E[min_j Ratio_j | all fail]` — expected remaining work fraction at the
/// best checkpoint across groups (Formulas 7 and 11). Exact via products
/// of conditional complementary CDFs. `values` is a reused scratch buffer.
fn expected_min_ratio(groups: &[&GroupAssessment], values: &mut Vec<f64>) -> f64 {
    values.clear();
    for g in groups {
        for t in 0..g.fail_buckets.len() {
            if g.fail_buckets[t] > 0.0 {
                values.push(g.fail_ratio(t));
            }
        }
    }
    if values.is_empty() {
        return 1.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    values.dedup();

    // P[Ratio_j >= r | fail]
    let ccdf = |g: &GroupAssessment, r: f64| -> f64 {
        let pf = g.prob_fail();
        if pf <= 0.0 {
            return 1.0;
        }
        let mut acc = 0.0;
        for (t, p) in g.fail_buckets.iter().enumerate() {
            if g.fail_ratio(t) >= r {
                acc += p;
            }
        }
        acc / pf
    };

    // E[min] = Σ_m v_m · (P[min ≥ v_m] − P[min ≥ v_{m+1}])
    let mut e = 0.0;
    for (m, &v) in values.iter().enumerate() {
        let p_ge_v: f64 = groups.iter().map(|g| ccdf(g, v)).product();
        let p_ge_next: f64 = if m + 1 < values.len() {
            groups.iter().map(|g| ccdf(g, values[m + 1])).product()
        } else {
            0.0
        };
        e += v * (p_ge_v - p_ge_next);
    }
    e
}

/// [`expected_max_wall`] via the memoized prefix sums: failure walls are
/// nondecreasing in the bucket index, so `cdf(g, v)` is one of group
/// `g`'s left-to-right partial sums — looked up by advancing a per-group
/// cursor as `v` sweeps the sorted wall values. Bitwise identical to the
/// scalar helper (same additions, same order, same division) in
/// `O(k·T log(k·T))` instead of `O(k²·T²)`.
fn expected_max_wall_swept(groups: &[&GroupAssessment], s: &mut EvalScratch) -> Hours {
    s.values.clear();
    for g in groups {
        for t in 0..g.fail_buckets.len() {
            if g.fail_buckets[t] > 0.0 {
                s.values.push(g.fail_wall(t));
            }
        }
    }
    if s.values.is_empty() {
        return 0.0;
    }
    s.values.sort_by(|a, b| a.total_cmp(b));
    s.values.dedup();

    s.cursors.clear();
    s.cursors.resize(groups.len(), 0);
    let mut e = 0.0;
    let mut prev_cdf = 0.0;
    for &v in &s.values {
        let mut joint = 1.0;
        for (j, g) in groups.iter().enumerate() {
            let pf = g.prob_fail();
            let cdf = if pf <= 0.0 {
                1.0 // vacuous: group can't be in the all-fail pattern
            } else {
                let walls = &g.wall_at_bucket;
                let mut c = s.cursors[j];
                while c < walls.len() && walls[c] <= v {
                    c += 1;
                }
                s.cursors[j] = c;
                s.prefix[s.prefix_off[j] + c] / pf
            };
            joint *= cdf;
        }
        e += v * (joint - prev_cdf);
        prev_cdf = joint;
    }
    e
}

/// [`expected_min_ratio`] via the memoized prefix sums: remaining-work
/// ratios are nonincreasing in the bucket index, so `ccdf(g, r)` is a
/// prefix sum too — the cursor retreats as `r` sweeps the sorted ratio
/// values ascending. The per-value joint products are computed once and
/// reused for the adjacent-difference (the scalar helper recomputes each
/// product twice with identical factors, so reuse is bitwise identical).
fn expected_min_ratio_swept(groups: &[&GroupAssessment], s: &mut EvalScratch) -> f64 {
    s.values.clear();
    for g in groups {
        for t in 0..g.fail_buckets.len() {
            if g.fail_buckets[t] > 0.0 {
                s.values.push(g.fail_ratio(t));
            }
        }
    }
    if s.values.is_empty() {
        return 1.0;
    }
    s.values.sort_by(|a, b| a.total_cmp(b));
    s.values.dedup();

    s.cursors.clear();
    s.cursors
        .extend(groups.iter().map(|g| g.fail_buckets.len()));
    s.products.clear();
    for &v in &s.values {
        let mut joint = 1.0;
        for (j, g) in groups.iter().enumerate() {
            let pf = g.prob_fail();
            let ccdf = if pf <= 0.0 {
                1.0
            } else {
                let ratios = &g.ratio_at_bucket;
                let mut c = s.cursors[j];
                while c > 0 && ratios[c - 1] < v {
                    c -= 1;
                }
                s.cursors[j] = c;
                s.prefix[s.prefix_off[j] + c] / pf
            };
            joint *= ccdf;
        }
        s.products.push(joint);
    }

    // E[min] = Σ_m v_m · (P[min ≥ v_m] − P[min ≥ v_{m+1}])
    let mut e = 0.0;
    for (m, &v) in s.values.iter().enumerate() {
        let p_ge_next = if m + 1 < s.products.len() {
            s.products[m + 1]
        } else {
            0.0
        };
        e += v * (s.products[m] - p_ge_next);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceTypeId;
    use ec2_market::market::CircleGroupId;
    use ec2_market::zone::AvailabilityZone;

    #[test]
    fn auto_kernel_crosses_over_at_the_soa_threshold() {
        for k in 0..KernelMode::AUTO_SOA_MIN_GROUPS {
            assert_eq!(KernelMode::auto_for(k), KernelMode::CapsMemo, "k={k}");
        }
        for k in KernelMode::AUTO_SOA_MIN_GROUPS..KernelMode::AUTO_SOA_MIN_GROUPS + 8 {
            assert_eq!(KernelMode::auto_for(k), KernelMode::CapsSoa, "k={k}");
        }
    }

    #[test]
    fn set_mode_repins_a_scratch_between_evaluations() {
        let mut scratch = EvalScratch::with_mode(KernelMode::Scalar);
        assert_eq!(scratch.mode(), KernelMode::Scalar);
        scratch.set_mode(KernelMode::CapsMemo);
        assert_eq!(scratch.mode(), KernelMode::CapsMemo);
    }

    fn group(t: Hours) -> CircleGroup {
        CircleGroup {
            id: CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a),
            instances: 4,
            exec_hours: t,
            ckpt_overhead_hours: 0.02,
            recovery_hours: 0.1,
        }
    }

    fn od() -> OnDemandOption {
        OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 4,
            exec_hours: 2.0,
            unit_price: 2.0,
            recovery_hours: 0.1,
        }
    }

    /// Hand-built assessment: survival `s`, uniform failure mass over
    /// `horizon` buckets, expected price `price`.
    fn assessment(t: Hours, s: f64, price: f64, interval: Hours) -> GroupAssessment {
        let g = group(t);
        let horizon = g.completion_wall_hours(interval).ceil().max(1.0) as usize;
        let per = (1.0 - s) / horizon as f64;
        GroupAssessment::from_parts(
            g,
            GroupDecision {
                bid: 1.0,
                ckpt_interval: interval,
            },
            price,
            s,
            vec![per; horizon],
            0.0,
        )
    }

    #[test]
    fn pure_on_demand_plan_costs_full_run() {
        let e = evaluate(&[], &od());
        assert!((e.expected_cost - 16.0).abs() < 1e-12);
        assert!((e.expected_time - 2.0).abs() < 1e-12);
        assert_eq!(e.p_all_fail, 1.0);
    }

    #[test]
    fn certain_survivor_costs_its_full_run_only() {
        // One group that never fails: cost = S·W·M, time = W.
        let a = assessment(3.0, 1.0, 0.1, 3.0); // no checkpoints
        let e = evaluate(&[&a], &od());
        assert!((e.expected_time - 3.0).abs() < 1e-9);
        assert!((e.expected_cost - 0.1 * 3.0 * 4.0).abs() < 1e-9);
        assert_eq!(e.p_all_fail, 0.0);
        assert_eq!(e.expected_od_cost, 0.0);
    }

    #[test]
    fn certain_failure_without_checkpoints_pays_od_full_rerun() {
        let a = assessment(3.0, 0.0, 0.1, 3.0); // always fails, no ckpt
        let e = evaluate(&[&a], &od());
        assert_eq!(e.p_all_fail, 1.0);
        // Ratio = 1 everywhere → full on-demand run + recovery, billed in
        // whole hours: ceil(2.0 + 0.1) = 3 h × $2 × 4.
        let od_cost = 3.0 * 2.0 * 4.0;
        assert!(
            (e.expected_od_cost - od_cost).abs() < 1e-9,
            "od {}",
            e.expected_od_cost
        );
        // Spot cost: uniform failure at bucket midpoints 0.5/1.5/2.5 h;
        // provider kills waive the partial hour → floor → 0/1/2 → mean 1.
        assert!((e.expected_spot_cost - 0.1 * 4.0 * 1.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoints_reduce_od_recovery_cost() {
        let no_ck = assessment(4.0, 0.0, 0.05, 4.0);
        let with_ck = assessment(4.0, 0.0, 0.05, 1.0);
        let e_no = evaluate(&[&no_ck], &od());
        let e_ck = evaluate(&[&with_ck], &od());
        assert!(
            e_ck.expected_od_cost < e_no.expected_od_cost,
            "ck {} vs no {}",
            e_ck.expected_od_cost,
            e_no.expected_od_cost
        );
    }

    #[test]
    fn replication_reduces_all_fail_probability() {
        let a = assessment(3.0, 0.6, 0.1, 3.0);
        let e1 = evaluate(&[&a], &od());
        let e2 = evaluate(&[&a, &a], &od());
        let e3 = evaluate(&[&a, &a, &a], &od());
        assert!((e1.p_all_fail - 0.4).abs() < 1e-12);
        assert!((e2.p_all_fail - 0.16).abs() < 1e-12);
        assert!((e3.p_all_fail - 0.064).abs() < 1e-12);
    }

    #[test]
    fn faster_replica_sets_completion_time() {
        let slow = assessment(5.0, 1.0, 0.01, 5.0);
        let fast = assessment(2.0, 1.0, 0.01, 2.0);
        let e = evaluate(&[&slow, &fast], &od());
        // Both always survive; the fast one finishes at 2.0 and the slow
        // one is killed then.
        assert!((e.expected_time - 2.0).abs() < 1e-9);
        // Both groups charged 2 hours.
        assert!((e.expected_spot_cost - 2.0 * (0.01 * 4.0) * 2.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_matches_brute_force_enumeration() {
        // Cross-check the 2^K decomposition against the naive O(T^K) sum
        // for K = 2 with small horizons.
        let a = assessment(2.0, 0.5, 0.1, 2.0);
        let b = assessment(3.0, 0.25, 0.2, 3.0);
        let fast = evaluate(&[&a, &b], &od());

        // Brute force: states per group = buckets + "complete".
        let states = |g: &GroupAssessment| -> Vec<(f64, Option<usize>)> {
            let mut v: Vec<(f64, Option<usize>)> = g
                .fail_buckets
                .iter()
                .enumerate()
                .map(|(t, p)| (*p, Some(t)))
                .collect();
            v.push((g.survival, None));
            v
        };
        let odo = od();
        let mut cost = 0.0;
        let mut time = 0.0;
        for (pa, sa) in states(&a) {
            for (pb, sb) in states(&b) {
                let p = pa * pb;
                if p == 0.0 {
                    continue;
                }
                let groups = [(&a, sa), (&b, sb)];
                let completions: Vec<Hours> = groups
                    .iter()
                    .filter(|(_, s)| s.is_none())
                    .map(|(g, _)| g.completion_wall())
                    .collect();
                if let Some(w) = completions.iter().cloned().reduce(f64::min) {
                    let mut c = 0.0;
                    for (g, s) in groups {
                        // 2014 billing: provider kills floor, user
                        // terminations (winner cutoff / completion) ceil.
                        let h = match s {
                            None => w.ceil(),
                            Some(t) => {
                                if g.fail_wall(t) <= w {
                                    g.fail_wall(t).floor()
                                } else {
                                    w.ceil()
                                }
                            }
                        };
                        c += g.hourly_cost() * h;
                    }
                    cost += p * c;
                    time += p * w;
                } else {
                    let mut c = 0.0;
                    let mut max_wall: f64 = 0.0;
                    let mut min_ratio: f64 = 1.0;
                    for (g, s) in groups {
                        let t = s.unwrap();
                        c += g.hourly_cost() * g.fail_wall(t).floor();
                        max_wall = max_wall.max(g.fail_wall(t));
                        min_ratio = min_ratio.min(g.fail_ratio(t));
                    }
                    let od_h = odo.exec_hours * min_ratio + odo.recovery_hours;
                    c += od_h.ceil() * odo.unit_price * odo.instances as f64;
                    cost += p * c;
                    time += p * (max_wall + od_h);
                }
            }
        }
        assert!(
            (fast.expected_cost - cost).abs() / cost < 1e-9,
            "fast {} vs brute {}",
            fast.expected_cost,
            cost
        );
        assert!(
            (fast.expected_time - time).abs() / time < 1e-9,
            "fast {} vs brute {}",
            fast.expected_time,
            time
        );
    }

    #[test]
    fn meets_deadline_check() {
        let a = assessment(3.0, 1.0, 0.1, 3.0);
        let e = evaluate(&[&a], &od());
        assert!(e.meets(3.0));
        assert!(!e.meets(2.9));
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn too_many_groups_rejected() {
        let a = assessment(1.0, 0.5, 0.1, 1.0);
        let groups: Vec<&GroupAssessment> = std::iter::repeat_n(&a, 17).collect();
        evaluate(&groups, &od());
    }

    #[test]
    fn mass_conservation_renormalizes_dropped_tail() {
        // An estimator that truncated its horizon: survival 0.3 but the
        // buckets only carry 0.5 of the remaining 0.7 mass.
        let g = group(3.0);
        let a = GroupAssessment::from_parts(
            g,
            GroupDecision {
                bid: 1.0,
                ckpt_interval: 3.0,
            },
            0.1,
            0.3,
            vec![0.3, 0.15, 0.05], // Σ = 0.5, should be 0.7
            0.0,
        );
        let total: f64 = a.survival + a.fail_buckets.iter().sum::<f64>();
        assert!((total - 1.0).abs() < 1e-12, "mass {total}");
        // Proportional: the bucket shape is preserved.
        assert!((a.fail_buckets[0] / a.fail_buckets[1] - 2.0).abs() < 1e-9);
        assert!((a.fail_buckets[0] - 0.3 * 0.7 / 0.5).abs() < 1e-12);
    }

    #[test]
    fn mass_conservation_leaves_exact_distributions_alone() {
        let a = assessment(3.0, 0.4, 0.1, 3.0);
        let total: f64 = a.survival + a.fail_buckets.iter().sum::<f64>();
        assert!((total - 1.0).abs() < 1e-12);
        // Uniform mass stays uniform.
        assert!((a.fail_buckets[0] - a.fail_buckets[1]).abs() < 1e-15);
    }

    #[test]
    fn precomputed_tables_match_direct_formulas() {
        // Table lookups must agree with the definitional quantities.
        let a = assessment(4.0, 0.2, 0.1, 1.0);
        let w = a.group.completion_wall_hours(a.decision.ckpt_interval);
        for t in 0..a.fail_buckets.len() {
            let tau = t as f64 + 0.5;
            let productive = (tau * a.group.exec_hours / w).min(a.group.exec_hours);
            let run_wall = a
                .group
                .wall_at_failure(productive, a.decision.ckpt_interval)
                .min(w);
            assert!((a.fail_wall(t) - (a.launch_delay + run_wall)).abs() < 1e-12);
            assert!((a.billed_floor_at_bucket[t] - run_wall.floor()).abs() < 1e-12);
            let ratio = a
                .group
                .remaining_ratio(productive, a.decision.ckpt_interval);
            assert!((a.fail_ratio(t) - ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn eval_equivalent_ignores_only_the_bid() {
        let a = assessment(3.0, 0.6, 0.1, 3.0);
        let mut b = a.clone();
        b.decision.bid = 2.0 * a.decision.bid;
        assert!(a.eval_equivalent(&b), "bid must not break equivalence");
        // Any evaluator-visible difference breaks it.
        let mut c = a.clone();
        c.survival += 1e-12;
        assert!(!a.eval_equivalent(&c));
        let mut d = a.clone();
        d.launch_delay = 0.25;
        assert!(!a.eval_equivalent(&d));
    }

    #[test]
    fn cost_lower_bound_is_admissible() {
        // Σ_i lb_i(w_min) ≤ E[Cost] for every candidate, where w_min is
        // the smallest completion wall among the candidate's groups.
        let pool = [
            assessment(2.0, 0.5, 0.1, 2.0),
            assessment(3.0, 0.25, 0.2, 3.0),
            assessment(4.0, 0.9, 0.05, 1.0),
            assessment(1.0, 0.0, 0.3, 1.0),
        ];
        let odo = od();
        for i in 0..pool.len() {
            for j in 0..pool.len() {
                let refs = [&pool[i], &pool[j]];
                let w_min = refs
                    .iter()
                    .map(|g| g.completion_wall())
                    .fold(f64::INFINITY, f64::min);
                let e = evaluate(&refs, &odo);
                let lb: f64 = refs.iter().map(|g| g.cost_lower_bound(w_min)).sum();
                assert!(
                    lb <= e.expected_cost + 1e-9,
                    "lb {lb} > cost {} for ({i},{j})",
                    e.expected_cost
                );
            }
        }
    }

    #[test]
    fn cost_lower_bound_is_monotone_in_w_min() {
        // A tighter (larger) completion floor can only raise the bound —
        // the property the branch-and-bound sort relies on.
        let a = assessment(3.0, 0.6, 0.1, 3.0);
        let mut prev = 0.0;
        for w in [0.5, 1.0, 2.0, 3.0, 5.0] {
            let lb = a.cost_lower_bound(w);
            assert!(lb >= prev - 1e-12, "lb regressed at w_min={w}");
            prev = lb;
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_evaluation() {
        let a = assessment(2.0, 0.5, 0.1, 2.0);
        let b = assessment(3.0, 0.25, 0.2, 3.0);
        let mut scratch = EvalScratch::new();
        // Reusing one scratch across differently-shaped evaluations must
        // not leak state between calls.
        let e1 = evaluate_with_scratch(&[&a, &b], &od(), &mut scratch);
        let e2 = evaluate_with_scratch(&[&b], &od(), &mut scratch);
        let e3 = evaluate_with_scratch(&[&a, &b], &od(), &mut scratch);
        assert_eq!(e1, e3);
        assert_eq!(e2, evaluate(&[&b], &od()));
    }

    /// Compare every field of two evaluations bit-for-bit (stricter than
    /// `==`, which would accept `-0.0 == 0.0`).
    fn assert_bits_eq(a: &Evaluation, b: &Evaluation, label: &str) {
        for (x, y, f) in [
            (a.expected_cost, b.expected_cost, "expected_cost"),
            (a.expected_time, b.expected_time, "expected_time"),
            (a.p_all_fail, b.p_all_fail, "p_all_fail"),
            (
                a.expected_spot_cost,
                b.expected_spot_cost,
                "expected_spot_cost",
            ),
            (a.expected_od_cost, b.expected_od_cost, "expected_od_cost"),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: {f} differs: {x} vs {y}");
        }
    }

    #[test]
    fn kernel_modes_are_bit_identical() {
        // The caps memo and the SoA packing must reproduce the scalar
        // kernel bit-for-bit on candidates mixing certain survivors,
        // certain failures, launch delays, and duplicated walls (equal
        // completion walls exercise the w*-index tie).
        let mut delayed = assessment(2.0, 0.5, 0.15, 1.0);
        delayed.launch_delay = 0.75;
        let pool = [
            assessment(2.0, 0.5, 0.1, 2.0),
            assessment(3.0, 0.25, 0.2, 3.0),
            assessment(3.0, 0.25, 0.2, 3.0), // duplicate wall of the above
            assessment(4.0, 0.9, 0.05, 1.0),
            assessment(1.0, 0.0, 0.3, 1.0),  // certain failure
            assessment(5.0, 1.0, 0.02, 5.0), // certain survivor
            delayed,
        ];
        let odo = od();
        let mut scalar = EvalScratch::with_mode(KernelMode::Scalar);
        let mut memo = EvalScratch::with_mode(KernelMode::CapsMemo);
        let mut soa = EvalScratch::with_mode(KernelMode::CapsSoa);
        assert_eq!(EvalScratch::new().mode(), KernelMode::CapsSoa);
        // Every subset of the pool up to k = 5, reusing the scratches.
        for mask in 1u32..(1 << pool.len()) {
            if mask.count_ones() > 5 {
                continue;
            }
            let refs: Vec<&GroupAssessment> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| a)
                .collect();
            let base = evaluate_with_scratch(&refs, &odo, &mut scalar);
            let label = format!("subset {mask:#b}");
            assert_bits_eq(
                &base,
                &evaluate_with_scratch(&refs, &odo, &mut memo),
                &label,
            );
            assert_bits_eq(&base, &evaluate_with_scratch(&refs, &odo, &mut soa), &label);
        }
    }
}
