//! The adaptive update-maintenance algorithm — Section 4.3, Algorithm 1.
//!
//! Spot price distributions drift, so a plan computed once from stale
//! history degrades (the paper's w/o-MT ablation). Algorithm 1 splits the
//! execution into optimization windows of size `T_m`: at each window
//! boundary it re-estimates the failure-rate functions from the *previous*
//! window's prices, re-solves the two-level optimization for the residual
//! application, and — when the deadline can no longer be met — abandons
//! spot and finishes on demand.
//!
//! This module holds the planning half (what to do at a window boundary);
//! the execution half (tracking realized progress against real traces)
//! lives in the `replay` crate, which feeds realized progress back in as
//! `remaining_fraction`.

use crate::cost::evaluate_plan;
use crate::model::Plan;
use crate::problem::Problem;
use crate::twolevel::{OptimizedPlan, OptimizerConfig, TwoLevelOptimizer};
use crate::view::MarketView;
use crate::Hours;
use ec2_market::market::CircleGroupId;
use serde::{Deserialize, Serialize};
use sompi_obs::{emit, Event, NullRecorder, Recorder, TraceLevel};

/// Adaptive algorithm knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// `T_m`: optimization window size, hours (paper default ≈ 15).
    pub window_hours: Hours,
    /// History length used for each re-estimation, hours (the paper uses
    /// "the previous two days" offline and the previous window online).
    pub history_hours: Hours,
    /// The inner optimizer's configuration.
    pub optimizer: OptimizerConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            window_hours: 15.0,
            history_hours: 48.0,
            optimizer: OptimizerConfig::default(),
        }
    }
}

/// What Algorithm 1 decides at a window boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WindowDecision {
    /// Keep executing on spot with this plan for the next window.
    Hybrid(Plan),
    /// The deadline is at risk: finish the residual work on demand
    /// (Algorithm 1 lines 7–9).
    FinishOnDemand(Plan),
}

impl WindowDecision {
    /// The plan to execute either way.
    pub fn plan(&self) -> &Plan {
        match self {
            WindowDecision::Hybrid(p) | WindowDecision::FinishOnDemand(p) => p,
        }
    }
}

/// Stateless planner for Algorithm 1's per-window decision.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePlanner {
    /// Configuration.
    pub config: AdaptiveConfig,
}

impl AdaptivePlanner {
    /// Create a planner.
    pub fn new(config: AdaptiveConfig) -> Self {
        Self { config }
    }

    /// Decide the next window's plan.
    ///
    /// * `base` — the original problem (full application),
    /// * `remaining_fraction` — residual work in `(0, 1]`,
    /// * `elapsed` — wall hours consumed so far,
    /// * `view` — estimators over the *latest* history window.
    pub fn plan_window(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
    ) -> WindowDecision {
        self.plan_window_recorded(base, remaining_fraction, elapsed, view, 0, &NullRecorder)
    }

    /// [`AdaptivePlanner::plan_window`] with a [`PlanCache`]: when the
    /// view's [`ViewFingerprint`] matches the cached one within the
    /// cache's tolerance, the Algorithm-1 line-7 guard passes, and the
    /// cached plan — rescaled to the current residual — is still feasible
    /// under the *fresh* estimators, the re-optimization is skipped
    /// entirely and the window emits `WindowReplanned { reused: true,
    /// fingerprint_hit: true }`. Returns the decision plus whether the
    /// cache satisfied it. Misses fall through to
    /// [`AdaptivePlanner::plan_window_recorded`] and refresh the cache.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_window_cached(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        window: u32,
        cache: &mut PlanCache,
        recorder: &dyn Recorder,
    ) -> (WindowDecision, bool) {
        let fingerprint = ViewFingerprint::digest(view);
        let leftover = base.deadline - elapsed;
        if let Some(plan) = cache.recall(&fingerprint, remaining_fraction) {
            // The market looks unchanged. Reuse only if the decision
            // would still be Hybrid: the fastest on-demand bail-out check
            // passes and the rescaled incumbent remains feasible when
            // re-evaluated against the latest estimators.
            let residual = base.residual(remaining_fraction, leftover.max(0.0));
            let fastest = residual.baseline();
            if fastest.exec_hours + fastest.recovery_hours <= leftover {
                if let Some(eval) = evaluate_plan(&plan, view) {
                    let feasible = eval.meets(leftover)
                        && self
                            .config
                            .optimizer
                            .min_spot_success
                            .map(|q| eval.p_all_fail <= 1.0 - q)
                            .unwrap_or(true);
                    if feasible {
                        emit(recorder, TraceLevel::Summary, || Event::WindowReplanned {
                            window,
                            elapsed_hours: elapsed,
                            remaining_fraction,
                            reused: true,
                            decision: "hybrid".to_string(),
                            groups: plan.groups.len() as u32,
                            fingerprint_hit: true,
                        });
                        return (WindowDecision::Hybrid(plan), true);
                    }
                }
            }
        }
        let decision =
            self.plan_window_recorded(base, remaining_fraction, elapsed, view, window, recorder);
        cache.store(fingerprint, &decision, remaining_fraction);
        (decision, false)
    }

    /// [`AdaptivePlanner::plan_window`], emitting trace events: the inner
    /// optimizer's search events (when it runs) plus one `WindowReplanned`
    /// with `reused: false` describing the decision. `window` is the
    /// 0-based index of the window being planned; it only labels the
    /// event.
    pub fn plan_window_recorded(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        window: u32,
        recorder: &dyn Recorder,
    ) -> WindowDecision {
        let decision = self.decide(base, remaining_fraction, elapsed, view, recorder);
        emit(recorder, TraceLevel::Summary, || Event::WindowReplanned {
            window,
            elapsed_hours: elapsed,
            remaining_fraction,
            reused: false,
            decision: match &decision {
                WindowDecision::Hybrid(_) => "hybrid".to_string(),
                WindowDecision::FinishOnDemand(_) => "finish-on-demand".to_string(),
            },
            groups: decision.plan().groups.len() as u32,
            fingerprint_hit: false,
        });
        decision
    }

    fn decide(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        recorder: &dyn Recorder,
    ) -> WindowDecision {
        let leftover = base.deadline - elapsed;
        let residual = base.residual(remaining_fraction, leftover.max(0.0));

        // Algorithm 1 line 7: if even the fastest on-demand execution of
        // the residual cannot meet the leftover deadline budget, bail out
        // to on-demand immediately (nothing better exists).
        let fastest = residual.baseline();
        if fastest.exec_hours + fastest.recovery_hours > leftover {
            return WindowDecision::FinishOnDemand(Plan::on_demand_only(*fastest));
        }

        // Otherwise re-optimize the residual against the fresh view. The
        // optimizer's own `E[Time] ≤ leftover` constraint (with graceful
        // on-demand fallback when nothing feasible exists) is the paper's
        // deadline control; when it returns a pure on-demand plan, treat
        // that as the Algorithm-1 bail-out.
        let OptimizedPlan { plan, .. } =
            TwoLevelOptimizer::new(&residual, view, self.config.optimizer)
                .optimize_recorded(recorder);
        if plan.groups.is_empty() {
            return WindowDecision::FinishOnDemand(plan);
        }
        WindowDecision::Hybrid(plan)
    }
}

/// Hour horizon of the fingerprint's failure-rate probe. Fixed so two
/// views are digested identically regardless of the residual problem.
const FINGERPRINT_PROBE_HORIZON: usize = 24;

/// Compact digest of the market state a [`MarketView`] exposes: per
/// candidate circle group, the price-range statistics and a failure-rate
/// probe that the two-level optimizer's inputs are derived from. Two
/// views with matching fingerprints (within a relative tolerance) lead
/// the optimizer to near-identical assessments, which is what makes
/// skipping a window's re-optimization safe in practice — the reuse path
/// additionally re-checks the cached plan's feasibility against the
/// fresh view before committing (see
/// [`AdaptivePlanner::plan_window_cached`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewFingerprint {
    /// Per group: `[min price, mean price, max bid, launch delay at the
    /// probe bid, survival at the probe bid]`. Groups a view cannot
    /// launch (non-finite or non-positive max bid) digest as zeros.
    entries: Vec<(CircleGroupId, [f64; 5])>,
}

impl ViewFingerprint {
    /// Digest a view. Cost: one failure-rate estimation per group (at a
    /// single probe bid), versus `bid_levels` of them per group for a
    /// full re-optimization.
    pub fn digest(view: &MarketView) -> Self {
        let entries = view
            .groups()
            .map(|id| {
                let max_bid = view.max_bid(id);
                if !(max_bid.is_finite() && max_bid > 0.0) {
                    return (id, [0.0; 5]);
                }
                // Probe at half the historical maximum: the middle of the
                // log₂ grid, where failure rates move fastest when the
                // price distribution drifts.
                let probe = max_bid * 0.5;
                let f = view.failure_fn(id, probe, FINGERPRINT_PROBE_HORIZON);
                (
                    id,
                    [
                        view.min_price(id),
                        view.mean_price(id),
                        max_bid,
                        view.launch_delay(id, probe),
                        f.survival(),
                    ],
                )
            })
            .collect();
        Self { entries }
    }

    /// Whether every component matches within the relative tolerance
    /// `|a − b| ≤ tol · max(|a|, |b|, 1e-9)`. Group sets must be
    /// identical.
    pub fn matches(&self, other: &Self, tolerance: f64) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|((ia, a), (ib, b))| {
                    ia == ib
                        && a.iter().zip(b).all(|(x, y)| {
                            (x - y).abs() <= tolerance * x.abs().max(y.abs()).max(1e-9)
                        })
                })
    }
}

/// One-entry cache for [`AdaptivePlanner::plan_window_cached`]: the last
/// *hybrid* window decision, keyed by the [`ViewFingerprint`] it was
/// planned under and the residual fraction it was planned for. The cached
/// plan is rescaled from its original fraction on every recall, so
/// repeated reuse does not compound scaling drift.
#[derive(Debug, Clone)]
pub struct PlanCache {
    tolerance: f64,
    entry: Option<CacheEntry>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    fingerprint: ViewFingerprint,
    plan: Plan,
    /// Residual work fraction the cached plan was optimized for.
    made_for: f64,
}

impl PlanCache {
    /// Relative fingerprint tolerance used by the adaptive runner: 2%
    /// drift in any digest component forces a real re-optimization.
    pub const DEFAULT_TOLERANCE: f64 = 0.02;

    /// Create an empty cache with the given relative tolerance.
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self {
            tolerance,
            entry: None,
        }
    }

    /// The cached plan rescaled to `remaining_fraction`, if the
    /// fingerprint matches within tolerance. Feasibility is the caller's
    /// check — the cache only answers "has the market moved?".
    fn recall(&self, fingerprint: &ViewFingerprint, remaining_fraction: f64) -> Option<Plan> {
        let e = self.entry.as_ref()?;
        if !e.fingerprint.matches(fingerprint, self.tolerance) {
            return None;
        }
        if !(remaining_fraction > 0.0 && e.made_for > 0.0) {
            return None;
        }
        Some(e.plan.scaled((remaining_fraction / e.made_for).min(1.0)))
    }

    /// Remember a freshly planned decision. Only hybrid plans are worth
    /// caching; a finish-on-demand decision clears the cache (subsequent
    /// windows run on demand and never consult it).
    fn store(&mut self, fingerprint: ViewFingerprint, decision: &WindowDecision, made_for: f64) {
        match decision {
            WindowDecision::Hybrid(plan) => {
                self.entry = Some(CacheEntry {
                    fingerprint,
                    plan: plan.clone(),
                    made_for,
                });
            }
            WindowDecision::FinishOnDemand(_) => self.entry = None,
        }
    }

    /// Drop the cached entry (e.g. after realized progress diverges from
    /// the plan — a group failure invalidates the incumbent regardless of
    /// what prices did).
    pub fn clear(&mut self) {
        self.entry = None;
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_TOLERANCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    fn setup() -> (SpotMarket, Problem) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 31), 300.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(&market, &profile, 4.0, Some(&types), S3Store::paper_2014());
        (market, problem)
    }

    fn planner() -> AdaptivePlanner {
        AdaptivePlanner::new(AdaptiveConfig {
            window_hours: 1.0,
            history_hours: 48.0,
            optimizer: OptimizerConfig {
                kappa: 2,
                bid_levels: 3,
                ..Default::default()
            },
        })
    }

    #[test]
    fn plenty_of_time_stays_hybrid() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let d = planner().plan_window(&problem, 1.0, 0.0, &view);
        assert!(matches!(d, WindowDecision::Hybrid(_)));
        assert!(!d.plan().groups.is_empty());
    }

    #[test]
    fn exhausted_deadline_finishes_on_demand() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        // 95% of the deadline gone, whole app remaining.
        let d = planner().plan_window(&problem, 1.0, problem.deadline * 0.95, &view);
        assert!(matches!(d, WindowDecision::FinishOnDemand(_)));
        assert!(d.plan().groups.is_empty());
    }

    #[test]
    fn residual_shrinks_with_progress() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let d = planner().plan_window(&problem, 0.25, 0.5, &view);
        // With 25% of the work left, the chosen groups' exec times must be
        // a quarter of the originals.
        if let WindowDecision::Hybrid(plan) = d {
            for (g, _) in &plan.groups {
                let orig = problem.candidate(g.id).unwrap();
                assert!((g.exec_hours - orig.exec_hours * 0.25).abs() < 1e-9);
            }
        } else {
            panic!("expected hybrid decision");
        }
    }

    #[test]
    fn fingerprint_matches_itself_and_tracks_market_drift() {
        let (market, _) = setup();
        let early = MarketView::from_market(&market, 0.0, 48.0);
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let fp_early = ViewFingerprint::digest(&early);
        let fp_early_again = ViewFingerprint::digest(&early);
        assert!(fp_early.matches(&fp_early_again, 0.0), "digest not stable");
        // 200 h apart on a generated market, at least one group's price
        // statistics must have moved beyond 2%.
        let fp_late = ViewFingerprint::digest(&late);
        assert!(
            !fp_early.matches(&fp_late, PlanCache::DEFAULT_TOLERANCE),
            "distant windows should not fingerprint-match"
        );
    }

    #[test]
    fn cached_window_reuses_only_when_view_is_static() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let p = planner();
        let mut cache = PlanCache::default();
        let (d1, hit1) =
            p.plan_window_cached(&problem, 1.0, 0.0, &view, 0, &mut cache, &NullRecorder);
        assert!(!hit1, "cold cache cannot hit");
        assert!(matches!(d1, WindowDecision::Hybrid(_)));

        // Same view, slightly less work left: must hit, and the reused
        // plan must be the incumbent rescaled — not a fresh search.
        let (d2, hit2) =
            p.plan_window_cached(&problem, 0.8, 0.1, &view, 1, &mut cache, &NullRecorder);
        assert!(hit2, "static view should fingerprint-hit");
        let (p1, p2) = (d1.plan(), d2.plan());
        assert_eq!(p1.groups.len(), p2.groups.len());
        for ((g1, dec1), (g2, dec2)) in p1.groups.iter().zip(&p2.groups) {
            assert_eq!(g1.id, g2.id);
            assert_eq!(dec1.bid, dec2.bid);
            assert!((g2.exec_hours - g1.exec_hours * 0.8).abs() < 1e-9);
        }

        // A distant history window must miss and re-plan.
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let (_, hit3) =
            p.plan_window_cached(&problem, 0.6, 0.2, &late, 2, &mut cache, &NullRecorder);
        assert!(!hit3, "shifted market must force a re-optimization");
    }

    #[test]
    fn cached_window_still_bails_out_on_hopeless_deadlines() {
        // A fingerprint hit must not override Algorithm 1 line 7: with
        // the deadline nearly exhausted the decision has to flip to
        // finish-on-demand even though the market never moved.
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let p = planner();
        let mut cache = PlanCache::default();
        let (_, hit1) =
            p.plan_window_cached(&problem, 1.0, 0.0, &view, 0, &mut cache, &NullRecorder);
        assert!(!hit1);
        let (d, hit) = p.plan_window_cached(
            &problem,
            1.0,
            problem.deadline * 0.95,
            &view,
            1,
            &mut cache,
            &NullRecorder,
        );
        assert!(!hit, "hopeless deadline must not reuse");
        assert!(matches!(d, WindowDecision::FinishOnDemand(_)));
    }

    #[test]
    fn later_views_change_plans_when_market_shifts() {
        // Re-planning with a different history window is the whole point of
        // update maintenance; verify the planner actually consumes the view.
        let (market, problem) = setup();
        let early = MarketView::from_market(&market, 0.0, 48.0);
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let p = planner();
        let d1 = p.plan_window(&problem, 1.0, 0.0, &early);
        let d2 = p.plan_window(&problem, 1.0, 0.0, &late);
        // Plans may coincide on calm markets; at minimum both must be
        // valid hybrid decisions with launchable bids.
        for d in [&d1, &d2] {
            for (g, dec) in &d.plan().groups {
                assert!(dec.bid > 0.0, "group {} has nonpositive bid", g.id);
            }
        }
    }
}
