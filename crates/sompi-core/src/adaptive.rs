//! The adaptive update-maintenance algorithm — Section 4.3, Algorithm 1.
//!
//! Spot price distributions drift, so a plan computed once from stale
//! history degrades (the paper's w/o-MT ablation). Algorithm 1 splits the
//! execution into optimization windows of size `T_m`: at each window
//! boundary it re-estimates the failure-rate functions from the *previous*
//! window's prices, re-solves the two-level optimization for the residual
//! application, and — when the deadline can no longer be met — abandons
//! spot and finishes on demand.
//!
//! This module holds the planning half (what to do at a window boundary);
//! the execution half (tracking realized progress against real traces)
//! lives in the `replay` crate, which feeds realized progress back in as
//! `remaining_fraction`.

use crate::baselines::Sompi;
use crate::cost::evaluate_plan;
use crate::error::SompiError;
use crate::model::Plan;
use crate::policy::Policy;
use crate::pool::SearchPool;
use crate::problem::Problem;
use crate::twolevel::OptimizerConfig;
use crate::view::MarketView;
use crate::warmstart::WarmStart;
use crate::Hours;
use ec2_market::fault::FaultInjector;
use ec2_market::market::CircleGroupId;
use serde::{Deserialize, Serialize};
use sompi_obs::{emit, Event, NullRecorder, Recorder, TraceLevel};

/// Adaptive algorithm knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// `T_m`: optimization window size, hours (paper default ≈ 15).
    pub window_hours: Hours,
    /// History length used for each re-estimation, hours (the paper uses
    /// "the previous two days" offline and the previous window online).
    pub history_hours: Hours,
    /// The inner optimizer's configuration.
    pub optimizer: OptimizerConfig,
    /// Carry the previous window's plan into the next search as an
    /// incumbent seed and hot-first subset order (DESIGN.md §12). Both
    /// layers are exactness-preserving; `false` is the `--no-warmstart`
    /// ablation.
    #[serde(default = "default_true")]
    pub warmstart: bool,
    /// Reuse per-`(group, bid)` failure-count tables across windows,
    /// keyed by a digest of each group's price history. `false` is the
    /// `--no-bucket-reuse` ablation.
    #[serde(default = "default_true")]
    pub bucket_reuse: bool,
}

fn default_true() -> bool {
    true
}

impl AdaptiveConfig {
    /// Start building a config from the defaults. Preferred over growing
    /// positional constructors as knobs accumulate:
    ///
    /// ```
    /// use sompi_core::AdaptiveConfig;
    ///
    /// let cfg = AdaptiveConfig::builder().window_hours(10.0).build();
    /// assert_eq!(cfg.window_hours, 10.0);
    /// assert_eq!(cfg.history_hours, AdaptiveConfig::default().history_hours);
    /// ```
    pub fn builder() -> AdaptiveConfigBuilder {
        AdaptiveConfigBuilder {
            config: Self::default(),
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            window_hours: 15.0,
            history_hours: 48.0,
            optimizer: OptimizerConfig::default(),
            warmstart: true,
            bucket_reuse: true,
        }
    }
}

/// Builder for [`AdaptiveConfig`]; see [`AdaptiveConfig::builder`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfigBuilder {
    config: AdaptiveConfig,
}

impl AdaptiveConfigBuilder {
    /// Set `T_m`, the optimization window size in hours.
    pub fn window_hours(mut self, hours: Hours) -> Self {
        self.config.window_hours = hours;
        self
    }

    /// Set the history length used for each re-estimation, hours.
    pub fn history_hours(mut self, hours: Hours) -> Self {
        self.config.history_hours = hours;
        self
    }

    /// Set the inner optimizer configuration.
    pub fn optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.config.optimizer = optimizer;
        self
    }

    /// Enable/disable the plan carry-over warm start (seed + hot order).
    pub fn warmstart(mut self, on: bool) -> Self {
        self.config.warmstart = on;
        self
    }

    /// Enable/disable cross-window bucket-table reuse.
    pub fn bucket_reuse(mut self, on: bool) -> Self {
        self.config.bucket_reuse = on;
        self
    }

    /// Finish building.
    pub fn build(self) -> AdaptiveConfig {
        self.config
    }
}

/// Everything a window-planning call may consult besides the problem and
/// the market view: the trace recorder, an optional plan-reuse cache, an
/// optional fault injector (for market-feed gaps), and the window index
/// for event labeling. [`PlanContext::default`] is all no-ops, so the
/// simplest call is `planner.plan_window(&p, 1.0, 0.0, &view, &mut
/// PlanContext::default())`.
pub struct PlanContext<'a> {
    /// Trace event sink.
    pub recorder: &'a dyn Recorder,
    /// Plan-reuse cache consulted (and refreshed) when present.
    pub cache: Option<&'a mut PlanCache>,
    /// Fault injector; the planner consults it for market-feed gaps at
    /// this window and prefers the cached plan over a fresh search when
    /// the feed is gapped.
    pub faults: Option<&'a FaultInjector>,
    /// Warm-start state carried across windows; when present, each real
    /// re-optimization seeds its branch-and-bound incumbent, enumerates
    /// hot subsets first, and reuses bucket tables (all
    /// exactness-preserving — see [`WarmStart`]). The
    /// [`AdaptiveConfig::warmstart`]/[`AdaptiveConfig::bucket_reuse`]
    /// toggles are re-applied to the state on every planning call, so
    /// ablation flags win over however the state was constructed.
    pub warm: Option<&'a mut WarmStart>,
    /// 0-based index of the window being planned (labels events and keys
    /// feed-gap injection).
    pub window: u32,
    /// Persistent worker pool for the parallel subset search. When
    /// present (and the resolved thread count is > 1), each real
    /// re-optimization dispatches its chunk jobs onto these resident
    /// threads instead of spawning a fresh scoped-thread team — results
    /// are bit-identical either way (see [`SearchPool`]); only the
    /// per-window spawn/join tax disappears.
    pub pool: Option<&'a SearchPool>,
}

impl Default for PlanContext<'_> {
    fn default() -> Self {
        Self {
            recorder: &NullRecorder,
            cache: None,
            faults: None,
            warm: None,
            window: 0,
            pool: None,
        }
    }
}

impl<'a> PlanContext<'a> {
    /// All-no-op context (same as [`PlanContext::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record trace events into `recorder`.
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Consult and refresh `cache`.
    pub fn with_cache(mut self, cache: &'a mut PlanCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Consult `faults` for market-feed gaps.
    pub fn with_faults(mut self, faults: &'a FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Thread warm-start state `warm` through this window's search.
    pub fn with_warm(mut self, warm: &'a mut WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Label events (and key feed-gap injection) with window index `w`.
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// Run each window's parallel search on the resident `pool` instead
    /// of spawning scoped threads per re-optimization.
    pub fn with_pool(mut self, pool: &'a SearchPool) -> Self {
        self.pool = Some(pool);
        self
    }
}

/// What [`AdaptivePlanner::plan_window`] produced and how it got there.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedWindow {
    /// The window's decision.
    pub decision: WindowDecision,
    /// True when the decision came from the plan cache instead of a fresh
    /// search (fingerprint hit, or feed-gap fallback to the last plan).
    pub reused_from_cache: bool,
    /// True when the reuse was justified by a matching market
    /// fingerprint (false for feed-gap fallbacks).
    pub fingerprint_hit: bool,
}

/// What Algorithm 1 decides at a window boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WindowDecision {
    /// Keep executing on spot with this plan for the next window.
    Hybrid(Plan),
    /// The deadline is at risk: finish the residual work on demand
    /// (Algorithm 1 lines 7–9).
    FinishOnDemand(Plan),
}

impl WindowDecision {
    /// The plan to execute either way.
    pub fn plan(&self) -> &Plan {
        match self {
            WindowDecision::Hybrid(p) | WindowDecision::FinishOnDemand(p) => p,
        }
    }
}

/// Stateless planner for Algorithm 1's per-window decision.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePlanner {
    /// Configuration.
    pub config: AdaptiveConfig,
}

impl AdaptivePlanner {
    /// Create a planner.
    pub fn new(config: AdaptiveConfig) -> Self {
        Self { config }
    }

    /// Decide the next window's plan — the single planning entry point.
    ///
    /// * `base` — the original problem (full application),
    /// * `remaining_fraction` — residual work in `(0, 1]`,
    /// * `elapsed` — wall hours consumed so far,
    /// * `view` — estimators over the *latest* history window,
    /// * `ctx` — recorder / plan cache / fault injector / window index,
    ///   all optional (see [`PlanContext`]).
    ///
    /// With a cache in the context: when the view's [`ViewFingerprint`]
    /// matches the cached one within tolerance, the Algorithm-1 line-7
    /// guard passes, and the cached plan — rescaled to the current
    /// residual — is still feasible under the *fresh* estimators, the
    /// re-optimization is skipped and the window emits `WindowReplanned
    /// { reused: true, fingerprint_hit: true }`. With a fault injector
    /// reporting a market-feed gap at this window, the planner degrades
    /// gracefully instead of trusting a stale view: it falls back to the
    /// cached plan *without* requiring a fingerprint match (emitting
    /// `DegradedMode { mode: "stale-plan" }`), still subject to the
    /// deadline guard and feasibility re-check.
    ///
    /// Errors with [`SompiError::InvalidFraction`] when
    /// `remaining_fraction` is outside `(0, 1]` and
    /// [`SompiError::NoOnDemandOption`] when the problem offers no
    /// on-demand option to guard the deadline with.
    pub fn plan_window(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<PlannedWindow, SompiError> {
        let policy = Sompi {
            config: self.config.optimizer,
        };
        self.plan_window_with(&policy, base, remaining_fraction, elapsed, view, ctx)
    }

    /// [`AdaptivePlanner::plan_window`] with the re-optimization routed
    /// through an arbitrary [`Policy`] instead of the SOMPI optimizer.
    /// The cache-recall, feed-gap, and Algorithm-1 deadline-guard
    /// machinery is policy-agnostic and identical; only the "re-optimize
    /// the residual" step calls `policy.plan(&residual, view, …)`. With
    /// `policy = Sompi { config }` this is [`AdaptivePlanner::plan_window`]
    /// bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_window_with(
        &self,
        policy: &dyn Policy,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        ctx: &mut PlanContext<'_>,
    ) -> Result<PlannedWindow, SompiError> {
        if !(remaining_fraction > 0.0 && remaining_fraction <= 1.0) {
            return Err(SompiError::InvalidFraction {
                fraction: remaining_fraction,
            });
        }
        let leftover = base.deadline - elapsed;
        let gap = ctx
            .faults
            .map(|f| f.feed_gap_at(ctx.window))
            .unwrap_or(false);

        if let Some(cache) = ctx.cache.as_deref_mut() {
            // On a feed gap the fresh view is suspect, so the last valid
            // plan is preferred over re-optimizing against stale data; on
            // a healthy feed only an unchanged market fingerprint
            // justifies reuse.
            let recalled = if gap {
                cache.recall_latest(remaining_fraction)
            } else {
                cache.recall(&ViewFingerprint::digest(view), remaining_fraction)
            };
            if let Some(plan) = recalled {
                // Reuse only if the decision would still be Hybrid: the
                // fastest on-demand bail-out check passes and the rescaled
                // incumbent remains feasible when re-evaluated against the
                // latest estimators.
                let residual = base.try_residual(remaining_fraction, leftover.max(0.0))?;
                let fastest = residual.try_baseline()?;
                if fastest.exec_hours + fastest.recovery_hours <= leftover {
                    if let Some(eval) = evaluate_plan(&plan, view)? {
                        let feasible = eval.meets(leftover)
                            && self
                                .config
                                .optimizer
                                .min_spot_success
                                .map(|q| eval.p_all_fail <= 1.0 - q)
                                .unwrap_or(true);
                        if feasible {
                            let window = ctx.window;
                            if gap {
                                emit(ctx.recorder, TraceLevel::Summary, || Event::DegradedMode {
                                    mode: "stale-plan".to_string(),
                                    group: None,
                                    at_hours: elapsed,
                                    reason: "feed-gap".to_string(),
                                });
                            }
                            emit(ctx.recorder, TraceLevel::Summary, || {
                                Event::WindowReplanned {
                                    window,
                                    elapsed_hours: elapsed,
                                    remaining_fraction,
                                    reused: true,
                                    decision: "hybrid".to_string(),
                                    groups: plan.groups.len() as u32,
                                    fingerprint_hit: !gap,
                                }
                            });
                            return Ok(PlannedWindow {
                                decision: WindowDecision::Hybrid(plan),
                                reused_from_cache: true,
                                fingerprint_hit: !gap,
                            });
                        }
                    }
                }
            }
        }

        let decision = self.decide(
            policy,
            base,
            remaining_fraction,
            elapsed,
            view,
            ctx.recorder,
            ctx.warm.as_deref_mut(),
            ctx.pool,
        )?;
        let window = ctx.window;
        emit(ctx.recorder, TraceLevel::Summary, || {
            Event::WindowReplanned {
                window,
                elapsed_hours: elapsed,
                remaining_fraction,
                reused: false,
                decision: match &decision {
                    WindowDecision::Hybrid(_) => "hybrid".to_string(),
                    WindowDecision::FinishOnDemand(_) => "finish-on-demand".to_string(),
                },
                groups: decision.plan().groups.len() as u32,
                fingerprint_hit: false,
            }
        });
        if let Some(cache) = ctx.cache.as_deref_mut() {
            cache.store(ViewFingerprint::digest(view), &decision, remaining_fraction);
        }
        Ok(PlannedWindow {
            decision,
            reused_from_cache: false,
            fingerprint_hit: false,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        policy: &dyn Policy,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        recorder: &dyn Recorder,
        warm: Option<&mut WarmStart>,
        pool: Option<&SearchPool>,
    ) -> Result<WindowDecision, SompiError> {
        let leftover = base.deadline - elapsed;
        let residual = base.try_residual(remaining_fraction, leftover.max(0.0))?;

        // Algorithm 1 line 7: if even the fastest on-demand execution of
        // the residual cannot meet the leftover deadline budget, bail out
        // to on-demand immediately (nothing better exists).
        let fastest = residual.try_baseline()?;
        if fastest.exec_hours + fastest.recovery_hours > leftover {
            return Ok(WindowDecision::FinishOnDemand(Plan::on_demand_only(
                *fastest,
            )));
        }

        // The config's ablation toggles are authoritative: re-apply them
        // to the carried state so `--no-warmstart`/`--no-bucket-reuse`
        // bite even when the caller handed over a default WarmStart.
        let mut warm = warm;
        if let Some(w) = warm.as_deref_mut() {
            w.use_plan = self.config.warmstart;
            if !w.use_plan {
                w.prev = None;
            }
            w.use_tables = self.config.bucket_reuse;
            if !w.use_tables {
                w.tables.clear();
            }
        }

        // Otherwise re-plan the residual against the fresh view through
        // the policy. For the default SOMPI policy the optimizer's own
        // `E[Time] ≤ leftover` constraint (with graceful on-demand
        // fallback when nothing feasible exists) is the paper's deadline
        // control; any policy returning a pure on-demand plan is treated
        // as the Algorithm-1 bail-out.
        let mut inner = PlanContext::new().with_recorder(recorder);
        if let Some(w) = warm {
            inner = inner.with_warm(w);
        }
        if let Some(p) = pool {
            inner = inner.with_pool(p);
        }
        let plan = policy.plan(&residual, view, &mut inner)?;
        if plan.groups.is_empty() {
            return Ok(WindowDecision::FinishOnDemand(plan));
        }
        Ok(WindowDecision::Hybrid(plan))
    }
}

/// Hour horizon of the fingerprint's failure-rate probe. Fixed so two
/// views are digested identically regardless of the residual problem.
const FINGERPRINT_PROBE_HORIZON: usize = 24;

/// Compact digest of the market state a [`MarketView`] exposes: per
/// candidate circle group, the price-range statistics and a failure-rate
/// probe that the two-level optimizer's inputs are derived from. Two
/// views with matching fingerprints (within a relative tolerance) lead
/// the optimizer to near-identical assessments, which is what makes
/// skipping a window's re-optimization safe in practice — the reuse path
/// additionally re-checks the cached plan's feasibility against the
/// fresh view before committing (see
/// [`AdaptivePlanner::plan_window`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewFingerprint {
    /// Per group: `[min price, mean price, max bid, launch delay at the
    /// probe bid, survival at the probe bid]`. Groups a view cannot
    /// launch (non-finite or non-positive max bid) digest as zeros.
    entries: Vec<(CircleGroupId, [f64; 5])>,
}

impl ViewFingerprint {
    /// Digest a view. Cost: one failure-rate estimation per group (at a
    /// single probe bid), versus `bid_levels` of them per group for a
    /// full re-optimization. Walks the view's own estimators, so it never
    /// hits an unknown-group lookup.
    pub fn digest(view: &MarketView) -> Self {
        let entries = view
            .estimators()
            .map(|(id, est)| {
                let max_bid = est.max_price();
                if !(max_bid.is_finite() && max_bid > 0.0) {
                    return (id, [0.0; 5]);
                }
                // Probe at half the historical maximum: the middle of the
                // log₂ grid, where failure rates move fastest when the
                // price distribution drifts.
                let probe = max_bid * 0.5;
                let f = est.failure_rate_exact(probe, FINGERPRINT_PROBE_HORIZON);
                let prices = est.expected_spot_price();
                (
                    id,
                    [
                        prices.min_price(),
                        prices.mean_below(f64::INFINITY).unwrap_or(0.0),
                        max_bid,
                        est.expected_launch_delay(probe),
                        f.survival(),
                    ],
                )
            })
            .collect();
        Self { entries }
    }

    /// Stable 64-bit digest of the fingerprint (FNV-1a over group ids
    /// and the raw bits of every component). Two views built from the
    /// same market coordinates digest identically, which is what lets a
    /// multi-tenant cache key exact-duplicate requests without holding
    /// the full fingerprint; it deliberately ignores the tolerance used
    /// by [`ViewFingerprint::matches`] — near-identical views get
    /// different keys and simply miss.
    pub fn digest_u64(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (id, components) in &self.entries {
            eat(id.to_string().as_bytes());
            for c in components {
                eat(&c.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// Whether every component matches within the relative tolerance
    /// `|a − b| ≤ tol · max(|a|, |b|, 1e-9)`. Group sets must be
    /// identical.
    pub fn matches(&self, other: &Self, tolerance: f64) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|((ia, a), (ib, b))| {
                    ia == ib
                        && a.iter().zip(b).all(|(x, y)| {
                            (x - y).abs() <= tolerance * x.abs().max(y.abs()).max(1e-9)
                        })
                })
    }
}

/// One-entry cache for [`AdaptivePlanner::plan_window`]: the last
/// *hybrid* window decision, keyed by the [`ViewFingerprint`] it was
/// planned under and the residual fraction it was planned for. The cached
/// plan is rescaled from its original fraction on every recall, so
/// repeated reuse does not compound scaling drift.
#[derive(Debug, Clone)]
pub struct PlanCache {
    tolerance: f64,
    entry: Option<CacheEntry>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    fingerprint: ViewFingerprint,
    plan: Plan,
    /// Residual work fraction the cached plan was optimized for.
    made_for: f64,
}

impl PlanCache {
    /// Relative fingerprint tolerance used by the adaptive runner: 2%
    /// drift in any digest component forces a real re-optimization.
    pub const DEFAULT_TOLERANCE: f64 = 0.02;

    /// Create an empty cache with the given relative tolerance.
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self {
            tolerance,
            entry: None,
        }
    }

    /// The cached plan rescaled to `remaining_fraction`, if the
    /// fingerprint matches within tolerance. Feasibility is the caller's
    /// check — the cache only answers "has the market moved?".
    fn recall(&self, fingerprint: &ViewFingerprint, remaining_fraction: f64) -> Option<Plan> {
        let e = self.entry.as_ref()?;
        if !e.fingerprint.matches(fingerprint, self.tolerance) {
            return None;
        }
        self.recall_latest(remaining_fraction)
    }

    /// The cached plan rescaled to `remaining_fraction` regardless of
    /// fingerprint — the feed-gap degradation path, where no trustworthy
    /// fresh fingerprint exists (see [`AdaptivePlanner::plan_window`]).
    ///
    /// Degenerate ratios answer `None` instead of producing a zero- or
    /// NaN-scaled plan: both fractions must be finite and positive.
    /// (`made_for = +∞` used to slip through a bare `> 0.0` check and
    /// rescale the plan by 0, which `Plan::scaled` rejects by panicking.)
    fn recall_latest(&self, remaining_fraction: f64) -> Option<Plan> {
        let e = self.entry.as_ref()?;
        if !(remaining_fraction.is_finite()
            && remaining_fraction > 0.0
            && e.made_for.is_finite()
            && e.made_for > 0.0)
        {
            return None;
        }
        let ratio = (remaining_fraction / e.made_for).min(1.0);
        Some(e.plan.scaled(ratio))
    }

    /// Remember a freshly planned decision. Only hybrid plans are worth
    /// caching; a finish-on-demand decision clears the cache (subsequent
    /// windows run on demand and never consult it). A non-finite or
    /// non-positive `made_for` cannot be rescaled from later, so the
    /// entry is dropped rather than stored poisoned.
    fn store(&mut self, fingerprint: ViewFingerprint, decision: &WindowDecision, made_for: f64) {
        if !(made_for.is_finite() && made_for > 0.0) {
            self.entry = None;
            return;
        }
        match decision {
            WindowDecision::Hybrid(plan) => {
                self.entry = Some(CacheEntry {
                    fingerprint,
                    plan: plan.clone(),
                    made_for,
                });
            }
            WindowDecision::FinishOnDemand(_) => self.entry = None,
        }
    }

    /// Drop the cached entry (e.g. after realized progress diverges from
    /// the plan — a group failure invalidates the incumbent regardless of
    /// what prices did).
    pub fn clear(&mut self) {
        self.entry = None;
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_TOLERANCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    fn setup() -> (SpotMarket, Problem) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 31), 300.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(&market, &profile, 4.0, Some(&types), S3Store::paper_2014());
        (market, problem)
    }

    fn planner() -> AdaptivePlanner {
        AdaptivePlanner::new(AdaptiveConfig {
            window_hours: 1.0,
            history_hours: 48.0,
            optimizer: OptimizerConfig {
                kappa: 2,
                bid_levels: 3,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    /// Plan with an all-no-op context.
    fn plan(
        p: &AdaptivePlanner,
        problem: &Problem,
        frac: f64,
        t: f64,
        v: &MarketView,
    ) -> WindowDecision {
        p.plan_window(problem, frac, t, v, &mut PlanContext::new())
            .unwrap()
            .decision
    }

    #[test]
    fn plenty_of_time_stays_hybrid() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let d = plan(&planner(), &problem, 1.0, 0.0, &view);
        assert!(matches!(d, WindowDecision::Hybrid(_)));
        assert!(!d.plan().groups.is_empty());
    }

    #[test]
    fn exhausted_deadline_finishes_on_demand() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        // 95% of the deadline gone, whole app remaining.
        let d = plan(&planner(), &problem, 1.0, problem.deadline * 0.95, &view);
        assert!(matches!(d, WindowDecision::FinishOnDemand(_)));
        assert!(d.plan().groups.is_empty());
    }

    #[test]
    fn residual_shrinks_with_progress() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let d = plan(&planner(), &problem, 0.25, 0.5, &view);
        // With 25% of the work left, the chosen groups' exec times must be
        // a quarter of the originals.
        if let WindowDecision::Hybrid(plan) = d {
            for (g, _) in &plan.groups {
                let orig = problem.candidate(g.id).unwrap();
                assert!((g.exec_hours - orig.exec_hours * 0.25).abs() < 1e-9);
            }
        } else {
            panic!("expected hybrid decision");
        }
    }

    #[test]
    fn fingerprint_matches_itself_and_tracks_market_drift() {
        let (market, _) = setup();
        let early = MarketView::from_market(&market, 0.0, 48.0);
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let fp_early = ViewFingerprint::digest(&early);
        let fp_early_again = ViewFingerprint::digest(&early);
        assert!(fp_early.matches(&fp_early_again, 0.0), "digest not stable");
        // 200 h apart on a generated market, at least one group's price
        // statistics must have moved beyond 2%.
        let fp_late = ViewFingerprint::digest(&late);
        assert!(
            !fp_early.matches(&fp_late, PlanCache::DEFAULT_TOLERANCE),
            "distant windows should not fingerprint-match"
        );
    }

    #[test]
    fn fingerprint_digest_is_stable_and_view_sensitive() {
        let (market, _) = setup();
        let early = MarketView::from_market(&market, 0.0, 48.0);
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let a = ViewFingerprint::digest(&early).digest_u64();
        let b = ViewFingerprint::digest(&early).digest_u64();
        let c = ViewFingerprint::digest(&late).digest_u64();
        assert_eq!(a, b, "same view must digest to the same key");
        assert_ne!(a, c, "distant views must not collide on the key");
    }

    #[test]
    fn cached_window_reuses_only_when_view_is_static() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let p = planner();
        let mut cache = PlanCache::default();
        let w1 = p
            .plan_window(
                &problem,
                1.0,
                0.0,
                &view,
                &mut PlanContext::new().with_cache(&mut cache),
            )
            .unwrap();
        assert!(!w1.fingerprint_hit, "cold cache cannot hit");
        assert!(matches!(w1.decision, WindowDecision::Hybrid(_)));

        // Same view, slightly less work left: must hit, and the reused
        // plan must be the incumbent rescaled — not a fresh search.
        let w2 = p
            .plan_window(
                &problem,
                0.8,
                0.1,
                &view,
                &mut PlanContext::new().with_cache(&mut cache).with_window(1),
            )
            .unwrap();
        assert!(w2.fingerprint_hit, "static view should fingerprint-hit");
        assert!(w2.reused_from_cache);
        let (p1, p2) = (w1.decision.plan(), w2.decision.plan());
        assert_eq!(p1.groups.len(), p2.groups.len());
        for ((g1, dec1), (g2, dec2)) in p1.groups.iter().zip(&p2.groups) {
            assert_eq!(g1.id, g2.id);
            assert_eq!(dec1.bid, dec2.bid);
            assert!((g2.exec_hours - g1.exec_hours * 0.8).abs() < 1e-9);
        }

        // A distant history window must miss and re-plan.
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let w3 = p
            .plan_window(
                &problem,
                0.6,
                0.2,
                &late,
                &mut PlanContext::new().with_cache(&mut cache).with_window(2),
            )
            .unwrap();
        assert!(
            !w3.fingerprint_hit,
            "shifted market must force a re-optimization"
        );
    }

    #[test]
    fn cached_window_still_bails_out_on_hopeless_deadlines() {
        // A fingerprint hit must not override Algorithm 1 line 7: with
        // the deadline nearly exhausted the decision has to flip to
        // finish-on-demand even though the market never moved.
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let p = planner();
        let mut cache = PlanCache::default();
        let w1 = p
            .plan_window(
                &problem,
                1.0,
                0.0,
                &view,
                &mut PlanContext::new().with_cache(&mut cache),
            )
            .unwrap();
        assert!(!w1.fingerprint_hit);
        let w = p
            .plan_window(
                &problem,
                1.0,
                problem.deadline * 0.95,
                &view,
                &mut PlanContext::new().with_cache(&mut cache).with_window(1),
            )
            .unwrap();
        assert!(!w.fingerprint_hit, "hopeless deadline must not reuse");
        assert!(matches!(w.decision, WindowDecision::FinishOnDemand(_)));
    }

    #[test]
    fn later_views_change_plans_when_market_shifts() {
        // Re-planning with a different history window is the whole point of
        // update maintenance; verify the planner actually consumes the view.
        let (market, problem) = setup();
        let early = MarketView::from_market(&market, 0.0, 48.0);
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let p = planner();
        let d1 = plan(&p, &problem, 1.0, 0.0, &early);
        let d2 = plan(&p, &problem, 1.0, 0.0, &late);
        // Plans may coincide on calm markets; at minimum both must be
        // valid hybrid decisions with launchable bids.
        for d in [&d1, &d2] {
            for (g, dec) in &d.plan().groups {
                assert!(dec.bid > 0.0, "group {} has nonpositive bid", g.id);
            }
        }
    }

    #[test]
    fn invalid_fraction_is_an_error_not_a_panic() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let err = planner()
            .plan_window(&problem, 0.0, 0.0, &view, &mut PlanContext::new())
            .unwrap_err();
        assert!(matches!(err, SompiError::InvalidFraction { .. }));
        let err = planner()
            .plan_window(&problem, 1.5, 0.0, &view, &mut PlanContext::new())
            .unwrap_err();
        assert!(matches!(err, SompiError::InvalidFraction { .. }));
    }

    #[test]
    fn feed_gap_falls_back_to_cached_plan_without_fingerprint() {
        use ec2_market::fault::FaultPlan;
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        // The market moved enough that a fingerprint would miss...
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let p = planner();
        let injector = FaultInjector::new(
            FaultPlan {
                seed: 5,
                feed_gap_prob: 1.0,
                ..FaultPlan::quiet()
            },
            market.horizon(),
        );
        let mut cache = PlanCache::default();
        let w1 = p
            .plan_window(
                &problem,
                1.0,
                0.0,
                &view,
                &mut PlanContext::new().with_cache(&mut cache),
            )
            .unwrap();
        assert!(matches!(w1.decision, WindowDecision::Hybrid(_)));
        // ...yet with the feed gapped the planner reuses the last valid
        // plan instead of re-optimizing against suspect data.
        let w2 = p
            .plan_window(
                &problem,
                0.8,
                0.2,
                &late,
                &mut PlanContext::new()
                    .with_cache(&mut cache)
                    .with_faults(&injector)
                    .with_window(1),
            )
            .unwrap();
        assert!(w2.reused_from_cache, "feed gap should reuse the last plan");
        assert!(!w2.fingerprint_hit, "gap reuse is not a fingerprint hit");
        for ((g1, d1), (g2, d2)) in w1
            .decision
            .plan()
            .groups
            .iter()
            .zip(&w2.decision.plan().groups)
        {
            assert_eq!(g1.id, g2.id);
            assert_eq!(d1.bid, d2.bid);
        }
        // Without a cached plan a gapped window still plans best-effort
        // from the (possibly stale) view — never a panic.
        let mut cold = PlanCache::default();
        let w3 = p
            .plan_window(
                &problem,
                1.0,
                0.0,
                &late,
                &mut PlanContext::new()
                    .with_cache(&mut cold)
                    .with_faults(&injector),
            )
            .unwrap();
        assert!(!w3.reused_from_cache);
    }

    #[test]
    fn builder_overrides_only_what_is_asked() {
        let cfg = AdaptiveConfig::builder()
            .window_hours(5.0)
            .optimizer(OptimizerConfig {
                kappa: 3,
                ..Default::default()
            })
            .build();
        assert_eq!(cfg.window_hours, 5.0);
        assert_eq!(cfg.history_hours, AdaptiveConfig::default().history_hours);
        assert_eq!(cfg.optimizer.kappa, 3);
        assert!(cfg.warmstart && cfg.bucket_reuse, "warm layers default on");
        let cfg = AdaptiveConfig::builder()
            .warmstart(false)
            .bucket_reuse(false)
            .build();
        assert!(!cfg.warmstart && !cfg.bucket_reuse);
    }

    #[test]
    fn adaptive_config_deserializes_without_warm_fields() {
        // Configs serialized before the warm-start layers existed must
        // keep loading, with both layers defaulting on.
        let optimizer = serde_json::to_string(&OptimizerConfig::default()).unwrap();
        let json =
            format!(r#"{{"window_hours": 10.0, "history_hours": 24.0, "optimizer": {optimizer}}}"#);
        let cfg: AdaptiveConfig =
            serde_json::from_str(&json).expect("pre-warmstart config should deserialize");
        assert_eq!(cfg.window_hours, 10.0);
        assert!(cfg.warmstart && cfg.bucket_reuse);
    }

    #[test]
    fn cache_refuses_degenerate_rescale_ratios() {
        // Regression: a cached `made_for = +∞` passed the old bare
        // `> 0.0` guard and rescaled the plan by 0, which panics inside
        // `Plan::scaled`; NaN and non-positive fractions were similarly
        // unguarded on the recall side.
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let fp = ViewFingerprint::digest(&view);
        let decision = plan(&planner(), &problem, 1.0, 0.0, &view);
        assert!(matches!(decision, WindowDecision::Hybrid(_)));

        for bad in [f64::INFINITY, f64::NAN, 0.0, -0.5] {
            let mut cache = PlanCache::default();
            cache.store(fp.clone(), &decision, bad);
            assert!(
                cache.recall_latest(0.5).is_none(),
                "made_for = {bad} must not be stored as recallable"
            );
        }

        let mut cache = PlanCache::default();
        cache.store(fp.clone(), &decision, 0.8);
        for bad in [f64::INFINITY, f64::NAN, 0.0, -1.0] {
            assert!(
                cache.recall_latest(bad).is_none(),
                "remaining_fraction = {bad} must not rescale"
            );
        }
        // Sane ratios still recall, clamped to the stored plan's size.
        let recalled = cache.recall_latest(0.4).expect("healthy ratio recalls");
        assert!(!recalled.groups.is_empty());
        assert!(cache.recall_latest(0.9).is_some(), "ratio clamps at 1.0");
    }

    #[test]
    fn warm_context_does_not_change_window_decisions() {
        // The warm-start layers are exactness-preserving: a window planned
        // with carried state must produce the same decision as a cold one.
        let (market, problem) = setup();
        let p = planner();
        let mut warm = WarmStart::new();
        for (window, (frac, elapsed, start)) in
            [(1.0, 0.0, 0.0), (0.7, 0.8, 15.0), (0.4, 1.6, 30.0)]
                .into_iter()
                .enumerate()
        {
            let view = MarketView::from_market(&market, start, 48.0);
            let cold = p
                .plan_window(&problem, frac, elapsed, &view, &mut PlanContext::new())
                .unwrap();
            let warmed = p
                .plan_window(
                    &problem,
                    frac,
                    elapsed,
                    &view,
                    &mut PlanContext::new()
                        .with_warm(&mut warm)
                        .with_window(window as u32),
                )
                .unwrap();
            assert_eq!(
                cold.decision, warmed.decision,
                "window {window}: warm context changed the decision"
            );
        }
        assert!(warm.has_plan(), "warm state should carry the last plan");
        assert!(warm.cached_groups() > 0, "bucket tables should be cached");
    }

    #[test]
    fn config_toggles_override_the_carried_state() {
        // `--no-warmstart` / `--no-bucket-reuse` must win even when the
        // caller supplies a fully enabled WarmStart.
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let mut cfg = planner().config;
        cfg.warmstart = false;
        cfg.bucket_reuse = false;
        let p = AdaptivePlanner::new(cfg);
        let mut warm = WarmStart::new();
        let planned = p
            .plan_window(
                &problem,
                1.0,
                0.0,
                &view,
                &mut PlanContext::new().with_warm(&mut warm),
            )
            .unwrap();
        assert!(matches!(planned.decision, WindowDecision::Hybrid(_)));
        assert!(!warm.plan_carryover() && !warm.table_reuse());
        assert!(
            !warm.has_plan(),
            "disabled carry-over must not store a plan"
        );
        assert_eq!(warm.cached_groups(), 0, "disabled reuse must not cache");
    }
}
