//! The adaptive update-maintenance algorithm — Section 4.3, Algorithm 1.
//!
//! Spot price distributions drift, so a plan computed once from stale
//! history degrades (the paper's w/o-MT ablation). Algorithm 1 splits the
//! execution into optimization windows of size `T_m`: at each window
//! boundary it re-estimates the failure-rate functions from the *previous*
//! window's prices, re-solves the two-level optimization for the residual
//! application, and — when the deadline can no longer be met — abandons
//! spot and finishes on demand.
//!
//! This module holds the planning half (what to do at a window boundary);
//! the execution half (tracking realized progress against real traces)
//! lives in the `replay` crate, which feeds realized progress back in as
//! `remaining_fraction`.

use crate::model::Plan;
use crate::problem::Problem;
use crate::twolevel::{OptimizedPlan, OptimizerConfig, TwoLevelOptimizer};
use crate::view::MarketView;
use crate::Hours;
use serde::{Deserialize, Serialize};
use sompi_obs::{emit, Event, NullRecorder, Recorder, TraceLevel};

/// Adaptive algorithm knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// `T_m`: optimization window size, hours (paper default ≈ 15).
    pub window_hours: Hours,
    /// History length used for each re-estimation, hours (the paper uses
    /// "the previous two days" offline and the previous window online).
    pub history_hours: Hours,
    /// The inner optimizer's configuration.
    pub optimizer: OptimizerConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            window_hours: 15.0,
            history_hours: 48.0,
            optimizer: OptimizerConfig::default(),
        }
    }
}

/// What Algorithm 1 decides at a window boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WindowDecision {
    /// Keep executing on spot with this plan for the next window.
    Hybrid(Plan),
    /// The deadline is at risk: finish the residual work on demand
    /// (Algorithm 1 lines 7–9).
    FinishOnDemand(Plan),
}

impl WindowDecision {
    /// The plan to execute either way.
    pub fn plan(&self) -> &Plan {
        match self {
            WindowDecision::Hybrid(p) | WindowDecision::FinishOnDemand(p) => p,
        }
    }
}

/// Stateless planner for Algorithm 1's per-window decision.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePlanner {
    /// Configuration.
    pub config: AdaptiveConfig,
}

impl AdaptivePlanner {
    /// Create a planner.
    pub fn new(config: AdaptiveConfig) -> Self {
        Self { config }
    }

    /// Decide the next window's plan.
    ///
    /// * `base` — the original problem (full application),
    /// * `remaining_fraction` — residual work in `(0, 1]`,
    /// * `elapsed` — wall hours consumed so far,
    /// * `view` — estimators over the *latest* history window.
    pub fn plan_window(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
    ) -> WindowDecision {
        self.plan_window_recorded(base, remaining_fraction, elapsed, view, 0, &NullRecorder)
    }

    /// [`AdaptivePlanner::plan_window`], emitting trace events: the inner
    /// optimizer's search events (when it runs) plus one `WindowReplanned`
    /// with `reused: false` describing the decision. `window` is the
    /// 0-based index of the window being planned; it only labels the
    /// event.
    pub fn plan_window_recorded(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        window: u32,
        recorder: &dyn Recorder,
    ) -> WindowDecision {
        let decision = self.decide(base, remaining_fraction, elapsed, view, recorder);
        emit(recorder, TraceLevel::Summary, || Event::WindowReplanned {
            window,
            elapsed_hours: elapsed,
            remaining_fraction,
            reused: false,
            decision: match &decision {
                WindowDecision::Hybrid(_) => "hybrid".to_string(),
                WindowDecision::FinishOnDemand(_) => "finish-on-demand".to_string(),
            },
            groups: decision.plan().groups.len() as u32,
        });
        decision
    }

    fn decide(
        &self,
        base: &Problem,
        remaining_fraction: f64,
        elapsed: Hours,
        view: &MarketView,
        recorder: &dyn Recorder,
    ) -> WindowDecision {
        let leftover = base.deadline - elapsed;
        let residual = base.residual(remaining_fraction, leftover.max(0.0));

        // Algorithm 1 line 7: if even the fastest on-demand execution of
        // the residual cannot meet the leftover deadline budget, bail out
        // to on-demand immediately (nothing better exists).
        let fastest = residual.baseline();
        if fastest.exec_hours + fastest.recovery_hours > leftover {
            return WindowDecision::FinishOnDemand(Plan::on_demand_only(*fastest));
        }

        // Otherwise re-optimize the residual against the fresh view. The
        // optimizer's own `E[Time] ≤ leftover` constraint (with graceful
        // on-demand fallback when nothing feasible exists) is the paper's
        // deadline control; when it returns a pure on-demand plan, treat
        // that as the Algorithm-1 bail-out.
        let OptimizedPlan { plan, .. } =
            TwoLevelOptimizer::new(&residual, view, self.config.optimizer)
                .optimize_recorded(recorder);
        if plan.groups.is_empty() {
            return WindowDecision::FinishOnDemand(plan);
        }
        WindowDecision::Hybrid(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    fn setup() -> (SpotMarket, Problem) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 31), 300.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(&market, &profile, 4.0, Some(&types), S3Store::paper_2014());
        (market, problem)
    }

    fn planner() -> AdaptivePlanner {
        AdaptivePlanner::new(AdaptiveConfig {
            window_hours: 1.0,
            history_hours: 48.0,
            optimizer: OptimizerConfig {
                kappa: 2,
                bid_levels: 3,
                ..Default::default()
            },
        })
    }

    #[test]
    fn plenty_of_time_stays_hybrid() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let d = planner().plan_window(&problem, 1.0, 0.0, &view);
        assert!(matches!(d, WindowDecision::Hybrid(_)));
        assert!(!d.plan().groups.is_empty());
    }

    #[test]
    fn exhausted_deadline_finishes_on_demand() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        // 95% of the deadline gone, whole app remaining.
        let d = planner().plan_window(&problem, 1.0, problem.deadline * 0.95, &view);
        assert!(matches!(d, WindowDecision::FinishOnDemand(_)));
        assert!(d.plan().groups.is_empty());
    }

    #[test]
    fn residual_shrinks_with_progress() {
        let (market, problem) = setup();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let d = planner().plan_window(&problem, 0.25, 0.5, &view);
        // With 25% of the work left, the chosen groups' exec times must be
        // a quarter of the originals.
        if let WindowDecision::Hybrid(plan) = d {
            for (g, _) in &plan.groups {
                let orig = problem.candidate(g.id).unwrap();
                assert!((g.exec_hours - orig.exec_hours * 0.25).abs() < 1e-9);
            }
        } else {
            panic!("expected hybrid decision");
        }
    }

    #[test]
    fn later_views_change_plans_when_market_shifts() {
        // Re-planning with a different history window is the whole point of
        // update maintenance; verify the planner actually consumes the view.
        let (market, problem) = setup();
        let early = MarketView::from_market(&market, 0.0, 48.0);
        let late = MarketView::from_market(&market, 200.0, 48.0);
        let p = planner();
        let d1 = p.plan_window(&problem, 1.0, 0.0, &early);
        let d2 = p.plan_window(&problem, 1.0, 0.0, &late);
        // Plans may coincide on calm markets; at minimum both must be
        // valid hybrid decisions with launchable bids.
        for d in [&d1, &d2] {
            for (g, dec) in &d.plan().groups {
                assert!(dec.bid > 0.0, "group {} has nonpositive bid", g.id);
            }
        }
    }
}
