//! The unified error type for planner/executor/feed entry points.
//!
//! Hand-rolled in the `thiserror` style (dependencies are vendored):
//! every variant carries enough context to render a useful message, and
//! the library's public fallible APIs return `Result<_, SompiError>`
//! instead of `Result<_, String>` or panicking on user-reachable inputs.

use ec2_market::feed::FeedError;
use std::fmt;

/// Everything that can go wrong in the planning/replay pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SompiError {
    /// The problem offers no on-demand option, so neither the baseline
    /// nor any fallback path is defined.
    NoOnDemandOption,
    /// A residual/remaining work fraction outside `(0, 1]`.
    InvalidFraction {
        /// The offending value.
        fraction: f64,
    },
    /// A plan references a circle group the market has no trace for.
    UnknownGroup {
        /// Display form of the missing group id.
        group: String,
    },
    /// An aggregate was requested over zero outcomes.
    NoOutcomes,
    /// A plan that cannot launch under the market view (some bid never
    /// clears its group's price floor), surfaced where an evaluation is
    /// required rather than optional.
    UnlaunchablePlan,
    /// A market-feed parsing or resampling failure.
    Feed(FeedError),
    /// A configuration value outside its documented domain.
    InvalidConfig {
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for SompiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SompiError::NoOnDemandOption => {
                write!(f, "problem offers no on-demand option")
            }
            SompiError::InvalidFraction { fraction } => {
                write!(f, "work fraction {fraction} outside (0, 1]")
            }
            SompiError::UnknownGroup { group } => {
                write!(f, "no market trace for circle group {group}")
            }
            SompiError::NoOutcomes => write!(f, "no outcomes to aggregate"),
            SompiError::UnlaunchablePlan => write!(f, "plan has an unlaunchable bid"),
            SompiError::Feed(e) => write!(f, "market feed: {e}"),
            SompiError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
        }
    }
}

impl std::error::Error for SompiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SompiError::Feed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FeedError> for SompiError {
    fn from(e: FeedError) -> Self {
        SompiError::Feed(e)
    }
}

impl From<ec2_market::UnknownGroupError> for SompiError {
    fn from(e: ec2_market::UnknownGroupError) -> Self {
        SompiError::UnknownGroup { group: e.group }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_value() {
        let e = SompiError::InvalidFraction { fraction: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = SompiError::UnknownGroup {
            group: "m1.small@us-east-1a".to_string(),
        };
        assert!(e.to_string().contains("m1.small@us-east-1a"));
    }

    #[test]
    fn feed_errors_convert_and_chain() {
        let e: SompiError = FeedError::Empty.into();
        assert!(matches!(e, SompiError::Feed(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SompiError::NoOutcomes).is_none());
    }
}
