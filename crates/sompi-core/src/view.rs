//! Market estimation view: the optimizer's window onto spot price history.
//!
//! A [`MarketView`] wraps one [`FailureEstimator`] per circle group, built
//! from a chosen history window (typically "the previous two days" offline,
//! or "the previous optimization window" in the adaptive algorithm). It
//! cleanly separates what the optimizer *believed* (this view) from what
//! the market later *did* (a later region of the same traces, consumed by
//! the replay crate).

use crate::error::SompiError;
use crate::{Hours, Usd};
use ec2_market::failure::{FailureEstimator, FailureRateFn};
use ec2_market::market::{CircleGroupId, SpotMarket};
use std::collections::BTreeMap;

/// Per-circle-group estimators over one history window.
#[derive(Debug, Clone)]
pub struct MarketView {
    estimators: BTreeMap<CircleGroupId, FailureEstimator>,
}

impl MarketView {
    /// Build estimators for every group in `market` from the history window
    /// `[start, start + len)` (hours into each trace).
    pub fn from_market(market: &SpotMarket, start: Hours, len: Hours) -> Self {
        let estimators = market.estimators(start, len).collect();
        Self { estimators }
    }

    /// Build a view over explicit per-group estimators.
    pub fn from_estimators(estimators: BTreeMap<CircleGroupId, FailureEstimator>) -> Self {
        Self { estimators }
    }

    /// Groups covered by this view.
    pub fn groups(&self) -> impl Iterator<Item = CircleGroupId> + '_ {
        self.estimators.keys().copied()
    }

    /// The estimator for a group, or `SompiError::UnknownGroup` when the
    /// view has no history for it. Lookups used to panic here; routing the
    /// miss through a `Result` lets user-reachable paths (hand-built plans,
    /// mismatched problems) surface a proper error instead of aborting.
    pub fn try_estimator(&self, id: CircleGroupId) -> Result<&FailureEstimator, SompiError> {
        self.estimators
            .get(&id)
            .ok_or_else(|| SompiError::UnknownGroup {
                group: id.to_string(),
            })
    }

    /// Every (group, estimator) pair in deterministic group order —
    /// infallible by construction, for callers that walk the view itself.
    pub fn estimators(&self) -> impl Iterator<Item = (CircleGroupId, &FailureEstimator)> + '_ {
        self.estimators.iter().map(|(id, e)| (*id, e))
    }

    /// Highest historical price `H_i` for a group — the top of its bid
    /// search range.
    pub fn max_bid(&self, id: CircleGroupId) -> Result<Usd, SompiError> {
        Ok(self.try_estimator(id)?.max_price())
    }

    /// Lowest historical price of a group — the bottom of the useful bid
    /// range (below it nothing ever launches).
    pub fn min_price(&self, id: CircleGroupId) -> Result<Usd, SompiError> {
        Ok(self.try_estimator(id)?.expected_spot_price().min_price())
    }

    /// Failure-rate function `f_i(P, t)` over an hourly horizon.
    pub fn failure_fn(
        &self,
        id: CircleGroupId,
        bid: Usd,
        horizon_hours: usize,
    ) -> Result<FailureRateFn, SompiError> {
        Ok(self
            .try_estimator(id)?
            .failure_rate_exact(bid, horizon_hours))
    }

    /// Expected spot price `S_i(P)`: mean of historical prices at or below
    /// the bid. `Ok(None)` when the bid admits no launch.
    pub fn expected_price(&self, id: CircleGroupId, bid: Usd) -> Result<Option<Usd>, SompiError> {
        Ok(self
            .try_estimator(id)?
            .expected_spot_price()
            .mean_below(bid))
    }

    /// Mean historical price of a group (the Spot-Avg baseline's bid).
    pub fn mean_price(&self, id: CircleGroupId) -> Result<Usd, SompiError> {
        Ok(self.expected_price(id, f64::INFINITY)?.unwrap_or(0.0))
    }

    /// Expected wait between requesting instances and the spot price first
    /// admitting the bid ("otherwise it waits").
    pub fn launch_delay(&self, id: CircleGroupId, bid: Usd) -> Result<Hours, SompiError> {
        Ok(self.try_estimator(id)?.expected_launch_delay(bid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceCatalog;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};

    fn view() -> (SpotMarket, MarketView) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 3), 96.0, 1.0 / 12.0);
        let v = MarketView::from_market(&market, 0.0, 48.0);
        (market, v)
    }

    #[test]
    fn covers_every_market_group() {
        let (m, v) = view();
        assert_eq!(v.groups().count(), m.len());
    }

    #[test]
    fn max_bid_positive_everywhere() {
        let (_, v) = view();
        for id in v.groups().collect::<Vec<_>>() {
            assert!(v.max_bid(id).unwrap() > 0.0);
        }
    }

    #[test]
    fn expected_price_below_max_bid() {
        let (_, v) = view();
        for id in v.groups().collect::<Vec<_>>() {
            let h = v.max_bid(id).unwrap();
            let s = v
                .expected_price(id, h)
                .unwrap()
                .expect("max bid always launches");
            // Tolerance: on a flat trace the mean of identical values can
            // drift above the max by float accumulation error.
            assert!(s <= h * (1.0 + 1e-9));
            assert!(s > 0.0);
        }
    }

    #[test]
    fn mean_price_matches_unbounded_expected_price() {
        let (_, v) = view();
        let id = v.groups().next().unwrap();
        assert_eq!(
            v.mean_price(id).unwrap(),
            v.expected_price(id, f64::INFINITY).unwrap().unwrap()
        );
    }

    #[test]
    fn unknown_group_is_an_error_not_a_panic() {
        let (_, v) = view();
        let bogus = CircleGroupId::new(
            ec2_market::instance::InstanceTypeId(99),
            ec2_market::zone::AvailabilityZone::UsEast1a,
        );
        let err = v.try_estimator(bogus).unwrap_err();
        assert!(matches!(err, SompiError::UnknownGroup { .. }));
        assert!(err.to_string().contains("no market trace"));
        assert!(v.max_bid(bogus).is_err());
        assert!(v.failure_fn(bogus, 0.1, 4).is_err());
        assert!(v.launch_delay(bogus, 0.1).is_err());
    }
}
