//! Cost/time Pareto frontier over candidate plans.
//!
//! The paper fixes a deadline and minimizes expected cost. A user choosing
//! the deadline wants the whole trade-off curve: for each achievable
//! expected completion time, the cheapest plan. [`frontier`] reuses the
//! two-level search but keeps every non-dominated `(E[Time], E[Cost])`
//! configuration instead of a single optimum — one search, the entire
//! Figure-7-style curve.
//!
//! The module also hosts [`collapse_bid_dominated`], the exactness-
//! preserving per-group dominance filter shared by [`frontier`] and the
//! two-level optimizer (DESIGN.md §8): when two bids on the same group are
//! indistinguishable to the evaluator, only the higher one can ever win,
//! so the lower one is dropped before any subset is enumerated.

use crate::cost::{evaluate, Evaluation, GroupAssessment};
use crate::logsearch::BidGrid;
use crate::model::{GroupDecision, Plan};
use crate::ondemand::select_on_demand;
use crate::phi::optimal_interval_for;
use crate::problem::Problem;
use crate::twolevel::{GridKind, OptimizerConfig};
use crate::view::MarketView;
use serde::{Deserialize, Serialize};

/// Drop every assessment that is *bid-collapse dominated*: an option `A`
/// is removed iff an earlier option `B` in the list has a strictly higher
/// bid and [`GroupAssessment::eval_equivalent`] state. Returns how many
/// options were removed; the relative order of survivors is preserved.
///
/// Exactness (the full argument is in DESIGN.md §8): the evaluator never
/// reads `decision.bid`, so substituting `B` for `A` inside any candidate
/// leaves the evaluation bit-identical while making the bid vector
/// lexicographically greater — and the optimizer's total order breaks
/// cost ties toward greater bid vectors, before the enumeration ordinal.
/// The exhaustive winner therefore never contains a dominated option, and
/// since removal preserves the survivors' enumeration order, ordinal
/// tie-breaks among survivors are unchanged too.
///
/// Callers must pass options in bid-descending order (the order
/// [`BidGrid`] produces), so a dominator always precedes its victims.
pub fn collapse_bid_dominated(opts: &mut Vec<GroupAssessment>) -> u64 {
    let mut kept = 0usize;
    for i in 0..opts.len() {
        let dominated = opts[..kept]
            .iter()
            .any(|b| b.decision.bid > opts[i].decision.bid && b.eval_equivalent(&opts[i]));
        if !dominated {
            opts.swap(kept, i);
            kept += 1;
        }
    }
    let removed = (opts.len() - kept) as u64;
    opts.truncate(kept);
    removed
}

/// One point on the cost/time frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The plan achieving this point.
    pub plan: Plan,
    /// Its model evaluation.
    pub evaluation: Evaluation,
}

/// Enumerate the non-dominated `(E[Time], E[Cost])` plans reachable by the
/// two-level search (no deadline constraint — that is the caller's slider).
/// Points are returned sorted by expected time ascending; expected cost is
/// then strictly decreasing.
pub fn frontier(problem: &Problem, view: &MarketView, config: OptimizerConfig) -> Vec<ParetoPoint> {
    // Deadline-independent on-demand fallback: the fastest type (any other
    // choice only shifts the whole frontier).
    let od = select_on_demand(&problem.on_demand, f64::MAX, config.slack);

    // Assess candidates once per (group, bid). A candidate the view has
    // no history for simply contributes no options (and so no frontier
    // points) instead of aborting the whole curve.
    let mut options: Vec<Vec<GroupAssessment>> = Vec::new();
    for group in &problem.candidates {
        let mut opts = Vec::new();
        if let Ok(est) = view.try_estimator(group.id) {
            let max_bid = est.max_price();
            if max_bid.is_finite() && max_bid > 0.0 {
                let min_price = est.expected_spot_price().min_price().max(1e-6);
                let span = ((max_bid / min_price).log2().ceil() as u32 + 1).max(2);
                let levels = span.min(config.bid_levels.max(2));
                let mut grid = match config.grid {
                    GridKind::Logarithmic => BidGrid::logarithmic(max_bid, levels),
                    GridKind::Uniform => BidGrid::uniform(max_bid, levels),
                };
                if let Some(m) = config.top_margin {
                    grid = grid.with_top_margin(m);
                }
                for &bid in grid.bids() {
                    let interval = optimal_interval_for(group, bid, est);
                    let decision = GroupDecision {
                        bid,
                        ckpt_interval: interval,
                    };
                    if let Some(a) = GroupAssessment::assess_with(*group, decision, est) {
                        opts.push(a);
                    }
                }
                // Exact and output-invariant here too: collapsed duplicates
                // produce identical (E[Time], E[Cost]) points, and the kept
                // (higher-bid) twin enumerates first anyway, so the stable
                // non-dominated filter below returns the same frontier.
                collapse_bid_dominated(&mut opts);
            }
        }
        options.push(opts);
    }

    // Collect every evaluated configuration (pure OD + k-subsets).
    let mut points: Vec<ParetoPoint> = vec![ParetoPoint {
        plan: Plan::on_demand_only(od),
        evaluation: evaluate(&[], &od),
    }];

    let n = problem.candidates.len();
    let k_max = config.kappa.min(n);
    let mut subset: Vec<usize> = Vec::new();
    collect(n, k_max, 0, &mut subset, &mut |chosen: &[usize]| {
        if chosen.iter().any(|&g| options[g].is_empty()) {
            return;
        }
        let mut idx = vec![0usize; chosen.len()];
        let mut refs: Vec<&GroupAssessment> = Vec::with_capacity(chosen.len());
        loop {
            refs.clear();
            refs.extend(chosen.iter().zip(&idx).map(|(&g, &i)| &options[g][i]));
            let eval = evaluate(&refs, &od);
            points.push(ParetoPoint {
                plan: Plan {
                    groups: refs.iter().map(|a| (a.group, a.decision)).collect(),
                    on_demand: od,
                },
                evaluation: eval,
            });
            let mut pos = 0;
            loop {
                if pos == idx.len() {
                    return;
                }
                idx[pos] += 1;
                if idx[pos] < options[chosen[pos]].len() {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
    });

    // Non-dominated filter: sort by time, keep strictly-cheaper survivors.
    points.sort_by(|a, b| {
        a.evaluation
            .expected_time
            .total_cmp(&b.evaluation.expected_time)
            .then(
                a.evaluation
                    .expected_cost
                    .total_cmp(&b.evaluation.expected_cost),
            )
    });
    let mut out: Vec<ParetoPoint> = Vec::new();
    let mut best_cost = f64::INFINITY;
    for p in points {
        if p.evaluation.expected_cost < best_cost - 1e-12 {
            best_cost = p.evaluation.expected_cost;
            out.push(p);
        }
    }
    out
}

/// Visit subsets of `0..n` of size 1..=k_max.
fn collect(
    n: usize,
    k_max: usize,
    start: usize,
    acc: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if !acc.is_empty() {
        f(acc);
    }
    if acc.len() == k_max {
        return;
    }
    for i in start..n {
        acc.push(i);
        collect(n, k_max, i + 1, acc, f);
        acc.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    fn setup() -> (Problem, MarketView) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 55), 200.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(
            &market,
            &profile,
            f64::MAX,
            Some(&types),
            S3Store::paper_2014(),
        );
        let view = MarketView::from_market(&market, 0.0, 48.0);
        (problem, view)
    }

    #[test]
    fn frontier_is_strictly_improving() {
        let (problem, view) = setup();
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            ..Default::default()
        };
        let f = frontier(&problem, &view, cfg);
        assert!(f.len() >= 2, "expect at least OD and one spot point");
        for w in f.windows(2) {
            assert!(w[0].evaluation.expected_time <= w[1].evaluation.expected_time);
            assert!(w[0].evaluation.expected_cost > w[1].evaluation.expected_cost);
        }
    }

    #[test]
    fn frontier_dominates_single_deadline_optimum() {
        // For any deadline, the cheapest frontier point meeting it is at
        // least as good as the two-level optimizer's answer (same search
        // space, so costs must match within float noise).
        use crate::twolevel::TwoLevelOptimizer;
        let (mut problem, view) = setup();
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            ..Default::default()
        };
        let f = frontier(&problem, &view, cfg);
        for factor in [1.1, 1.5] {
            problem.deadline = problem.baseline_time() * factor;
            let opt = TwoLevelOptimizer::new(&problem, &view, cfg)
                .optimize()
                .unwrap();
            let best_on_frontier = f
                .iter()
                .filter(|p| p.evaluation.expected_time <= problem.deadline)
                .map(|p| p.evaluation.expected_cost)
                .fold(f64::INFINITY, f64::min);
            assert!(
                best_on_frontier <= opt.evaluation.expected_cost + 1e-6,
                "frontier {} vs optimizer {} at factor {factor}",
                best_on_frontier,
                opt.evaluation.expected_cost
            );
        }
    }

    #[test]
    fn collapse_drops_only_lower_bid_twins() {
        use crate::model::CircleGroup;
        use ec2_market::market::CircleGroupId;
        use ec2_market::zone::AvailabilityZone;

        let g = CircleGroup {
            id: CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a),
            instances: 4,
            exec_hours: 3.0,
            ckpt_overhead_hours: 0.02,
            recovery_hours: 0.1,
        };
        let make = |bid: f64, survival: f64| {
            let horizon = g.completion_wall_hours(3.0).ceil().max(1.0) as usize;
            let per = (1.0 - survival) / horizon as f64;
            GroupAssessment::from_parts(
                g,
                GroupDecision {
                    bid,
                    ckpt_interval: 3.0,
                },
                0.1,
                survival,
                vec![per; horizon],
                0.0,
            )
        };
        // Bid-descending, as BidGrid produces. 0.8 and 0.4 are evaluator-
        // identical twins of 1.0; 0.2 genuinely differs.
        let mut opts = vec![
            make(1.0, 0.9),
            make(0.8, 0.9),
            make(0.4, 0.9),
            make(0.2, 0.5),
        ];
        let removed = collapse_bid_dominated(&mut opts);
        assert_eq!(removed, 2);
        let bids: Vec<f64> = opts.iter().map(|a| a.decision.bid).collect();
        assert_eq!(bids, vec![1.0, 0.2], "survivor order must be preserved");
        // Idempotent.
        assert_eq!(collapse_bid_dominated(&mut opts), 0);
    }

    #[test]
    fn frontier_matches_unfiltered_enumeration() {
        // The collapse inside `frontier` must not change the curve: it
        // only removes points whose (time, cost) twin — the higher bid —
        // enumerates first and survives the stable dominated filter.
        let (problem, view) = setup();
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            ..Default::default()
        };
        let f = frontier(&problem, &view, cfg);
        for w in f.windows(2) {
            assert!(w[0].evaluation.expected_cost > w[1].evaluation.expected_cost);
        }
        // Every surviving plan's bids are launchable under the view.
        for p in &f {
            for (g, d) in &p.plan.groups {
                assert!(view.expected_price(g.id, d.bid).unwrap().is_some());
            }
        }
    }

    #[test]
    fn frontier_contains_pure_on_demand_or_better() {
        let (problem, view) = setup();
        let cfg = OptimizerConfig {
            kappa: 1,
            bid_levels: 3,
            ..Default::default()
        };
        let f = frontier(&problem, &view, cfg);
        // The fastest point is at most the OD time (something must serve
        // the impatient end of the curve).
        let fastest = &f[0];
        assert!(fastest.evaluation.expected_time <= problem.baseline_time() * 1.05 + 1.0);
    }
}
