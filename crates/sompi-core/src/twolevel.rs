//! The two-level optimization algorithm — Sections 4.2 and 4.4.
//!
//! Level 1 (dimension reduction): for every candidate bid price the
//! checkpoint interval is fixed to `φ(P)` ([`crate::phi`]), so the search
//! runs over bid vectors only (Theorem 1 preserves optimality).
//!
//! Level 2 (logarithmic search): each group's bid is drawn from the
//! `O(log₂ H)` grid of [`crate::logsearch`], shrinking the bid space from
//! `P^K` to `(log₂ H)^K`.
//!
//! On top, the implementation-level optimization of Section 4.4: only
//! `k ≤ κ` of the `K` candidate circle groups are actually used; all
//! `C(K, k)` subsets are tried and the cheapest feasible configuration
//! wins. The optimizer also always considers the pure on-demand plan, so
//! it degrades gracefully when no spot configuration meets the deadline.
//!
//! # Parallel search
//!
//! The `C(K, k)` subsets are fanned out across [`OptimizerConfig::threads`]
//! workers (crossbeam scoped threads, the same pattern as `replay`'s
//! Monte-Carlo): every worker runs the bid odometer over its contiguous
//! chunk of the subset list with worker-local state — an incumbent, an
//! evaluation counter, and reused scratch buffers — and the per-worker
//! winners are merged under a *total* candidate order: feasibility first,
//! then lower expected cost, then the lexicographic bid-vector tie-break
//! (higher bids win — see the private `beats` helper), then the unique
//! enumeration ordinal
//! `(subset index, odometer step)`. Because that order is total and
//! independent of how the subset list is chunked, the returned
//! [`OptimizedPlan`] — plan, evaluation, and `evaluations_performed` — is
//! identical at any thread count. With a persistent
//! [`SearchPool`](crate::pool::SearchPool) attached (`ctx.pool` on
//! [`TwoLevelOptimizer::optimize_with`]), the same chunk jobs run
//! on resident workers instead of freshly spawned threads; results come
//! back in submission order, so the merge — and the answer — is unchanged.
//!
//! # Warm-started re-optimization
//!
//! [`TwoLevelOptimizer::optimize_with`] accepts [`WarmStart`] state
//! (`ctx.warm`) from a
//! previous, similar search (the adaptive loop's previous window): the
//! previous plan seeds the incumbent bound, its top subsets are enumerated
//! first, and the per-`(group, bid)` failure tables behind `φ(P)` and the
//! assessments are reused while their history digest matches. All three
//! layers only change *how fast* the bound tightens or the assessments
//! build — never which candidate wins — so the selected plan stays
//! bit-identical to a cold search (see `crate::warmstart`).

use crate::adaptive::PlanContext;
use crate::cost::{
    assessment_horizon, evaluate, evaluate_with_scratch, EvalScratch, Evaluation, GroupAssessment,
    KernelMode,
};
use crate::error::SompiError;
use crate::logsearch::BidGrid;
use crate::model::{CircleGroup, GroupDecision, OnDemandOption, Plan};
use crate::ondemand::{select_on_demand, DEFAULT_SLACK};
use crate::phi::{interval_from_mttf, optimal_interval_for, phi_horizon};
use crate::problem::Problem;
use crate::view::MarketView;
use crate::warmstart::{BidTable, GroupTables, PrevWindow, WarmStart, HOT_SUBSETS};
use ec2_market::market::CircleGroupId;
use serde::{Deserialize, Serialize};
use sompi_obs::{emit, Event, PhaseTimer, TraceLevel};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Which bid grid shape to search (logarithmic is the paper's; uniform
/// exists for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GridKind {
    /// `H / 2^l` — the paper's logarithmic search.
    #[default]
    Logarithmic,
    /// Equally spaced, same cardinality.
    Uniform,
}

/// Optimizer knobs, with the paper's defaults.
///
/// ```
/// use sompi_core::OptimizerConfig;
///
/// let cfg = OptimizerConfig::default();
/// assert_eq!(cfg.kappa, 4);        // §5.2: diminishing returns past 4
/// assert_eq!(cfg.bid_levels, 12);  // log₂ grid cap per group
/// assert_eq!(cfg.threads, 0);      // 0 = one worker per core
/// assert!(cfg.prune_dominance);    // exact pruning is on by default
/// assert!(cfg.prune_bound);
/// assert!(cfg.shared_incumbent);
/// assert!(cfg.kernel_caps);        // memoized kernel is on by default
///
/// // Struct-update syntax is the idiomatic way to tweak one knob:
/// let quick = OptimizerConfig { kappa: 2, bid_levels: 3, ..cfg };
/// assert_eq!(quick.slack, cfg.slack);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// κ: maximum number of circle groups used simultaneously (paper
    /// default 4, from the Section 5.2 study).
    pub kappa: usize,
    /// Cap on the bid grid size per group. The actual depth per group is
    /// the paper's `log₂ H` scaling — `⌈log₂(H_i / min_i)⌉ + 1` halvings
    /// span the observed price range — bounded by this cap, so calm
    /// groups stay cheap to search and spiky ones reach their plateau.
    pub bid_levels: u32,
    /// Slack reserved for checkpoint/recovery in on-demand selection
    /// (paper default 20%).
    pub slack: f64,
    /// Grid shape.
    pub grid: GridKind,
    /// Guard factor for an extra grid point above the historical maximum
    /// price (robustness against plateau drift beyond the training
    /// window); `None` keeps the paper's pure `H/2^l` grid.
    pub top_margin: Option<f64>,
    /// When set, ablate Theorem 1: instead of `F = φ(P)`, search this many
    /// checkpoint-interval values per group (multiplies the search space).
    pub interval_grid: Option<u32>,
    /// Extension beyond the paper: require, in addition to the expected-
    /// time constraint, that the probability of *some* circle group
    /// completing on spot is at least this (`p_all_fail ≤ 1 − q`). The
    /// paper's `E[Time] ≤ Deadline` admits plans that miss the deadline on
    /// a large fraction of runs; this knob trades expected cost for
    /// per-run deadline reliability. `None` reproduces the paper.
    pub min_spot_success: Option<f64>,
    /// Worker threads for the subset search: `0` = one per available
    /// core, `1` = sequential. The result is identical at any setting.
    pub threads: usize,
    /// Drop per-group options whose only difference from a surviving
    /// higher-bid option is the bid itself (DESIGN.md §8.1). Exact: the
    /// returned plan, evaluation, and tie-breaks are unchanged. Off
    /// reproduces the raw enumeration (the `evaluations_performed` count
    /// shrinks with the filter on, since dominated options are never
    /// enumerated).
    #[serde(default = "default_true")]
    pub prune_dominance: bool,
    /// Branch-and-bound inside the odometer walk: skip bid-vector
    /// suffixes whose admissible cost lower bound (DESIGN.md §8.2) cannot
    /// beat the incumbent. Exact and count-preserving —
    /// `evaluations_performed` still reports the full enumeration size.
    #[serde(default = "default_true")]
    pub prune_bound: bool,
    /// Share the incumbent cost bound across worker threads through a
    /// relaxed `AtomicU64` (DESIGN.md §8.3). Only strengthens
    /// `prune_bound`'s pruning; the deterministic total-order merge keeps
    /// the result identical at any thread count.
    #[serde(default = "default_true")]
    pub shared_incumbent: bool,
    /// Run the memoized caps-table + SoA evaluation kernel
    /// ([`KernelMode::CapsSoa`], DESIGN.md §14). Bit-identical to the
    /// scalar kernel — the memo reuses the scalar summation order — so
    /// `false` (the `--no-kernel-caps` ablation) only changes speed.
    #[serde(default = "default_true")]
    pub kernel_caps: bool,
}

fn default_true() -> bool {
    true
}

impl OptimizerConfig {
    /// Start building a config from the defaults. Preferred over growing
    /// positional constructors as knobs accumulate:
    ///
    /// ```
    /// use sompi_core::OptimizerConfig;
    ///
    /// let cfg = OptimizerConfig::builder().kappa(2).bid_levels(3).build();
    /// assert_eq!(cfg.kappa, 2);
    /// assert_eq!(cfg.slack, OptimizerConfig::default().slack);
    /// ```
    pub fn builder() -> OptimizerConfigBuilder {
        OptimizerConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`OptimizerConfig`]; see [`OptimizerConfig::builder`].
#[derive(Debug, Clone)]
pub struct OptimizerConfigBuilder {
    config: OptimizerConfig,
}

impl OptimizerConfigBuilder {
    /// Set κ, the maximum simultaneous circle groups.
    pub fn kappa(mut self, kappa: usize) -> Self {
        self.config.kappa = kappa;
        self
    }

    /// Set the per-group bid grid cap.
    pub fn bid_levels(mut self, levels: u32) -> Self {
        self.config.bid_levels = levels;
        self
    }

    /// Set the on-demand selection slack.
    pub fn slack(mut self, slack: f64) -> Self {
        self.config.slack = slack;
        self
    }

    /// Set the bid grid shape.
    pub fn grid(mut self, grid: GridKind) -> Self {
        self.config.grid = grid;
        self
    }

    /// Set (or clear) the above-maximum guard grid point.
    pub fn top_margin(mut self, margin: Option<f64>) -> Self {
        self.config.top_margin = margin;
        self
    }

    /// Set (or clear) the Theorem-1 ablation interval grid.
    pub fn interval_grid(mut self, grid: Option<u32>) -> Self {
        self.config.interval_grid = grid;
        self
    }

    /// Set (or clear) the minimum spot-success probability constraint.
    pub fn min_spot_success(mut self, q: Option<f64>) -> Self {
        self.config.min_spot_success = q;
        self
    }

    /// Set the worker thread count (0 = one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Toggle the bid-collapse dominance filter.
    pub fn prune_dominance(mut self, on: bool) -> Self {
        self.config.prune_dominance = on;
        self
    }

    /// Toggle branch-and-bound pruning.
    pub fn prune_bound(mut self, on: bool) -> Self {
        self.config.prune_bound = on;
        self
    }

    /// Toggle the cross-worker shared incumbent bound.
    pub fn shared_incumbent(mut self, on: bool) -> Self {
        self.config.shared_incumbent = on;
        self
    }

    /// Toggle the memoized caps-table + SoA evaluation kernel.
    pub fn kernel_caps(mut self, on: bool) -> Self {
        self.config.kernel_caps = on;
        self
    }

    /// Finish building.
    pub fn build(self) -> OptimizerConfig {
        self.config
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            kappa: 4,
            bid_levels: 12,
            slack: DEFAULT_SLACK,
            grid: GridKind::Logarithmic,
            top_margin: Some(1.25),
            interval_grid: None,
            min_spot_success: None,
            threads: 0,
            prune_dominance: true,
            prune_bound: true,
            shared_incumbent: true,
            kernel_caps: true,
        }
    }
}

/// The optimizer's output: the chosen plan, its model evaluation, and how
/// many candidate configurations were evaluated (the search-space metric
/// of Section 4.2.2).
///
/// The count always includes the pure on-demand incumbent, so it is at
/// least 1 even when no spot option is viable:
///
/// ```
/// use sompi_core::{OptimizedPlan, Plan, OnDemandOption, evaluate};
/// use ec2_market::instance::InstanceTypeId;
///
/// let od = OnDemandOption {
///     instance_type: InstanceTypeId(0),
///     instances: 4,
///     exec_hours: 10.0,
///     unit_price: 0.25,
///     recovery_hours: 0.1,
/// };
/// let opt = OptimizedPlan {
///     plan: Plan::on_demand_only(od),
///     evaluation: evaluate(&[], &od),
///     evaluations_performed: 1,
/// };
/// assert!(opt.plan.groups.is_empty());
/// assert!(opt.evaluations_performed >= 1);
/// // 2014 hourly billing: 10 whole hours × $0.25 × 4 instances.
/// assert_eq!(opt.evaluation.expected_cost, 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedPlan {
    /// The selected plan.
    pub plan: Plan,
    /// Model evaluation of the selected plan.
    pub evaluation: Evaluation,
    /// Number of full plan evaluations performed during the search.
    pub evaluations_performed: u64,
}

/// A worker's best candidate so far, carrying enough to compare under the
/// total candidate order and to rebuild the winning plan once at the end.
struct Candidate {
    feasible: bool,
    eval: Evaluation,
    /// Bid vector in subset order — the deterministic tie-breaker.
    bids: Vec<f64>,
    /// Indices into `problem.candidates` (the chosen subset).
    subset: Vec<usize>,
    /// Odometer position: per-slot index into each group's option list.
    idx: Vec<usize>,
    /// Unique enumeration ordinal `(global subset index, odometer step)`
    /// — the final tie-breaker that makes the candidate order total.
    ordinal: (usize, u64),
}

/// One worker's search result: its incumbent plus the plain `u64`
/// counters the hot loop maintains (evaluations, feasible hits, subsets
/// walked). These merge at join into the total evaluation count and, when
/// a recorder wants Detail, one `SubsetEvaluated` event per worker.
struct WorkerStats {
    evaluations: u64,
    feasible: u64,
    subsets: u64,
    /// Enumerated positions the branch-and-bound walk never evaluated
    /// (already counted inside `evaluations`, which reports the full
    /// enumeration size for count determinism).
    skipped: u64,
    /// Times this worker published a strictly better feasible cost to
    /// the incumbent bound (shared or local).
    tightenings: u64,
    /// Wall nanoseconds this worker spent inside the per-subset candidate
    /// loops (evaluation-dominated; timed per subset, not per evaluation,
    /// so the hot loop carries no timer calls).
    kernel_nanos: u64,
    best: Option<Candidate>,
}

/// `assess_options` output: the per-group option lists, the enumeration
/// counters, and — when a warm start with table reuse was attached — the
/// per-group bucket-table cache accounting.
struct AssessedOptions {
    options: Vec<Vec<GroupAssessment>>,
    considered: u64,
    pruned: u64,
    dominated: u64,
    /// Per-group `(id, digest, entries reused, entries rebuilt)`; empty
    /// on cold assessments (no allocation on the cold path).
    table_stats: Vec<(CircleGroupId, u64, u64, u64)>,
}

/// Lexicographic comparison of a candidate's bid vector (iterator form,
/// so the hot path compares without materializing a `Vec`) against an
/// incumbent's stored bids. Shorter vectors order before their extensions.
fn cmp_bids(current: impl Iterator<Item = f64>, incumbent: &[f64]) -> Ordering {
    let mut n = 0usize;
    for b in current {
        match incumbent.get(n) {
            None => return Ordering::Greater,
            Some(inc) => match b.total_cmp(inc) {
                Ordering::Equal => {}
                other => return other,
            },
        }
        n += 1;
    }
    if n < incumbent.len() {
        Ordering::Less
    } else {
        Ordering::Equal
    }
}

/// Whether a freshly evaluated candidate beats the incumbent under the
/// total order: feasible first, then lower expected cost, then the
/// lexicographically *greater* bid vector, then the earlier enumeration
/// ordinal.
///
/// Higher bids win cost ties deliberately: equal modeled cost means the
/// historical window never separates the two bids, and the higher one can
/// only be safer on prices beyond that window. (The bid grids are
/// highest-first, so this also matches the sequential first-seen rule.)
fn beats(
    feasible: bool,
    eval: &Evaluation,
    bids: impl Iterator<Item = f64>,
    ordinal: (usize, u64),
    incumbent: &Candidate,
) -> bool {
    match (feasible, incumbent.feasible) {
        (true, false) => return true,
        (false, true) => return false,
        _ => {}
    }
    match eval.expected_cost.total_cmp(&incumbent.eval.expected_cost) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => match cmp_bids(bids, &incumbent.bids) {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => ordinal < incumbent.ordinal,
        },
    }
}

/// Resolve the configured thread count: `0` = one per available core.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// SOMPI's offline optimizer over one problem + market view.
#[derive(Debug, Clone)]
pub struct TwoLevelOptimizer<'a> {
    problem: &'a Problem,
    view: &'a MarketView,
    config: OptimizerConfig,
}

impl<'a> TwoLevelOptimizer<'a> {
    /// Create an optimizer.
    pub fn new(problem: &'a Problem, view: &'a MarketView, config: OptimizerConfig) -> Self {
        Self {
            problem,
            view,
            config,
        }
    }

    /// Run the full search and return the cheapest feasible plan.
    ///
    /// Equivalent to [`TwoLevelOptimizer::optimize_with`] on an all-no-op
    /// [`PlanContext`]: no event is ever constructed, so the search is
    /// exactly as fast and allocation-free as before instrumentation
    /// existed (asserted by `tests/alloc_guard.rs` and the `opt_speed`
    /// bench). Errors when a candidate group is unknown to the market
    /// view.
    pub fn optimize(&self) -> Result<OptimizedPlan, SompiError> {
        self.optimize_with(&mut PlanContext::new())
    }

    /// Run the full search with everything optional riding in `ctx` (the
    /// same [`PlanContext`] the adaptive planner and [`crate::policy`]
    /// use). Three context fields matter here; the rest are ignored:
    ///
    /// * `ctx.recorder` — emits one `PlanSearchStarted`, one
    ///   `SubsetEvaluated` per worker (Detail level, in worker-index
    ///   order, merged at join), and one `PlanSelected`. The hot
    ///   candidate loop only increments worker-local `u64` counters;
    ///   events are built outside it.
    /// * `ctx.warm` — warm-start state carried from a previous, similar
    ///   search (DESIGN.md §12): the previous plan seeds the incumbent
    ///   bound, its hot subsets are enumerated first, and unchanged
    ///   per-group failure tables are reused. Every layer is
    ///   exactness-preserving — the returned plan is bit-identical to a
    ///   cold search at any thread count — and each is independently
    ///   toggleable on the [`WarmStart`]. Emits one `WarmStartApplied`
    ///   (Summary) per call with warm state attached, plus one
    ///   `BucketTableReused` (Detail) per group whose table cache was
    ///   consulted. The warm seed probe is not counted in
    ///   `evaluations_performed`, which keeps reporting the full
    ///   enumeration size.
    /// * `ctx.pool` — a persistent [`SearchPool`](crate::pool::SearchPool): when present and the
    ///   search is parallel, the chunk jobs run on the pool's resident
    ///   workers instead of spawning fresh threads (one `SearchPoolUsed`
    ///   event per dispatch). Chunking is still derived from
    ///   [`OptimizerConfig::threads`] and the merge still folds
    ///   per-chunk winners in submission order under the total candidate
    ///   order, so the result is bit-identical with or without the pool,
    ///   at any pool size.
    pub fn optimize_with(&self, ctx: &mut PlanContext<'_>) -> Result<OptimizedPlan, SompiError> {
        let recorder = ctx.recorder;
        let mut warm = ctx.warm.as_deref_mut();
        let pool = ctx.pool;
        let od = select_on_demand(
            &self.problem.on_demand,
            self.problem.deadline,
            self.config.slack,
        );
        let assess_timer = PhaseTimer::start();
        let AssessedOptions {
            options,
            considered: options_considered,
            pruned: options_pruned,
            dominated: options_dominated,
            table_stats,
        } = self.assess_options(warm.as_deref_mut())?;
        let assess_secs = assess_timer.elapsed_secs();
        let (mut tables_reused, mut tables_rebuilt) = (0u64, 0u64);
        for &(group, digest, reused, rebuilt) in &table_stats {
            tables_reused += reused;
            tables_rebuilt += rebuilt;
            emit(recorder, TraceLevel::Detail, || Event::BucketTableReused {
                group: group.to_string(),
                digest,
                reused,
                rebuilt,
            });
        }

        // The pure on-demand plan is the incumbent the search must beat.
        let od_eval = evaluate(&[], &od);
        let od_feasible = od_eval.meets(self.problem.deadline);

        // Per-group minimum completion wall, the `w_min` input of the
        // admissible lower bound (DESIGN.md §8.2). Infinite for groups
        // with no viable options (such groups skip their subsets anyway).
        let min_wall: Vec<f64> = options
            .iter()
            .map(|opts| {
                opts.iter()
                    .map(|a| a.completion_wall())
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();

        // The previous window's carry-over, cloned out up front so the
        // warm state itself can be rewritten once this search concludes.
        let warm_prev: Option<PrevWindow> = match warm.as_deref() {
            Some(w) if w.use_plan => w.prev.clone(),
            _ => None,
        };

        // The incumbent cost bound candidates must beat, as IEEE bits
        // (non-negative floats order identically as u64 bits, so
        // `fetch_min` over bits is `fetch_min` over costs). Seeded with
        // the on-demand incumbent when it is feasible — the search only
        // keeps spot candidates that beat it anyway.
        let od_seed_bound = if od_feasible {
            od_eval.expected_cost
        } else {
            f64::INFINITY
        };
        // Warm seed: project the previous window's plan onto the current
        // option grids and evaluate that one candidate. When feasible its
        // cost tightens the bound before the first enumerated candidate —
        // exact, because the seed is an achievable feasible cost, so the
        // strict `lb > bound` prune can never discard the candidate that
        // attains (or beats) it.
        let seed_cost: Option<f64> = warm_prev
            .as_ref()
            .and_then(|p| self.project_seed(&options, &od, &p.plan));
        let seed_bound = match seed_cost {
            Some(c) => od_seed_bound.min(c),
            None => od_seed_bound,
        };
        let shared_bound = AtomicU64::new(seed_bound.to_bits());
        let use_shared = self.config.shared_incumbent && self.config.prune_bound;

        // Precollect the k-subsets (k ascending, lexicographic within k)
        // so they can be chunked across workers with stable global indices.
        let n = self.problem.candidates.len();
        let k_max = self.config.kappa.min(n);
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut acc = Vec::new();
        for k in 1..=k_max {
            enumerate_subsets(n, k, 0, &mut acc, &mut |s: &[usize]| {
                subsets.push(s.to_vec());
            });
        }

        // Enumeration order over `subsets`: canonical (identity) when
        // cold, hot-first when the previous window handed over its top
        // subsets. Only the *visit order* changes — every subset is still
        // walked, ordinals stay canonical, and candidates compare under
        // the same total order — so the selected plan is bit-identical
        // either way; a hot prefix that contains the winner merely
        // tightens the incumbent bound sooner.
        let (order, hot_applied): (Vec<usize>, u32) = match &warm_prev {
            Some(p) if !p.hot_subsets.is_empty() => {
                hot_first_order(&subsets, &p.hot_subsets, &self.problem.candidates)
            }
            _ => ((0..subsets.len()).collect(), 0),
        };

        let threads = resolve_threads(self.config.threads).min(order.len().max(1));
        emit(recorder, TraceLevel::Summary, || Event::PlanSearchStarted {
            candidates: n as u32,
            kappa: self.config.kappa as u32,
            bid_levels: self.config.bid_levels,
            threads: threads as u32,
            subsets: subsets.len() as u64,
            options_considered,
            options_pruned,
            deadline_hours: self.problem.deadline,
            options_dominated,
        });

        let search_timer = PhaseTimer::start();
        let results: Vec<WorkerStats> = if threads <= 1 {
            let shared = use_shared.then_some(&shared_bound);
            vec![self.search_chunk(
                &options, &od, &subsets, &order, &min_wall, shared, seed_bound,
            )]
        } else if let Some(pool) = pool {
            // Persistent dispatch: same chunking, same submission-order
            // merge — the resident workers only replace the spawn/join.
            let search_seq = pool.begin_search();
            let chunk = order.len().div_ceil(threads);
            let mut tasks: Vec<Box<dyn FnOnce() -> WorkerStats + Send + '_>> =
                Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = (lo + chunk).min(order.len());
                if lo >= hi {
                    break;
                }
                let chunk_order = &order[lo..hi];
                let subsets = &subsets;
                let options = &options;
                let od = &od;
                let min_wall = &min_wall;
                let shared = use_shared.then_some(&shared_bound);
                tasks.push(Box::new(move || {
                    self.search_chunk(
                        options,
                        od,
                        subsets,
                        chunk_order,
                        min_wall,
                        shared,
                        seed_bound,
                    )
                }));
            }
            let jobs = tasks.len() as u32;
            emit(recorder, TraceLevel::Summary, || Event::SearchPoolUsed {
                pool_id: pool.id(),
                search_seq,
                workers: pool.workers() as u32,
                jobs,
            });
            pool.run(tasks)
        } else {
            let chunk = order.len().div_ceil(threads);
            crossbeam::thread::scope(|s| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = (lo + chunk).min(order.len());
                    if lo >= hi {
                        break;
                    }
                    let chunk_order = &order[lo..hi];
                    let subsets = &subsets;
                    let options = &options;
                    let od = &od;
                    let min_wall = &min_wall;
                    let shared = use_shared.then_some(&shared_bound);
                    handles.push(s.spawn(move |_| {
                        self.search_chunk(
                            options,
                            od,
                            subsets,
                            chunk_order,
                            min_wall,
                            shared,
                            seed_bound,
                        )
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("search worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope failed")
        };

        let search_secs = search_timer.elapsed_secs();

        // Per-worker counters surface as Detail events in worker-index
        // order — the deterministic per-worker view of the search.
        for (worker, stats) in results.iter().enumerate() {
            emit(recorder, TraceLevel::Detail, || Event::SubsetEvaluated {
                worker: worker as u32,
                subsets: stats.subsets,
                evaluations: stats.evaluations,
                feasible: stats.feasible,
                best_cost: stats
                    .best
                    .as_ref()
                    .filter(|c| c.feasible)
                    .map(|c| c.eval.expected_cost),
                phi_intervals: stats
                    .best
                    .as_ref()
                    .map(|c| {
                        c.subset
                            .iter()
                            .zip(&c.idx)
                            .map(|(&g, &i)| options[g][i].decision.ckpt_interval)
                            .collect()
                    })
                    .unwrap_or_default(),
                skipped: stats.skipped,
            });
        }

        // Deterministic merge: worker-local winners fold under the same
        // total order the workers used, so chunking cannot change the
        // result, and the evaluation counters sum to the serial count.
        let mut evaluations: u64 = 1; // the on-demand incumbent
        let mut evals_skipped: u64 = 0;
        let mut bound_tightenings: u64 = 0;
        let mut kernel_nanos: u64 = 0;
        let mut best: Option<Candidate> = None;
        for stats in results {
            evaluations += stats.evaluations;
            evals_skipped += stats.skipped;
            bound_tightenings += stats.tightenings;
            kernel_nanos += stats.kernel_nanos;
            if let Some(c) = stats.best {
                let replace = match &best {
                    None => true,
                    Some(b) => beats(c.feasible, &c.eval, c.bids.iter().copied(), c.ordinal, b),
                };
                if replace {
                    best = Some(c);
                }
            }
        }

        // The winning spot candidate must still beat the on-demand
        // incumbent — strictly, as in the sequential algorithm, so ties
        // keep the simpler on-demand plan.
        let spot = best.filter(|c| match (c.feasible, od_feasible) {
            (true, false) => true,
            (false, true) => false,
            _ => c.eval.expected_cost < od_eval.expected_cost,
        });
        let (plan, evaluation, winner_subset) = match spot {
            Some(c) => {
                let plan = Plan {
                    groups: c
                        .subset
                        .iter()
                        .zip(&c.idx)
                        .map(|(&g, &i)| {
                            let a = &options[g][i];
                            (a.group, a.decision)
                        })
                        .collect(),
                    on_demand: od,
                };
                (plan, c.eval, Some(c.subset))
            }
            None => (Plan::on_demand_only(od), od_eval, None),
        };
        let source = if winner_subset.is_some() {
            "spot"
        } else {
            "on-demand"
        };

        // Hand this window's outcome to the next search and surface the
        // warm-start summary. The hot-subset ranking is computed from the
        // per-subset lower-bound sums — thread-count-independent, unlike
        // any ranking derived from worker incumbent trajectories.
        if let Some(w) = warm {
            if w.use_plan {
                let hot = rank_hot_subsets(
                    &subsets,
                    &options,
                    &min_wall,
                    winner_subset.as_deref(),
                    &self.problem.candidates,
                );
                w.prev = Some(PrevWindow {
                    plan: plan.clone(),
                    hot_subsets: hot,
                });
            }
            emit(recorder, TraceLevel::Summary, || Event::WarmStartApplied {
                seeded: seed_cost.is_some(),
                seed_cost,
                hot_subsets: hot_applied,
                tables_reused,
                tables_rebuilt,
            });
        }

        emit(recorder, TraceLevel::Summary, || Event::PlanSelected {
            source: source.to_string(),
            groups: plan.groups.len() as u32,
            expected_cost: evaluation.expected_cost,
            expected_time: evaluation.expected_time,
            p_all_fail: evaluation.p_all_fail,
            slack: self.config.slack,
            evaluations,
            assess_secs,
            search_secs,
            evals_skipped,
            bound_tightenings,
            evals_per_sec: if search_secs > 0.0 {
                evaluations as f64 / search_secs
            } else {
                0.0
            },
            kernel_nanos,
        });
        Ok(OptimizedPlan {
            plan,
            evaluation,
            evaluations_performed: evaluations,
        })
    }

    /// Project the previous window's plan onto the current option grids —
    /// match each plan group to a current candidate by circle-group id and
    /// to the grid option with the nearest bid (ties to the higher bid) —
    /// and evaluate that single candidate. Returns its expected cost when
    /// it is feasible under the current deadline and chance constraint;
    /// `None` when any group no longer exists, has no options, or the
    /// projected candidate is infeasible (an infeasible cost must never
    /// enter the bound — pruning against it would not be exact).
    fn project_seed(
        &self,
        options: &[Vec<GroupAssessment>],
        od: &OnDemandOption,
        prev: &Plan,
    ) -> Option<f64> {
        if prev.groups.is_empty() {
            return None;
        }
        let mut refs: Vec<&GroupAssessment> = Vec::with_capacity(prev.groups.len());
        for (g, d) in &prev.groups {
            let gi = self.problem.candidates.iter().position(|c| c.id == g.id)?;
            let opts = &options[gi];
            let mut best: Option<(f64, usize)> = None;
            for (i, a) in opts.iter().enumerate() {
                let diff = (a.decision.bid - d.bid).abs();
                let better = match &best {
                    None => true,
                    Some((bd, bi)) => match diff.total_cmp(bd) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => a.decision.bid > opts[*bi].decision.bid,
                    },
                };
                if better {
                    best = Some((diff, i));
                }
            }
            refs.push(&opts[best?.1]);
        }
        let eval = evaluate(&refs, od);
        let feasible = eval.meets(self.problem.deadline)
            && self
                .config
                .min_spot_success
                .map(|q| eval.p_all_fail <= 1.0 - q)
                .unwrap_or(true);
        feasible.then_some(eval.expected_cost)
    }

    /// Assess every candidate (group, bid level, interval) option once, up
    /// front. Index: `options[g]` = list of viable assessments for group
    /// `g`.
    ///
    /// Options that cannot complete before the deadline even when they
    /// survive are dropped: the runtime switches to on-demand rather than
    /// ride a replica past the deadline, so crediting such a group as a
    /// completion winner would let rare deadline-missing patterns
    /// subsidize `E[Cost]`.
    ///
    /// Also returns `(considered, pruned, dominated)`: how many (group,
    /// bid, interval) options were assessed, how many the deadline prune
    /// discarded — the numerator/denominator of the report's prune rate —
    /// and how many survivors the exact bid-collapse dominance filter
    /// ([`crate::pareto::collapse_bid_dominated`]) removed afterwards.
    ///
    /// With a [`WarmStart`] carrying table reuse, the per-`(group, bid)`
    /// integer failure counts behind `φ(P)` and each assessment come from
    /// the warm cache when the group's history digest is unchanged. A
    /// count table recorded at horizon `H` truncates to any `h ≤ H`
    /// bit-identically (asserted by `ec2_market`'s truncation tests), so
    /// the produced assessments are exactly the cold path's. Errors when
    /// a candidate group is unknown to the view.
    fn assess_options(
        &self,
        mut warm: Option<&mut WarmStart>,
    ) -> Result<AssessedOptions, SompiError> {
        let mut considered = 0u64;
        let mut pruned = 0u64;
        let mut dominated = 0u64;
        let mut table_stats: Vec<(CircleGroupId, u64, u64, u64)> = Vec::new();
        let mut options: Vec<Vec<GroupAssessment>> =
            Vec::with_capacity(self.problem.candidates.len());
        for group in &self.problem.candidates {
            let est = self.view.try_estimator(group.id)?;
            let max_bid = est.max_price();
            if !(max_bid.is_finite() && max_bid > 0.0) {
                options.push(Vec::new());
                continue;
            }
            let min_price = est.expected_spot_price().min_price().max(1e-6);
            let span_levels = ((max_bid / min_price).log2().ceil() as u32 + 1).max(2);
            let levels = span_levels.min(self.config.bid_levels.max(2));
            let mut grid = match self.config.grid {
                GridKind::Logarithmic => BidGrid::logarithmic(max_bid, levels),
                GridKind::Uniform => BidGrid::uniform(max_bid, levels),
            };
            if let Some(m) = self.config.top_margin {
                grid = grid.with_top_margin(m);
            }
            // Bucket-table cache handle for this group, with per-group
            // reuse accounting. A drifted digest drops every cached bid
            // entry for the group — per-entry invalidation, nothing else.
            let mut cache = match warm.as_deref_mut() {
                Some(w) if w.use_tables => {
                    let digest = est.digest();
                    let tables = w
                        .tables
                        .entry(group.id)
                        .or_insert_with(|| GroupTables::new(digest));
                    if tables.digest != digest {
                        tables.digest = digest;
                        tables.by_bid.clear();
                    }
                    Some((tables, 0u64, 0u64))
                }
                _ => None,
            };
            let mut opts = Vec::new();
            for &bid in grid.bids() {
                match cache.as_mut() {
                    None => {
                        // Cold path: straight off the estimator — the
                        // pre-warm-start algorithm, kept verbatim.
                        let intervals: Vec<f64> = match self.config.interval_grid {
                            None => vec![optimal_interval_for(group, bid, est)],
                            Some(n) => (1..=n)
                                .map(|j| group.exec_hours * j as f64 / n as f64)
                                .collect(),
                        };
                        for interval in intervals {
                            let decision = GroupDecision {
                                bid,
                                ckpt_interval: interval,
                            };
                            considered += 1;
                            if let Some(a) = GroupAssessment::assess_with(*group, decision, est) {
                                if a.completion_wall() <= self.problem.deadline {
                                    opts.push(a);
                                } else {
                                    pruned += 1;
                                }
                            }
                        }
                    }
                    Some((tables, reused, rebuilt)) => {
                        // Warm path: φ and the assessment are served from
                        // the cached counts, recomputed only when no entry
                        // exists or a larger horizon is needed.
                        let mut fresh = false;
                        let h_phi = phi_horizon(group);
                        let entry = tables.by_bid.entry(bid.to_bits()).or_insert_with(|| {
                            fresh = true;
                            BidTable {
                                counts: est.failure_counts(bid, h_phi),
                                launch_delay: est.expected_launch_delay(bid),
                            }
                        });
                        if entry.counts.horizon() < h_phi {
                            entry.counts = est.failure_counts(bid, h_phi);
                            fresh = true;
                        }
                        let intervals: Vec<f64> = match self.config.interval_grid {
                            None => vec![interval_from_mttf(
                                group,
                                entry.counts.to_fn(h_phi).mean_time_to_failure(),
                            )],
                            Some(n) => (1..=n)
                                .map(|j| group.exec_hours * j as f64 / n as f64)
                                .collect(),
                        };
                        for interval in intervals {
                            let decision = GroupDecision {
                                bid,
                                ckpt_interval: interval,
                            };
                            considered += 1;
                            let h = assessment_horizon(group, &decision);
                            if entry.counts.horizon() < h {
                                entry.counts = est.failure_counts(bid, h);
                                fresh = true;
                            }
                            if let Some(price) = est.expected_spot_price().mean_below(bid) {
                                // `to_fn` hands over an owned function, so
                                // its bucket vector moves straight into
                                // the assessment — no per-option clone.
                                let f = entry.counts.to_fn(h);
                                let survival = f.survival();
                                let a = GroupAssessment::from_parts(
                                    *group,
                                    decision,
                                    price,
                                    survival,
                                    f.into_buckets(),
                                    entry.launch_delay,
                                );
                                if a.completion_wall() <= self.problem.deadline {
                                    opts.push(a);
                                } else {
                                    pruned += 1;
                                }
                            }
                        }
                        if fresh {
                            *rebuilt += 1;
                        } else {
                            *reused += 1;
                        }
                    }
                }
            }
            if let Some((tables, reused, rebuilt)) = cache {
                table_stats.push((group.id, tables.digest, reused, rebuilt));
            }
            if self.config.prune_dominance {
                // Exact: grids enumerate bids highest-first, which is the
                // descending order the collapse requires, and a dropped
                // option's higher-bid twin wins every tie it could have
                // won (DESIGN.md §8.1).
                dominated += crate::pareto::collapse_bid_dominated(&mut opts);
            }
            options.push(opts);
        }
        Ok(AssessedOptions {
            options,
            considered,
            pruned,
            dominated,
            table_stats,
        })
    }

    /// Search one contiguous chunk of the enumeration order with
    /// worker-local state: a reused borrow buffer, a reused odometer, an
    /// [`EvalScratch`], a local incumbent, and a local evaluation counter.
    /// `order` is this worker's slice of the global visit order; each
    /// entry is the subset's *canonical* index into `subsets`, which is
    /// what enters the enumeration ordinal — so ordinals are globally
    /// unique, chunk-invariant, and independent of any warm-start
    /// reordering of the visit sequence.
    ///
    /// With [`OptimizerConfig::prune_bound`] on, each subset runs a
    /// branch-and-bound walk (DESIGN.md §8.2): the slots' options are
    /// rank-sorted by the admissible per-group lower bound
    /// [`GroupAssessment::cost_lower_bound`], and whole rank suffixes
    /// whose summed lower bound exceeds the incumbent cost are skipped
    /// without evaluation. `shared_bound` (cost as IEEE bits) is the
    /// cross-worker incumbent when [`OptimizerConfig::shared_incumbent`]
    /// is on; otherwise the worker prunes against a local bound seeded
    /// from `od_seed_bound`. Pruning never removes a candidate that could
    /// win under the total order, so the returned incumbent — and with it
    /// the merged [`OptimizedPlan`] — is bit-identical to the exhaustive
    /// walk. The reported `evaluations` counter always carries the full
    /// enumeration size; actually-skipped positions are tallied in
    /// `skipped` for observability only.
    #[allow(clippy::too_many_arguments)]
    fn search_chunk(
        &self,
        options: &[Vec<GroupAssessment>],
        od: &OnDemandOption,
        subsets: &[Vec<usize>],
        order: &[usize],
        min_wall: &[f64],
        shared_bound: Option<&AtomicU64>,
        seed_bound: f64,
    ) -> WorkerStats {
        let mut evaluations = 0u64;
        let mut feasible_hits = 0u64;
        let mut subsets_walked = 0u64;
        let mut skipped = 0u64;
        let mut tightenings = 0u64;
        let mut kernel_nanos = 0u64;
        let mut best: Option<Candidate> = None;
        let mut refs: Vec<&GroupAssessment> = Vec::new();
        let mut idx: Vec<usize> = Vec::new();
        let mut scratch = EvalScratch::with_mode(if self.config.kernel_caps {
            KernelMode::CapsSoa
        } else {
            KernelMode::Scalar
        });
        let auto_kernel = self.config.kernel_caps;
        // Branch-and-bound scratch, reused across subsets: per-slot
        // `(lower bound, original option index)` pairs rank-sorted
        // ascending, slot cardinalities, mixed-radix step weights, and
        // prefix sums of the per-slot minimum bounds.
        let mut lb_sorted: Vec<Vec<(f64, usize)>> = Vec::new();
        let mut lens: Vec<usize> = Vec::new();
        let mut weights: Vec<u64> = Vec::new();
        let mut head_min: Vec<f64> = Vec::new();
        // Worker-local incumbent bound, used when no shared bound is
        // installed. Either way the bound only ever holds feasible
        // candidate costs (or the on-demand / warm-start seed), so strict
        // pruning against it is exact (DESIGN.md §8.3).
        let mut local_bound = seed_bound;

        for &subset_ordinal in order {
            let chosen = &subsets[subset_ordinal];
            if chosen.iter().any(|&g| options[g].is_empty()) {
                continue;
            }
            subsets_walked += 1;
            if auto_kernel {
                // Pick the faster memoized kernel for this subset size
                // (CapsMemo below the SoA crossover, CapsSoa at or above
                // — BENCH_kernel.json, DESIGN.md §14). Bit-identical
                // results either way; `--no-kernel-caps` pins Scalar.
                scratch.set_mode(KernelMode::auto_for(chosen.len()));
            }
            let product: u64 = chosen
                .iter()
                .map(|&g| options[g].len() as u64)
                .fold(1, u64::saturating_mul);
            // Count the full enumeration up front: the published
            // `evaluations_performed` stays the paper's search-space
            // metric, identical at any thread count and unchanged by how
            // many positions branch-and-bound manages to skip.
            evaluations += product;
            let subset_timer = std::time::Instant::now();

            if !self.config.prune_bound {
                // Exhaustive odometer walk — the pre-pruning algorithm,
                // kept verbatim as the ablation baseline.
                idx.clear();
                idx.resize(chosen.len(), 0);
                let mut step = 0u64;
                let mut exhausted = false;
                while !exhausted {
                    refs.clear();
                    refs.extend(chosen.iter().zip(&idx).map(|(&g, &i)| &options[g][i]));
                    let eval = evaluate_with_scratch(&refs, od, &mut scratch);
                    let feasible = eval.meets(self.problem.deadline)
                        && self
                            .config
                            .min_spot_success
                            .map(|q| eval.p_all_fail <= 1.0 - q)
                            .unwrap_or(true);
                    feasible_hits += feasible as u64;
                    let ordinal = (subset_ordinal, step);
                    let replace = match &best {
                        None => true,
                        Some(b) => beats(
                            feasible,
                            &eval,
                            refs.iter().map(|a| a.decision.bid),
                            ordinal,
                            b,
                        ),
                    };
                    if replace {
                        best = Some(Candidate {
                            feasible,
                            eval,
                            bids: refs.iter().map(|a| a.decision.bid).collect(),
                            subset: chosen.clone(),
                            idx: idx.clone(),
                            ordinal,
                        });
                    }
                    step += 1;
                    // Advance odometer.
                    let mut pos = 0;
                    loop {
                        if pos == idx.len() {
                            exhausted = true;
                            break;
                        }
                        idx[pos] += 1;
                        if idx[pos] < options[chosen[pos]].len() {
                            break;
                        }
                        idx[pos] = 0;
                        pos += 1;
                    }
                }
                kernel_nanos += subset_timer.elapsed().as_nanos() as u64;
                continue;
            }

            // Branch-and-bound walk over the same combinations.
            let m = chosen.len();
            let w_min = chosen
                .iter()
                .map(|&g| min_wall[g])
                .fold(f64::INFINITY, f64::min);
            while lb_sorted.len() < m {
                lb_sorted.push(Vec::new());
            }
            lens.clear();
            weights.clear();
            head_min.clear();
            let mut weight = 1u64;
            let mut head = 0.0f64;
            for (slot, &g) in chosen.iter().enumerate() {
                let opts = &options[g];
                let lb = &mut lb_sorted[slot];
                lb.clear();
                lb.extend(
                    opts.iter()
                        .enumerate()
                        .map(|(i, a)| (a.cost_lower_bound(w_min), i)),
                );
                // Unstable sort is deterministic here: the (bound, index)
                // keys are unique by index.
                lb.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                lens.push(opts.len());
                weights.push(weight);
                weight = weight.saturating_mul(opts.len() as u64);
                head_min.push(head);
                head += lb[0].0;
            }
            head_min.push(head); // head_min[m] = Σ per-slot minima

            // `idx` now holds per-slot *ranks* into `lb_sorted`, not
            // original option indices; ordinals and the stored candidate
            // are translated back through `lb_sorted[slot][rank].1`.
            idx.clear();
            idx.resize(m, 0);
            let mut evaluated_here = 0u64;
            let mut exhausted = false;
            while !exhausted {
                let bound = match shared_bound {
                    Some(s) => f64::from_bits(s.load(AtomicOrdering::Relaxed)),
                    None => local_bound,
                };
                let lb_total: f64 = (0..m).map(|s| lb_sorted[s][idx[s]].0).sum();
                if lb_total > bound {
                    // Prune. Advance at the highest slot `h` whose fixed
                    // tail is already hopeless: every combination keeping
                    // ranks `h..` has lower bound ≥ head_min[h] +
                    // suffix(h), so all of them can be skipped at once.
                    // The condition is not monotone in the slot (the
                    // suffix shrinks while the head grows), so scan all
                    // slots; `h = 0` degenerates to skipping just the
                    // current combination.
                    let mut h = 0usize;
                    let mut suffix = lb_total;
                    for s in 1..=m {
                        suffix -= lb_sorted[s - 1][idx[s - 1]].0;
                        if head_min[s] + suffix > bound {
                            h = s;
                        }
                    }
                    if h == m {
                        // Even the all-minima combination is over bound:
                        // the rest of this subset is hopeless.
                        exhausted = true;
                    } else {
                        for r in idx.iter_mut().take(h) {
                            *r = 0;
                        }
                        let mut pos = h;
                        loop {
                            if pos == m {
                                exhausted = true;
                                break;
                            }
                            idx[pos] += 1;
                            if idx[pos] < lens[pos] {
                                break;
                            }
                            idx[pos] = 0;
                            pos += 1;
                        }
                    }
                    continue;
                }
                refs.clear();
                refs.extend(
                    chosen
                        .iter()
                        .enumerate()
                        .map(|(slot, &g)| &options[g][lb_sorted[slot][idx[slot]].1]),
                );
                let eval = evaluate_with_scratch(&refs, od, &mut scratch);
                evaluated_here += 1;
                let feasible = eval.meets(self.problem.deadline)
                    && self
                        .config
                        .min_spot_success
                        .map(|q| eval.p_all_fail <= 1.0 - q)
                        .unwrap_or(true);
                feasible_hits += feasible as u64;
                if feasible {
                    // Publish the cost to the incumbent bound. Only
                    // feasible costs enter it, so pruning can never drop
                    // a candidate that would beat a feasible incumbent.
                    let bits = eval.expected_cost.to_bits();
                    match shared_bound {
                        Some(s) => {
                            let prev = s.fetch_min(bits, AtomicOrdering::Relaxed);
                            if bits < prev {
                                tightenings += 1;
                            }
                        }
                        None => {
                            if eval.expected_cost < local_bound {
                                local_bound = eval.expected_cost;
                                tightenings += 1;
                            }
                        }
                    }
                }
                // The enumeration step the unsorted odometer would have
                // assigned this combination — ordinals must not depend
                // on the lower-bound sort.
                let step = (0..m).fold(0u64, |acc, slot| {
                    acc.saturating_add(
                        weights[slot].saturating_mul(lb_sorted[slot][idx[slot]].1 as u64),
                    )
                });
                let ordinal = (subset_ordinal, step);
                let replace = match &best {
                    None => true,
                    Some(b) => beats(
                        feasible,
                        &eval,
                        refs.iter().map(|a| a.decision.bid),
                        ordinal,
                        b,
                    ),
                };
                if replace {
                    best = Some(Candidate {
                        feasible,
                        eval,
                        bids: refs.iter().map(|a| a.decision.bid).collect(),
                        subset: chosen.clone(),
                        idx: (0..m).map(|slot| lb_sorted[slot][idx[slot]].1).collect(),
                        ordinal,
                    });
                }
                // Advance the rank odometer (rank 0 fastest).
                let mut pos = 0;
                loop {
                    if pos == m {
                        exhausted = true;
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < lens[pos] {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
            }
            skipped += product.saturating_sub(evaluated_here);
            kernel_nanos += subset_timer.elapsed().as_nanos() as u64;
        }
        WorkerStats {
            evaluations,
            feasible: feasible_hits,
            subsets: subsets_walked,
            skipped,
            tightenings,
            kernel_nanos,
            best,
        }
    }
}

/// Visit every `k`-subset of `0..n` (lexicographic), calling `f` with each.
/// Visits nothing when `k > n` (instead of underflowing the loop bound).
fn enumerate_subsets(
    n: usize,
    k: usize,
    start: usize,
    acc: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if acc.len() == k {
        f(acc);
        return;
    }
    let remaining = k - acc.len();
    if remaining > n.saturating_sub(start) {
        return; // not enough elements left — covers k > n
    }
    for i in start..=(n - remaining) {
        acc.push(i);
        enumerate_subsets(n, k, i + 1, acc, f);
        acc.pop();
    }
}

/// Build the hot-first visit order: the carried-over subsets (resolved
/// from circle-group ids to canonical subset indices) first, in their
/// carried rank order, then every remaining subset in canonical order.
/// Carried subsets that no longer resolve — a group left the candidate
/// list, or the subset shape changed — are silently skipped. Returns the
/// order plus how many hot subsets were actually applied.
fn hot_first_order(
    subsets: &[Vec<usize>],
    hot: &[Vec<CircleGroupId>],
    candidates: &[CircleGroup],
) -> (Vec<usize>, u32) {
    let id_to_idx: BTreeMap<CircleGroupId, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, g)| (g.id, i))
        .collect();
    let pos: BTreeMap<&[usize], usize> = subsets
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_slice(), i))
        .collect();
    let mut order = Vec::with_capacity(subsets.len());
    let mut taken = vec![false; subsets.len()];
    for ids in hot {
        let Some(mut idxs) = ids
            .iter()
            .map(|id| id_to_idx.get(id).copied())
            .collect::<Option<Vec<usize>>>()
        else {
            continue;
        };
        idxs.sort_unstable();
        if let Some(&i) = pos.get(idxs.as_slice()) {
            if !taken[i] {
                taken[i] = true;
                order.push(i);
            }
        }
    }
    let hot_applied = order.len() as u32;
    for (i, t) in taken.iter().enumerate() {
        if !t {
            order.push(i);
        }
    }
    (order, hot_applied)
}

/// Rank the subsets a finished search hands to the next window: the
/// winning subset first, then the best runners-up by the sum of per-slot
/// minimum [`GroupAssessment::cost_lower_bound`]s (ascending; ties break
/// to the lower canonical index), capped at [`HOT_SUBSETS`]. Derived from
/// the assessed options alone — not from worker incumbent trajectories —
/// so the ranking is identical at every thread count.
fn rank_hot_subsets(
    subsets: &[Vec<usize>],
    options: &[Vec<GroupAssessment>],
    min_wall: &[f64],
    winner: Option<&[usize]>,
    candidates: &[CircleGroup],
) -> Vec<Vec<CircleGroupId>> {
    // A subset's `w_min` is attained by one of its members, so the only
    // walls that can occur are the entries of `min_wall`. Precompute each
    // group's option-minimum bound at every such wall once — the subset
    // loop below would otherwise recompute the same inner minimum
    // `C(K, k)` times per group.
    let mut walls: Vec<f64> = min_wall.to_vec();
    walls.sort_unstable_by(f64::total_cmp);
    walls.dedup_by(|a, b| a.to_bits() == b.to_bits());
    let wall_index = |w: f64| {
        walls
            .binary_search_by(|x| x.total_cmp(&w))
            .expect("w_min is an entry of min_wall")
    };
    let lb_at: Vec<Vec<f64>> = options
        .iter()
        .map(|opts| {
            walls
                .iter()
                .map(|&w| {
                    opts.iter()
                        .map(|a| a.cost_lower_bound(w))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        })
        .collect();
    let mut ranked: Vec<(f64, usize)> = subsets
        .iter()
        .enumerate()
        .filter(|(_, s)| s.iter().all(|&g| !options[g].is_empty()))
        .map(|(i, s)| {
            let w_min = s.iter().map(|&g| min_wall[g]).fold(f64::INFINITY, f64::min);
            let at = wall_index(w_min);
            let lb: f64 = s.iter().map(|&g| lb_at[g][at]).sum();
            (lb, i)
        })
        .collect();
    ranked.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let ids = |s: &[usize]| -> Vec<CircleGroupId> { s.iter().map(|&g| candidates[g].id).collect() };
    let mut hot: Vec<Vec<CircleGroupId>> = Vec::with_capacity(HOT_SUBSETS);
    if let Some(w) = winner {
        hot.push(ids(w));
    }
    for &(_, i) in &ranked {
        if hot.len() >= HOT_SUBSETS {
            break;
        }
        if winner.is_some_and(|w| w == subsets[i].as_slice()) {
            continue;
        }
        hot.push(ids(&subsets[i]));
    }
    hot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    pub(super) fn setup() -> (SpotMarket, Problem, MarketView) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 13), 200.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(
            &market,
            &profile,
            3.0, // loose-ish deadline vs ~1h baseline
            Some(&types),
            S3Store::paper_2014(),
        );
        let view = MarketView::from_market(&market, 0.0, 48.0);
        (market, problem, view)
    }

    fn small_config() -> OptimizerConfig {
        OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn finds_a_feasible_plan_cheaper_than_on_demand() {
        let (_, problem, view) = setup();
        let opt = TwoLevelOptimizer::new(&problem, &view, small_config())
            .optimize()
            .unwrap();
        assert!(opt.evaluation.meets(problem.deadline));
        assert!(!opt.plan.groups.is_empty(), "expected a spot plan");
        let od_cost = select_on_demand(&problem.on_demand, problem.deadline, 0.2).full_cost();
        assert!(
            opt.evaluation.expected_cost < od_cost,
            "spot plan {} vs on-demand {}",
            opt.evaluation.expected_cost,
            od_cost
        );
    }

    #[test]
    fn respects_kappa() {
        let (_, problem, view) = setup();
        for kappa in 1..=3 {
            let cfg = OptimizerConfig {
                kappa,
                bid_levels: 2,
                ..OptimizerConfig::default()
            };
            let opt = TwoLevelOptimizer::new(&problem, &view, cfg)
                .optimize()
                .unwrap();
            assert!(opt.plan.replication_degree() <= kappa);
        }
    }

    #[test]
    fn more_bid_levels_never_hurt() {
        let (_, problem, view) = setup();
        let cheap = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig {
                kappa: 2,
                bid_levels: 2,
                // Dominance collapse can shrink a richer grid back down to
                // the same option count; this test pins the *raw* space.
                prune_dominance: false,
                ..OptimizerConfig::default()
            },
        )
        .optimize()
        .unwrap();
        let rich = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig {
                kappa: 2,
                bid_levels: 5,
                prune_dominance: false,
                ..OptimizerConfig::default()
            },
        )
        .optimize()
        .unwrap();
        // The 5-level grid contains the 2-level grid, so the optimum can
        // only improve.
        assert!(rich.evaluation.expected_cost <= cheap.evaluation.expected_cost + 1e-9);
        assert!(rich.evaluations_performed > cheap.evaluations_performed);
    }

    #[test]
    fn impossible_deadline_falls_back_to_fastest_on_demand() {
        let (_, mut problem, view) = setup();
        problem.deadline = 0.01;
        let opt = TwoLevelOptimizer::new(&problem, &view, small_config())
            .optimize()
            .unwrap();
        // Nothing is feasible; the incumbent comparison still returns the
        // cheapest-in-expectation configuration, and the plan must carry
        // the fastest on-demand fallback.
        let fastest = problem.baseline();
        assert_eq!(opt.plan.on_demand.instance_type, fastest.instance_type);
    }

    #[test]
    fn search_space_matches_formula() {
        // evaluations ≈ 1 (OD) + Σ_k C(K,k)·L^k for the chosen κ and L.
        // Loose deadline so no option is pruned for deadline viability and
        // the count reflects the raw search space.
        let (_, mut problem, view) = setup();
        problem.deadline = 100.0;
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 2,
            top_margin: None,
            ..OptimizerConfig::default()
        };
        let opt = TwoLevelOptimizer::new(&problem, &view, cfg)
            .optimize()
            .unwrap();
        let k_total = problem.candidates.len() as u64; // 12
        let l = 2u64;
        let expected = 1 + k_total * l + k_total * (k_total - 1) / 2 * l * l;
        // Unlaunchable bids can reduce the count slightly.
        assert!(
            opt.evaluations_performed <= expected && opt.evaluations_performed > expected / 2,
            "evals {} vs expected {expected}",
            opt.evaluations_performed
        );
    }

    #[test]
    fn interval_ablation_multiplies_search() {
        let (_, problem, view) = setup();
        let phi = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig {
                kappa: 1,
                bid_levels: 3,
                ..OptimizerConfig::default()
            },
        )
        .optimize()
        .unwrap();
        let grid = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig {
                kappa: 1,
                bid_levels: 3,
                interval_grid: Some(5),
                ..OptimizerConfig::default()
            },
        )
        .optimize()
        .unwrap();
        assert!(grid.evaluations_performed > 3 * phi.evaluations_performed);
        // Exhaustive-interval search can be at most marginally better than
        // φ(P) (Theorem 1's premise) — allow it to win, but not by much
        // relative to the on-demand scale.
        assert!(
            grid.evaluation.expected_cost
                <= phi.evaluation.expected_cost + 0.05 * problem.baseline_cost()
        );
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0usize;
        let mut acc = Vec::new();
        enumerate_subsets(5, 3, 0, &mut acc, &mut |s| {
            assert_eq!(s.len(), 3);
            count += 1;
        });
        assert_eq!(count, 10); // C(5,3)
    }

    #[test]
    fn subset_enumeration_handles_k_larger_than_n() {
        // Regression: `k > n` used to underflow `n - remaining` (usize)
        // and panic; it must simply visit nothing.
        let mut count = 0usize;
        let mut acc = Vec::new();
        enumerate_subsets(3, 5, 0, &mut acc, &mut |_| count += 1);
        assert_eq!(count, 0);
        assert!(acc.is_empty());
        // And n = 0 with k > 0 likewise.
        enumerate_subsets(0, 1, 0, &mut acc, &mut |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let (_, problem, view) = setup();
        let base = OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..OptimizerConfig::default()
        };
        let serial =
            TwoLevelOptimizer::new(&problem, &view, OptimizerConfig { threads: 1, ..base })
                .optimize()
                .unwrap();
        for threads in [2usize, 8] {
            let parallel =
                TwoLevelOptimizer::new(&problem, &view, OptimizerConfig { threads, ..base })
                    .optimize()
                    .unwrap();
            assert_eq!(serial, parallel, "threads={threads} diverged from serial");
        }
    }

    #[test]
    fn bid_vector_tiebreak_is_a_total_order() {
        assert_eq!(
            cmp_bids([0.5, 0.25].into_iter(), &[0.5, 0.25]),
            Ordering::Equal
        );
        assert_eq!(
            cmp_bids([0.5, 0.2].into_iter(), &[0.5, 0.25]),
            Ordering::Less
        );
        assert_eq!(
            cmp_bids([0.5, 0.3].into_iter(), &[0.5, 0.25]),
            Ordering::Greater
        );
        // A prefix orders before its extensions.
        assert_eq!(cmp_bids([0.5].into_iter(), &[0.5, 0.25]), Ordering::Less);
        assert_eq!(cmp_bids([0.5, 0.25].into_iter(), &[0.5]), Ordering::Greater);
    }

    #[test]
    fn warm_start_never_changes_the_selected_plan() {
        let (_, problem, view) = setup();
        let opt = TwoLevelOptimizer::new(&problem, &view, small_config());
        let cold = opt.optimize().unwrap();
        let mut warm = WarmStart::new();
        // First warm window has nothing carried; subsequent ones replay
        // with a seed, hot-first order, and cached tables.
        for pass in 0..3 {
            let got = opt
                .optimize_with(&mut PlanContext::new().with_warm(&mut warm))
                .unwrap();
            assert_eq!(cold, got, "warm pass {pass} diverged");
        }
        assert!(warm.has_plan());
        assert!(warm.cached_groups() > 0);
        // Each ablation arm also matches bit-for-bit.
        for (plan_on, tables_on) in [(true, false), (false, true), (false, false)] {
            let mut w = WarmStart::new()
                .with_plan_carryover(plan_on)
                .with_table_reuse(tables_on);
            for _ in 0..2 {
                let got = opt
                    .optimize_with(&mut PlanContext::new().with_warm(&mut w))
                    .unwrap();
                assert_eq!(cold, got, "plan={plan_on} tables={tables_on}");
            }
        }
    }

    #[test]
    fn warm_start_matches_across_thread_counts() {
        let (_, problem, view) = setup();
        let base = small_config();
        let run = |threads: usize| {
            let cfg = OptimizerConfig { threads, ..base };
            let opt = TwoLevelOptimizer::new(&problem, &view, cfg);
            let mut warm = WarmStart::new();
            let first = opt
                .optimize_with(&mut PlanContext::new().with_warm(&mut warm))
                .unwrap();
            let second = opt
                .optimize_with(&mut PlanContext::new().with_warm(&mut warm))
                .unwrap();
            (first, second)
        };
        let serial = run(1);
        for threads in [2usize, 8] {
            assert_eq!(serial, run(threads), "threads={threads} diverged");
        }
    }

    #[test]
    fn hot_first_order_is_a_permutation_led_by_the_carryover() {
        let (_, problem, view) = setup();
        let opt = TwoLevelOptimizer::new(&problem, &view, small_config());
        let mut warm = WarmStart::new();
        opt.optimize_with(&mut PlanContext::new().with_warm(&mut warm))
            .unwrap();
        let prev = warm.prev.as_ref().expect("a plan must be carried");
        assert!(!prev.hot_subsets.is_empty());
        assert!(prev.hot_subsets.len() <= HOT_SUBSETS);
        // Resolve the carried subsets against a fresh enumeration: every
        // subset index must appear exactly once, hot prefix first.
        let n = problem.candidates.len();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut acc = Vec::new();
        for k in 1..=small_config().kappa.min(n) {
            enumerate_subsets(n, k, 0, &mut acc, &mut |s: &[usize]| {
                subsets.push(s.to_vec());
            });
        }
        let (order, applied) = hot_first_order(&subsets, &prev.hot_subsets, &problem.candidates);
        assert_eq!(applied as usize, prev.hot_subsets.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..subsets.len()).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod chance_constraint_tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    #[test]
    fn min_spot_success_tightens_plans() {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 97), 200.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let mut problem = crate::problem::Problem::build(
            &market,
            &profile,
            f64::MAX,
            Some(&types),
            S3Store::paper_2014(),
        );
        problem.deadline = problem.baseline_time() * 1.5;
        let view = crate::view::MarketView::from_market(&market, 0.0, 48.0);

        let base = OptimizerConfig {
            kappa: 2,
            bid_levels: 6,
            ..Default::default()
        };
        let strict = OptimizerConfig {
            min_spot_success: Some(0.999),
            ..base
        };
        let free = TwoLevelOptimizer::new(&problem, &view, base)
            .optimize()
            .unwrap();
        let safe = TwoLevelOptimizer::new(&problem, &view, strict)
            .optimize()
            .unwrap();
        // The chance constraint can only restrict the feasible set: cost
        // may not improve, and the chosen plan must satisfy it.
        assert!(safe.evaluation.expected_cost >= free.evaluation.expected_cost - 1e-9);
        assert!(safe.evaluation.p_all_fail <= 0.001 + 1e-9);
    }
}

#[cfg(test)]
mod assess_options_tests {
    use super::tests::setup;
    use super::*;
    use ec2_market::market::CircleGroupId;

    /// Grid size `assess_options` should enumerate for one group,
    /// mirroring its span/levels/margin arithmetic.
    fn expected_grid_len(view: &MarketView, cfg: &OptimizerConfig, id: CircleGroupId) -> u64 {
        let max_bid = view.max_bid(id).unwrap();
        assert!(max_bid > 0.0, "fixture group must be launchable");
        let min_price = view.min_price(id).unwrap().max(1e-6);
        let span_levels = ((max_bid / min_price).log2().ceil() as u32 + 1).max(2);
        let levels = span_levels.min(cfg.bid_levels.max(2));
        // `with_top_margin` prepends one guard point above `H_i`.
        levels as u64 + cfg.top_margin.map_or(0, |_| 1)
    }

    #[test]
    fn assess_options_pins_considered_and_pruned_counters() {
        let (_, problem, view) = setup();
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            prune_dominance: false,
            ..OptimizerConfig::default()
        };
        let opt = TwoLevelOptimizer::new(&problem, &view, cfg);
        let a = opt.assess_options(None).unwrap();
        let (options, considered, pruned, dominated) =
            (a.options, a.considered, a.pruned, a.dominated);

        // One candidate decision per grid point (φ fixes the interval, so
        // the interval dimension contributes a factor of exactly 1).
        let expected: u64 = problem
            .candidates
            .iter()
            .map(|g| expected_grid_len(&view, &cfg, g.id))
            .sum();
        assert_eq!(considered, expected);
        assert_eq!(dominated, 0, "collapse disabled, nothing may be dropped");
        let kept: u64 = options.iter().map(|o| o.len() as u64).sum();
        assert!(kept > 0, "loose deadline must keep some options");
        // Every considered decision is kept, deadline-pruned, or was
        // unassessable (no launch at that bid) — never double-counted.
        assert!(kept + pruned <= considered);

        // A margin-free grid loses exactly the guard point per group.
        let no_margin = OptimizerConfig {
            top_margin: None,
            ..cfg
        };
        let considered_nm = TwoLevelOptimizer::new(&problem, &view, no_margin)
            .assess_options(None)
            .unwrap()
            .considered;
        assert_eq!(considered_nm, considered - problem.candidates.len() as u64);
    }

    #[test]
    fn assess_options_deadline_pruning_shows_in_counter() {
        let (_, mut problem, view) = setup();
        // A deadline just above the fastest group's wall forces the slower
        // end of every grid out, without emptying the space.
        problem.deadline = 1.2;
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            prune_dominance: false,
            ..OptimizerConfig::default()
        };
        let a = TwoLevelOptimizer::new(&problem, &view, cfg)
            .assess_options(None)
            .unwrap();
        let (options, considered, pruned) = (a.options, a.considered, a.pruned);
        let kept: u64 = options.iter().map(|o| o.len() as u64).sum();
        assert!(pruned > 0, "tight deadline must prune something");
        assert!(kept + pruned <= considered);
    }

    #[test]
    fn assess_options_dominated_counter_matches_kept_delta() {
        let (_, problem, view) = setup();
        let base = OptimizerConfig {
            kappa: 2,
            bid_levels: 6,
            ..OptimizerConfig::default()
        };
        let raw = OptimizerConfig {
            prune_dominance: false,
            ..base
        };
        let a_raw = TwoLevelOptimizer::new(&problem, &view, raw)
            .assess_options(None)
            .unwrap();
        let (opts_raw, considered_raw, pruned_raw, dominated_raw) = (
            a_raw.options,
            a_raw.considered,
            a_raw.pruned,
            a_raw.dominated,
        );
        let a_dom = TwoLevelOptimizer::new(&problem, &view, base)
            .assess_options(None)
            .unwrap();
        let (opts_dom, considered_dom, pruned_dom, dominated_dom) = (
            a_dom.options,
            a_dom.considered,
            a_dom.pruned,
            a_dom.dominated,
        );
        // The collapse runs after assessment: considered/pruned are
        // untouched, and `dominated` accounts exactly for the kept delta.
        assert_eq!(considered_raw, considered_dom);
        assert_eq!(pruned_raw, pruned_dom);
        assert_eq!(dominated_raw, 0);
        let kept_raw: u64 = opts_raw.iter().map(|o| o.len() as u64).sum();
        let kept_dom: u64 = opts_dom.iter().map(|o| o.len() as u64).sum();
        assert_eq!(kept_raw - kept_dom, dominated_dom);
    }

    #[test]
    fn assess_options_skips_unlaunchable_groups() {
        use ec2_market::failure::FailureEstimator;
        use ec2_market::trace::SpotTrace;
        use std::collections::BTreeMap;

        let (market, problem, _) = setup();
        // Rebuild the view, zeroing out one candidate's price history: a
        // group whose observed max price is 0 has no bid range at all.
        let dead = problem.candidates[0].id;
        let zero_trace = SpotTrace::new(1.0 / 12.0, vec![0.0; 12 * 48]);
        let estimators: BTreeMap<_, _> = market
            .groups()
            .map(|id| {
                let est = if id == dead {
                    FailureEstimator::from_window(zero_trace.window(0.0, 48.0))
                } else {
                    market.try_estimator(id, 0.0, 48.0).unwrap()
                };
                (id, est)
            })
            .collect();
        let view = MarketView::from_estimators(estimators);

        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            ..OptimizerConfig::default()
        };
        let opt = TwoLevelOptimizer::new(&problem, &view, cfg);
        let a = opt.assess_options(None).unwrap();
        let (options, considered) = (a.options, a.considered);
        assert!(options[0].is_empty(), "dead group must offer no options");
        // The dead group contributes nothing to `considered` either.
        let expected: u64 = problem.candidates[1..]
            .iter()
            .map(|g| expected_grid_len(&view, &cfg, g.id))
            .sum();
        assert_eq!(considered, expected);
        // The optimizer still produces a plan from the remaining groups.
        let out = opt.optimize().unwrap();
        assert!(out.plan.groups.iter().all(|(g, _)| g.id != dead));
    }
}
