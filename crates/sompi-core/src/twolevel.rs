//! The two-level optimization algorithm — Sections 4.2 and 4.4.
//!
//! Level 1 (dimension reduction): for every candidate bid price the
//! checkpoint interval is fixed to `φ(P)` ([`crate::phi`]), so the search
//! runs over bid vectors only (Theorem 1 preserves optimality).
//!
//! Level 2 (logarithmic search): each group's bid is drawn from the
//! `O(log₂ H)` grid of [`crate::logsearch`], shrinking the bid space from
//! `P^K` to `(log₂ H)^K`.
//!
//! On top, the implementation-level optimization of Section 4.4: only
//! `k ≤ κ` of the `K` candidate circle groups are actually used; all
//! `C(K, k)` subsets are tried and the cheapest feasible configuration
//! wins. The optimizer also always considers the pure on-demand plan, so
//! it degrades gracefully when no spot configuration meets the deadline.

use crate::cost::{evaluate, Evaluation, GroupAssessment};
use crate::logsearch::BidGrid;
use crate::model::{GroupDecision, Plan};
use crate::ondemand::{select_on_demand, DEFAULT_SLACK};
use crate::phi::optimal_interval;
use crate::problem::Problem;
use crate::view::MarketView;
use serde::{Deserialize, Serialize};

/// Which bid grid shape to search (logarithmic is the paper's; uniform
/// exists for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GridKind {
    /// `H / 2^l` — the paper's logarithmic search.
    #[default]
    Logarithmic,
    /// Equally spaced, same cardinality.
    Uniform,
}

/// Optimizer knobs, with the paper's defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// κ: maximum number of circle groups used simultaneously (paper
    /// default 4, from the Section 5.2 study).
    pub kappa: usize,
    /// Cap on the bid grid size per group. The actual depth per group is
    /// the paper's `log₂ H` scaling — `⌈log₂(H_i / min_i)⌉ + 1` halvings
    /// span the observed price range — bounded by this cap, so calm
    /// groups stay cheap to search and spiky ones reach their plateau.
    pub bid_levels: u32,
    /// Slack reserved for checkpoint/recovery in on-demand selection
    /// (paper default 20%).
    pub slack: f64,
    /// Grid shape.
    pub grid: GridKind,
    /// Guard factor for an extra grid point above the historical maximum
    /// price (robustness against plateau drift beyond the training
    /// window); `None` keeps the paper's pure `H/2^l` grid.
    pub top_margin: Option<f64>,
    /// When set, ablate Theorem 1: instead of `F = φ(P)`, search this many
    /// checkpoint-interval values per group (multiplies the search space).
    pub interval_grid: Option<u32>,
    /// Extension beyond the paper: require, in addition to the expected-
    /// time constraint, that the probability of *some* circle group
    /// completing on spot is at least this (`p_all_fail ≤ 1 − q`). The
    /// paper's `E[Time] ≤ Deadline` admits plans that miss the deadline on
    /// a large fraction of runs; this knob trades expected cost for
    /// per-run deadline reliability. `None` reproduces the paper.
    pub min_spot_success: Option<f64>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            kappa: 4,
            bid_levels: 12,
            slack: DEFAULT_SLACK,
            grid: GridKind::Logarithmic,
            top_margin: Some(1.25),
            interval_grid: None,
            min_spot_success: None,
        }
    }
}

/// The optimizer's output: the chosen plan, its model evaluation, and how
/// many candidate configurations were evaluated (the search-space metric
/// of Section 4.2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedPlan {
    /// The selected plan.
    pub plan: Plan,
    /// Model evaluation of the selected plan.
    pub evaluation: Evaluation,
    /// Number of full plan evaluations performed during the search.
    pub evaluations_performed: u64,
}

/// SOMPI's offline optimizer over one problem + market view.
#[derive(Debug, Clone)]
pub struct TwoLevelOptimizer<'a> {
    problem: &'a Problem,
    view: &'a MarketView,
    config: OptimizerConfig,
}

impl<'a> TwoLevelOptimizer<'a> {
    /// Create an optimizer.
    pub fn new(problem: &'a Problem, view: &'a MarketView, config: OptimizerConfig) -> Self {
        Self { problem, view, config }
    }

    /// Run the full search and return the cheapest feasible plan.
    pub fn optimize(&self) -> OptimizedPlan {
        let od = select_on_demand(&self.problem.on_demand, self.problem.deadline, self.config.slack);

        // Candidate assessments per (group, bid level, interval option).
        // Index: options[g] = list of viable (decision, assessment).
        let mut options: Vec<Vec<GroupAssessment>> = Vec::with_capacity(self.problem.candidates.len());
        for group in &self.problem.candidates {
            let max_bid = self.view.max_bid(group.id);
            if !(max_bid.is_finite() && max_bid > 0.0) {
                options.push(Vec::new());
                continue;
            }
            let min_price = self.view.min_price(group.id).max(1e-6);
            let span_levels = ((max_bid / min_price).log2().ceil() as u32 + 1).max(2);
            let levels = span_levels.min(self.config.bid_levels.max(2));
            let mut grid = match self.config.grid {
                GridKind::Logarithmic => BidGrid::logarithmic(max_bid, levels),
                GridKind::Uniform => BidGrid::uniform(max_bid, levels),
            };
            if let Some(m) = self.config.top_margin {
                grid = grid.with_top_margin(m);
            }
            let mut opts = Vec::new();
            for &bid in grid.bids() {
                let intervals: Vec<f64> = match self.config.interval_grid {
                    None => vec![optimal_interval(group, bid, self.view)],
                    Some(n) => (1..=n)
                        .map(|j| group.exec_hours * j as f64 / n as f64)
                        .collect(),
                };
                for interval in intervals {
                    let decision = GroupDecision { bid, ckpt_interval: interval };
                    if let Some(a) = GroupAssessment::assess(*group, decision, self.view) {
                        opts.push(a);
                    }
                }
            }
            options.push(opts);
        }

        // Start from the pure on-demand plan as the incumbent.
        let mut evaluations: u64 = 1;
        let od_plan = Plan::on_demand_only(od);
        let od_eval = evaluate(&[], &od);
        let mut best: (Plan, Evaluation) = (od_plan, od_eval);
        let mut best_feasible = od_eval.meets(self.problem.deadline);

        // Enumerate k-subsets of candidate groups for k = 1..=κ.
        let k_max = self.config.kappa.min(self.problem.candidates.len());
        let n = self.problem.candidates.len();
        let mut subset = Vec::new();
        for k in 1..=k_max {
            enumerate_subsets(n, k, 0, &mut subset, &mut |chosen: &[usize]| {
                // Odometer over each chosen group's option list.
                if chosen.iter().any(|&g| options[g].is_empty()) {
                    return;
                }
                let mut idx = vec![0usize; chosen.len()];
                loop {
                    let assessed: Vec<GroupAssessment> = chosen
                        .iter()
                        .zip(&idx)
                        .map(|(&g, &i)| options[g][i].clone())
                        .collect();
                    let eval = evaluate(&assessed, &od);
                    evaluations += 1;
                    let feasible = eval.meets(self.problem.deadline)
                        && self
                            .config
                            .min_spot_success
                            .map(|q| eval.p_all_fail <= 1.0 - q)
                            .unwrap_or(true);
                    let better = match (feasible, best_feasible) {
                        (true, false) => true,
                        (true, true) => eval.expected_cost < best.1.expected_cost,
                        (false, false) => eval.expected_cost < best.1.expected_cost,
                        (false, true) => false,
                    };
                    if better {
                        let plan = Plan {
                            groups: assessed
                                .iter()
                                .map(|a| (a.group, a.decision))
                                .collect(),
                            on_demand: od,
                        };
                        best = (plan, eval);
                        best_feasible = feasible;
                    }
                    // Advance odometer.
                    let mut pos = 0;
                    loop {
                        if pos == idx.len() {
                            return;
                        }
                        idx[pos] += 1;
                        if idx[pos] < options[chosen[pos]].len() {
                            break;
                        }
                        idx[pos] = 0;
                        pos += 1;
                    }
                }
            });
        }

        OptimizedPlan {
            plan: best.0,
            evaluation: best.1,
            evaluations_performed: evaluations,
        }
    }
}

/// Visit every `k`-subset of `0..n` (lexicographic), calling `f` with each.
fn enumerate_subsets(
    n: usize,
    k: usize,
    start: usize,
    acc: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if acc.len() == k {
        f(acc);
        return;
    }
    let remaining = k - acc.len();
    for i in start..=(n - remaining) {
        acc.push(i);
        enumerate_subsets(n, k, i + 1, acc, f);
        acc.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    fn setup() -> (SpotMarket, Problem, MarketView) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market =
            SpotMarket::generate(cat, &TraceGenerator::new(prof, 13), 200.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(
            &market,
            &profile,
            3.0, // loose-ish deadline vs ~1h baseline
            Some(&types),
            S3Store::paper_2014(),
        );
        let view = MarketView::from_market(&market, 0.0, 48.0);
        (market, problem, view)
    }

    fn small_config() -> OptimizerConfig {
        OptimizerConfig { kappa: 2, bid_levels: 3, ..OptimizerConfig::default() }
    }

    #[test]
    fn finds_a_feasible_plan_cheaper_than_on_demand() {
        let (_, problem, view) = setup();
        let opt = TwoLevelOptimizer::new(&problem, &view, small_config()).optimize();
        assert!(opt.evaluation.meets(problem.deadline));
        assert!(!opt.plan.groups.is_empty(), "expected a spot plan");
        let od_cost = select_on_demand(&problem.on_demand, problem.deadline, 0.2).full_cost();
        assert!(
            opt.evaluation.expected_cost < od_cost,
            "spot plan {} vs on-demand {}",
            opt.evaluation.expected_cost,
            od_cost
        );
    }

    #[test]
    fn respects_kappa() {
        let (_, problem, view) = setup();
        for kappa in 1..=3 {
            let cfg = OptimizerConfig { kappa, bid_levels: 2, ..OptimizerConfig::default() };
            let opt = TwoLevelOptimizer::new(&problem, &view, cfg).optimize();
            assert!(opt.plan.replication_degree() <= kappa);
        }
    }

    #[test]
    fn more_bid_levels_never_hurt() {
        let (_, problem, view) = setup();
        let cheap = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig { kappa: 2, bid_levels: 2, ..OptimizerConfig::default() },
        )
        .optimize();
        let rich = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig { kappa: 2, bid_levels: 5, ..OptimizerConfig::default() },
        )
        .optimize();
        // The 5-level grid contains the 2-level grid, so the optimum can
        // only improve.
        assert!(rich.evaluation.expected_cost <= cheap.evaluation.expected_cost + 1e-9);
        assert!(rich.evaluations_performed > cheap.evaluations_performed);
    }

    #[test]
    fn impossible_deadline_falls_back_to_fastest_on_demand() {
        let (_, mut problem, view) = setup();
        problem.deadline = 0.01;
        let opt = TwoLevelOptimizer::new(&problem, &view, small_config()).optimize();
        // Nothing is feasible; the incumbent comparison still returns the
        // cheapest-in-expectation configuration, and the plan must carry
        // the fastest on-demand fallback.
        let fastest = problem.baseline();
        assert_eq!(opt.plan.on_demand.instance_type, fastest.instance_type);
    }

    #[test]
    fn search_space_matches_formula() {
        // evaluations ≈ 1 (OD) + Σ_k C(K,k)·L^k for the chosen κ and L.
        let (_, problem, view) = setup();
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 2,
            top_margin: None,
            ..OptimizerConfig::default()
        };
        let opt = TwoLevelOptimizer::new(&problem, &view, cfg).optimize();
        let k_total = problem.candidates.len() as u64; // 12
        let l = 2u64;
        let expected = 1 + k_total * l + k_total * (k_total - 1) / 2 * l * l;
        // Unlaunchable bids can reduce the count slightly.
        assert!(
            opt.evaluations_performed <= expected
                && opt.evaluations_performed > expected / 2,
            "evals {} vs expected {expected}",
            opt.evaluations_performed
        );
    }

    #[test]
    fn interval_ablation_multiplies_search() {
        let (_, problem, view) = setup();
        let phi = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig { kappa: 1, bid_levels: 3, ..OptimizerConfig::default() },
        )
        .optimize();
        let grid = TwoLevelOptimizer::new(
            &problem,
            &view,
            OptimizerConfig {
                kappa: 1,
                bid_levels: 3,
                interval_grid: Some(5),
                ..OptimizerConfig::default()
            },
        )
        .optimize();
        assert!(grid.evaluations_performed > 3 * phi.evaluations_performed);
        // Exhaustive-interval search can be at most marginally better than
        // φ(P) (Theorem 1's premise) — allow it to win, but not by much
        // relative to the on-demand scale.
        assert!(
            grid.evaluation.expected_cost
                <= phi.evaluation.expected_cost + 0.05 * problem.baseline_cost()
        );
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0usize;
        let mut acc = Vec::new();
        enumerate_subsets(5, 3, 0, &mut acc, &mut |s| {
            assert_eq!(s.len(), 3);
            count += 1;
        });
        assert_eq!(count, 10); // C(5,3)
    }
}

#[cfg(test)]
mod chance_constraint_tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::SpotMarket;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;

    #[test]
    fn min_spot_success_tightens_plans() {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market =
            SpotMarket::generate(cat, &TraceGenerator::new(prof, 97), 200.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> =
            ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
                .iter()
                .map(|n| market.catalog().by_name(n).unwrap())
                .collect();
        let mut problem = crate::problem::Problem::build(
            &market,
            &profile,
            f64::MAX,
            Some(&types),
            S3Store::paper_2014(),
        );
        problem.deadline = problem.baseline_time() * 1.5;
        let view = crate::view::MarketView::from_market(&market, 0.0, 48.0);

        let base = OptimizerConfig { kappa: 2, bid_levels: 6, ..Default::default() };
        let strict = OptimizerConfig { min_spot_success: Some(0.999), ..base };
        let free = TwoLevelOptimizer::new(&problem, &view, base).optimize();
        let safe = TwoLevelOptimizer::new(&problem, &view, strict).optimize();
        // The chance constraint can only restrict the feasible set: cost
        // may not improve, and the chosen plan must satisfy it.
        assert!(safe.evaluation.expected_cost >= free.evaluation.expected_cost - 1e-9);
        assert!(safe.evaluation.p_all_fail <= 0.001 + 1e-9);
    }
}
