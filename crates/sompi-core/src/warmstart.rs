//! Warm-start state for incremental re-optimization (DESIGN.md §12).
//!
//! The adaptive loop (Algorithm 1, §4.3) re-runs the two-level search
//! every window over a problem that usually changed only slightly: the
//! remaining work shrank, and the market view slid forward by one window.
//! A [`WarmStart`] carries three things from one search to the next, all
//! exactness-preserving — the selected plan stays bit-identical to a cold
//! search at every thread count:
//!
//! 1. **Incumbent seed** — the previous window's plan, projected onto the
//!    current option grids and re-evaluated. When feasible, its cost seeds
//!    the shared branch-and-bound incumbent so pruning bites from the very
//!    first candidate instead of ramping up.
//! 2. **Hot-first subset order** — the previous window's winning subset
//!    plus its top-ranked runners-up are enumerated first. Only the visit
//!    order changes; every subset is still walked and the total candidate
//!    order decides, so the result cannot change — but the incumbent bound
//!    tightens sooner, compounding with the seed.
//! 3. **Bucket-table reuse** — the integer failure-count tables behind
//!    `φ(P)` and each [`GroupAssessment`](crate::cost::GroupAssessment)
//!    are cached per `(group, bid)` and keyed by a digest of the group's
//!    empirical price history. A table recorded at horizon `H` truncates
//!    to any `h ≤ H` bit-identically (asserted by `ec2_market`'s
//!    truncation tests), so unchanged view entries skip the `O(n·H)`
//!    counting walk entirely; a drifted digest invalidates that group's
//!    entries and nothing else.
//!
//! The layers are independently toggleable (the CLI's `--no-warmstart`
//! and `--no-bucket-reuse` ablation flags); `tests/warmstart_differential.rs`
//! pins warm and cold plans bit-identical across thread counts and
//! ablation settings over a long adaptive study.

use crate::model::Plan;
use crate::Hours;
use ec2_market::failure::FailureCounts;
use ec2_market::market::CircleGroupId;
use std::collections::BTreeMap;

/// How many subsets the previous window hands to the next one as the
/// hot-first prefix of the enumeration order (winner first, then the
/// best-ranked runners-up by summed lower bound).
pub const HOT_SUBSETS: usize = 16;

/// Carry-over from the previous window's search: the plan that seeds the
/// incumbent bound and the subsets enumerated first.
#[derive(Debug, Clone)]
pub(crate) struct PrevWindow {
    /// The previously selected plan (possibly pure on-demand, in which
    /// case it cannot seed the bound but the hot subsets still apply).
    pub(crate) plan: Plan,
    /// Top-ranked subsets as circle-group id lists (id-based so the
    /// carry-over survives candidate reindexing between windows).
    pub(crate) hot_subsets: Vec<Vec<CircleGroupId>>,
}

/// Cached failure tables for one circle group, valid only while the
/// group's empirical price history digest matches.
#[derive(Debug, Clone)]
pub(crate) struct GroupTables {
    /// FNV-1a digest of the price history the tables were counted from.
    pub(crate) digest: u64,
    /// Per-bid entries, keyed by the bid's IEEE-754 bits (bids come off a
    /// deterministic grid, so bit equality is the right identity).
    pub(crate) by_bid: BTreeMap<u64, BidTable>,
}

impl GroupTables {
    pub(crate) fn new(digest: u64) -> Self {
        Self {
            digest,
            by_bid: BTreeMap::new(),
        }
    }
}

/// One cached `(group, bid)` entry: the raw integer failure counts (at
/// the largest horizon requested so far) and the expected launch delay.
#[derive(Debug, Clone)]
pub(crate) struct BidTable {
    pub(crate) counts: FailureCounts,
    pub(crate) launch_delay: Hours,
}

/// Mutable warm-start state threaded through consecutive
/// [`TwoLevelOptimizer::optimize_with`](crate::twolevel::TwoLevelOptimizer::optimize_with)
/// calls. Construct once per adaptive run and thread `ctx.with_warm(&mut
/// state)` into every window's search; leave the context bare (or use
/// `optimize`) for a cold search.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Seed the incumbent bound from the previous plan and enumerate the
    /// previous window's hot subsets first.
    pub(crate) use_plan: bool,
    /// Reuse per-`(group, bid)` failure-count tables across windows.
    pub(crate) use_tables: bool,
    pub(crate) prev: Option<PrevWindow>,
    pub(crate) tables: BTreeMap<CircleGroupId, GroupTables>,
}

impl WarmStart {
    /// Fresh warm-start state with every layer enabled.
    pub fn new() -> Self {
        Self {
            use_plan: true,
            use_tables: true,
            prev: None,
            tables: BTreeMap::new(),
        }
    }

    /// Enable/disable the plan carry-over (incumbent seed + hot-first
    /// order). Disabling drops any carried plan.
    pub fn with_plan_carryover(mut self, on: bool) -> Self {
        self.use_plan = on;
        if !on {
            self.prev = None;
        }
        self
    }

    /// Enable/disable bucket-table reuse. Disabling drops the cache.
    pub fn with_table_reuse(mut self, on: bool) -> Self {
        self.use_tables = on;
        if !on {
            self.tables.clear();
        }
        self
    }

    /// Whether the plan carry-over layer is enabled.
    pub fn plan_carryover(&self) -> bool {
        self.use_plan
    }

    /// Whether the bucket-table layer is enabled.
    pub fn table_reuse(&self) -> bool {
        self.use_tables
    }

    /// Whether a previous window's plan is currently carried.
    pub fn has_plan(&self) -> bool {
        self.prev.is_some()
    }

    /// Number of circle groups with cached failure tables.
    pub fn cached_groups(&self) -> usize {
        self.tables.len()
    }

    /// Drop the carried plan (e.g. after a mid-window group failure makes
    /// the previous window's outcome a poor predictor). The next search
    /// runs with canonical order and the on-demand seed only; the bucket
    /// tables stay (they depend on the market view, not the plan).
    pub fn invalidate_plan(&mut self) {
        self.prev = None;
    }

    /// Drop everything: carried plan and cached tables.
    pub fn clear(&mut self) {
        self.prev = None;
        self.tables.clear();
    }
}

impl Default for WarmStart {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_every_layer() {
        let w = WarmStart::default();
        assert!(w.plan_carryover());
        assert!(w.table_reuse());
        assert!(!w.has_plan());
        assert_eq!(w.cached_groups(), 0);
    }

    #[test]
    fn ablation_toggles_drop_their_state() {
        let w = WarmStart::new()
            .with_plan_carryover(false)
            .with_table_reuse(false);
        assert!(!w.plan_carryover());
        assert!(!w.table_reuse());
        assert!(!w.has_plan());
        assert_eq!(w.cached_groups(), 0);
    }

    #[test]
    fn clear_resets_without_touching_toggles() {
        let mut w = WarmStart::new();
        w.tables.insert(
            CircleGroupId::new(
                ec2_market::instance::InstanceTypeId(0),
                ec2_market::zone::AvailabilityZone::UsEast1a,
            ),
            GroupTables::new(7),
        );
        assert_eq!(w.cached_groups(), 1);
        w.clear();
        assert_eq!(w.cached_groups(), 0);
        assert!(w.plan_carryover() && w.table_reuse());
    }
}
