//! Logarithmic bid-price search grid — Section 4.2.2.
//!
//! The paper: *"we do not search the entire solution space with the same
//! granularity. Instead, as the bid price increases, the interval between
//! searched points is increased"* — i.e. candidate bids are `H / 2^l`.
//! This shrinks the per-group bid space from `O(P)` to `O(log₂ H)` while
//! keeping resolution where it matters: near the low prices where the
//! failure rate changes fastest (the paper's Figure 4 observation).

use crate::Usd;
use serde::{Deserialize, Serialize};

/// A logarithmic grid of candidate bid prices for one circle group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidGrid {
    bids: Vec<Usd>,
}

impl BidGrid {
    /// Build the grid `{H, H/2, H/4, …}` with `levels` points, where `H`
    /// is the highest historical price of the group.
    ///
    /// # Panics
    /// Panics if `levels == 0` or `max_price` is not positive and finite.
    pub fn logarithmic(max_price: Usd, levels: u32) -> Self {
        assert!(levels > 0, "need at least one level");
        assert!(
            max_price.is_finite() && max_price > 0.0,
            "max price must be positive"
        );
        let bids = (0..levels)
            .map(|l| max_price / f64::powi(2.0, l as i32))
            .collect();
        Self { bids }
    }

    /// A uniform grid with the same cardinality, used by the ablation bench
    /// to show why the logarithmic spacing wins.
    pub fn uniform(max_price: Usd, levels: u32) -> Self {
        assert!(levels > 0, "need at least one level");
        assert!(
            max_price.is_finite() && max_price > 0.0,
            "max price must be positive"
        );
        let bids = (1..=levels)
            .rev()
            .map(|l| max_price * l as f64 / levels as f64)
            .collect();
        Self { bids }
    }

    /// Prepend a guard point `factor × max` above the historical maximum.
    ///
    /// Bidding strictly above `H` costs nothing extra in expectation (spot
    /// usage is billed at the market price, and `S_i(P)` is unchanged for
    /// `P ≥ H`) but survives small upward drift of a calm zone's plateau
    /// beyond the training window — the overfitting failure mode of
    /// bidding exactly `H` on a flat trace.
    pub fn with_top_margin(mut self, factor: f64) -> Self {
        assert!(factor > 1.0, "margin factor must exceed 1");
        let top = self.bids[0] * factor;
        self.bids.insert(0, top);
        self
    }

    /// Candidate bids, highest first.
    pub fn bids(&self) -> &[Usd] {
        &self.bids
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.bids.len()
    }

    /// Whether the grid is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.bids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logarithmic_halves() {
        let g = BidGrid::logarithmic(8.0, 4);
        assert_eq!(g.bids(), &[8.0, 4.0, 2.0, 1.0]);
    }

    #[test]
    fn uniform_spacing() {
        let g = BidGrid::uniform(8.0, 4);
        assert_eq!(g.bids(), &[8.0, 6.0, 4.0, 2.0]);
    }

    #[test]
    fn first_point_is_always_h() {
        // The paper: bidding H means "terminated in extremely low
        // probability, which we can ignore" — the grid must include it.
        for levels in 1..10 {
            assert_eq!(BidGrid::logarithmic(3.5, levels).bids()[0], 3.5);
        }
    }

    #[test]
    fn log_grid_is_denser_at_low_prices() {
        let g = BidGrid::logarithmic(100.0, 8);
        let below_10: usize = g.bids().iter().filter(|&&b| b <= 10.0).count();
        let u = BidGrid::uniform(100.0, 8);
        let below_10_uniform: usize = u.bids().iter().filter(|&&b| b <= 10.0).count();
        assert!(below_10 > below_10_uniform);
    }

    #[test]
    fn grid_is_strictly_decreasing_and_positive() {
        let g = BidGrid::logarithmic(5.0, 10);
        for w in g.bids().windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(g.bids().iter().all(|&b| b > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        BidGrid::logarithmic(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_price_panics() {
        BidGrid::logarithmic(0.0, 3);
    }
}

#[cfg(test)]
mod margin_tests {
    use super::*;

    #[test]
    fn top_margin_prepends_guard_point() {
        let g = BidGrid::logarithmic(8.0, 3).with_top_margin(1.25);
        assert_eq!(g.bids(), &[10.0, 8.0, 4.0, 2.0]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn margin_must_exceed_one() {
        let _ = BidGrid::logarithmic(8.0, 3).with_top_margin(1.0);
    }
}
