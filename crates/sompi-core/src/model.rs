//! Plan and decision types — the paper's Table 1 notation as data.

use crate::{Hours, Usd};
use ec2_market::instance::InstanceTypeId;
use ec2_market::market::CircleGroupId;
use serde::{Deserialize, Serialize};

/// A candidate circle group with its application-specific constants:
/// `M_i`, `T_i`, `O_i`, `R_i` from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircleGroup {
    /// Which market this group buys from (instance type × zone).
    pub id: CircleGroupId,
    /// `M_i`: number of spot instances in the group.
    pub instances: u32,
    /// `T_i`: productive execution time of the application on this group,
    /// hours (excludes checkpoint/recovery overheads).
    pub exec_hours: Hours,
    /// `O_i`: overhead of one coordinated checkpoint, hours.
    pub ckpt_overhead_hours: Hours,
    /// `R_i`: overhead of recovering from the latest checkpoint, hours.
    pub recovery_hours: Hours,
}

impl CircleGroup {
    /// Number of checkpoints taken if the group runs `productive` hours at
    /// interval `interval` (the paper's `⌊t_i / F_i⌋`). An interval at or
    /// above `T_i` means checkpointing is disabled.
    pub fn checkpoints_by(&self, productive: Hours, interval: Hours) -> u32 {
        if interval >= self.exec_hours || interval <= 0.0 {
            return 0;
        }
        (productive / interval).floor() as u32
    }

    /// Wall-clock hours at which the group completes the application when
    /// undisturbed: `T_i + O_i · ⌊T_i / F_i⌋`.
    pub fn completion_wall_hours(&self, interval: Hours) -> Hours {
        self.exec_hours
            + self.ckpt_overhead_hours * self.checkpoints_by(self.exec_hours, interval) as f64
    }

    /// Wall-clock hours consumed when the group fails after `productive`
    /// productive hours.
    pub fn wall_at_failure(&self, productive: Hours, interval: Hours) -> Hours {
        productive + self.ckpt_overhead_hours * self.checkpoints_by(productive, interval) as f64
    }

    /// The paper's `Ratio(t_i, F_i)`: fraction of the application still to
    /// run after a failure at productive time `productive`, given the
    /// checkpoints taken by then. 1 when nothing was saved, 0 at completion.
    pub fn remaining_ratio(&self, productive: Hours, interval: Hours) -> f64 {
        if productive >= self.exec_hours {
            return 0.0;
        }
        let saved =
            self.checkpoints_by(productive, interval) as f64 * interval.min(self.exec_hours);
        (1.0 - saved / self.exec_hours).clamp(0.0, 1.0)
    }
}

/// The optimizer's decision for one circle group: bid price `P_i` and
/// checkpoint interval `F_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupDecision {
    /// `P_i`: bid price, USD/hour per instance.
    pub bid: Usd,
    /// `F_i`: checkpoint interval in productive hours. A value at or above
    /// the group's `T_i` disables checkpointing (paper: "If `F_i = T_i`, we
    /// do not use checkpoints for this circle group").
    pub ckpt_interval: Hours,
}

/// An on-demand recovery option: type `d` with `T_d`, `D_d`, `M_d`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnDemandOption {
    /// Instance type.
    pub instance_type: InstanceTypeId,
    /// `M_d`: instances needed to host the job.
    pub instances: u32,
    /// `T_d`: full-application execution time on this type, hours.
    pub exec_hours: Hours,
    /// `D_d`: on-demand unit price, USD/instance-hour.
    pub unit_price: Usd,
    /// Overhead of restoring the best checkpoint onto this cluster, hours.
    pub recovery_hours: Hours,
}

impl OnDemandOption {
    /// Cost of running the whole application on demand (Formula 12).
    pub fn full_cost(&self) -> Usd {
        self.exec_hours * self.unit_price * self.instances as f64
    }

    /// Cost of the full run under 2014 hourly billing (whole started
    /// instance-hours) — what an actual baseline execution would be
    /// charged, used to normalize experiment results.
    pub fn full_cost_billed(&self) -> Usd {
        self.exec_hours.ceil() * self.unit_price * self.instances as f64
    }

    /// Cost of running `ratio` of the application plus recovery.
    pub fn recovery_cost(&self, ratio: f64) -> Usd {
        (self.exec_hours * ratio + self.recovery_hours) * self.unit_price * self.instances as f64
    }
}

/// A complete execution plan: chosen circle groups with their decisions,
/// plus the on-demand fallback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Replicated spot executions. Empty means pure on-demand.
    pub groups: Vec<(CircleGroup, GroupDecision)>,
    /// The on-demand recovery (and pure-on-demand) option.
    pub on_demand: OnDemandOption,
}

impl Plan {
    /// A plan that runs everything on demand.
    pub fn on_demand_only(od: OnDemandOption) -> Self {
        Self {
            groups: Vec::new(),
            on_demand: od,
        }
    }

    /// Number of circle groups used (the paper's `k`).
    pub fn replication_degree(&self) -> usize {
        self.groups.len()
    }

    /// The same decisions applied to `fraction` of the application:
    /// execution times scale, overheads and prices do not. Used to re-run
    /// a frozen plan on residual work (the w/o-MT ablation).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn scaled(&self, fraction: f64) -> Plan {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "scale fraction must be in (0, 1]"
        );
        let mut p = self.clone();
        for (g, _) in &mut p.groups {
            g.exec_hours *= fraction;
        }
        p.on_demand.exec_hours *= fraction;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::zone::AvailabilityZone;

    fn group(t: f64, o: f64) -> CircleGroup {
        CircleGroup {
            id: CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a),
            instances: 8,
            exec_hours: t,
            ckpt_overhead_hours: o,
            recovery_hours: 0.1,
        }
    }

    #[test]
    fn checkpoints_count_floors() {
        let g = group(10.0, 0.02);
        assert_eq!(g.checkpoints_by(4.9, 1.0), 4);
        assert_eq!(g.checkpoints_by(5.0, 1.0), 5);
        assert_eq!(g.checkpoints_by(0.5, 1.0), 0);
    }

    #[test]
    fn interval_at_exec_time_disables_checkpointing() {
        let g = group(10.0, 0.02);
        assert_eq!(g.checkpoints_by(9.9, 10.0), 0);
        assert_eq!(g.checkpoints_by(9.9, 15.0), 0);
        assert_eq!(g.completion_wall_hours(10.0), 10.0);
    }

    #[test]
    fn completion_includes_checkpoint_overheads() {
        let g = group(10.0, 0.1);
        // 10 checkpoints at interval 1.0 → +1.0 hours.
        assert!((g.completion_wall_hours(1.0) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn remaining_ratio_cases() {
        let g = group(10.0, 0.02);
        // Before the first checkpoint everything is lost.
        assert_eq!(g.remaining_ratio(0.5, 1.0), 1.0);
        // After 3 checkpoints at interval 1.0, 3 hours are saved.
        assert!((g.remaining_ratio(3.5, 1.0) - 0.7).abs() < 1e-12);
        // Completion.
        assert_eq!(g.remaining_ratio(10.0, 1.0), 0.0);
        // No checkpointing: always 1 until completion.
        assert_eq!(g.remaining_ratio(9.9, 10.0), 1.0);
    }

    #[test]
    fn ratio_is_monotone_nonincreasing_in_progress() {
        let g = group(8.0, 0.05);
        let mut prev = 1.0;
        for k in 0..80 {
            let r = g.remaining_ratio(k as f64 * 0.1, 0.75);
            assert!(r <= prev + 1e-12);
            prev = r;
        }
    }

    #[test]
    fn od_costs() {
        let od = OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 4,
            exec_hours: 2.0,
            unit_price: 2.0,
            recovery_hours: 0.1,
        };
        assert!((od.full_cost() - 16.0).abs() < 1e-12);
        assert!((od.recovery_cost(0.5) - (1.0 + 0.1) * 8.0).abs() < 1e-12);
        assert!(od.recovery_cost(0.0) > 0.0); // recovery itself costs
    }

    #[test]
    fn plan_helpers() {
        let od = OnDemandOption {
            instance_type: InstanceTypeId(0),
            instances: 1,
            exec_hours: 1.0,
            unit_price: 1.0,
            recovery_hours: 0.0,
        };
        let p = Plan::on_demand_only(od);
        assert_eq!(p.replication_degree(), 0);
    }

    #[test]
    fn scaled_plan_shrinks_exec_but_not_overheads() {
        let od = OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 4,
            exec_hours: 2.0,
            unit_price: 2.0,
            recovery_hours: 0.1,
        };
        let plan = Plan {
            groups: vec![(
                group(10.0, 0.05),
                GroupDecision {
                    bid: 0.1,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od,
        };
        let half = plan.scaled(0.5);
        assert!((half.groups[0].0.exec_hours - 5.0).abs() < 1e-12);
        assert_eq!(half.groups[0].0.ckpt_overhead_hours, 0.05);
        assert_eq!(half.groups[0].1.bid, 0.1);
        assert!((half.on_demand.exec_hours - 1.0).abs() < 1e-12);
        assert_eq!(half.on_demand.recovery_hours, 0.1);
    }

    #[test]
    #[should_panic(expected = "scale fraction")]
    fn scaled_rejects_over_one() {
        let od = OnDemandOption {
            instance_type: InstanceTypeId(0),
            instances: 1,
            exec_hours: 1.0,
            unit_price: 1.0,
            recovery_hours: 0.0,
        };
        Plan::on_demand_only(od).scaled(1.5);
    }

    #[test]
    fn plan_serde_roundtrip() {
        let od = OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 4,
            exec_hours: 2.0,
            unit_price: 2.0,
            recovery_hours: 0.1,
        };
        let plan = Plan {
            groups: vec![(
                group(10.0, 0.05),
                GroupDecision {
                    bid: 0.123,
                    ckpt_interval: 0.75,
                },
            )],
            on_demand: od,
        };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: Plan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
