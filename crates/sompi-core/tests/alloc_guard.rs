//! Allocation guards for the optimizer's hot path.
//!
//! The observability layer promises that a disabled recorder is free: the
//! candidate loop may not allocate, and `optimize_with` a recorder whose
//! tracing is off must allocate exactly as much as the context-free
//! `optimize`. A counting global allocator makes both claims testable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use sompi_core::cost::{evaluate_with_scratch, EvalScratch, GroupAssessment, KernelMode};
use sompi_core::model::GroupDecision;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::{MarketView, PlanContext, Problem};
use sompi_obs::{RingRecorder, TraceLevel};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `f` with allocation counting on; return its result and the count.
fn counted<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (out, ALLOCS.load(Ordering::SeqCst))
}

fn setup() -> (Problem, MarketView) {
    let cat = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&cat);
    let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 31), 200.0, 1.0 / 12.0);
    let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
    let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).unwrap())
        .collect();
    let problem = Problem::build(&market, &profile, 4.0, Some(&types), S3Store::paper_2014());
    let view = MarketView::from_market(&market, 0.0, 48.0);
    (problem, view)
}

// One test function: the counter is process-global, and the default test
// harness runs `#[test]`s concurrently.
#[test]
fn null_recorder_adds_zero_allocations() {
    let (problem, view) = setup();

    // (1) A warmed `evaluate_with_scratch` call is allocation-free — on
    // every kernel mode, including the caps-memo tables, and with enough
    // groups that the k×k caps table is actually consulted.
    let decision = GroupDecision {
        bid: 10.0,
        ckpt_interval: 1.0,
    };
    let assessed: Vec<GroupAssessment> = problem
        .candidates
        .iter()
        .take(3)
        .map(|&group| {
            GroupAssessment::assess(group, decision, &view)
                .expect("known group")
                .expect("launchable")
        })
        .collect();
    let refs: Vec<&GroupAssessment> = assessed.iter().collect();
    let od = *problem.baseline();
    for mode in [
        KernelMode::Scalar,
        KernelMode::CapsMemo,
        KernelMode::CapsSoa,
    ] {
        let mut scratch = EvalScratch::with_mode(mode);
        evaluate_with_scratch(&refs, &od, &mut scratch); // warm the buffers
        let (eval, allocs) = counted(|| evaluate_with_scratch(&refs, &od, &mut scratch));
        assert!(eval.expected_cost > 0.0);
        assert_eq!(
            allocs, 0,
            "warmed evaluate_with_scratch ({mode:?}) allocated"
        );
    }

    // (2) `optimize_with` a recorder attached but tracing off allocates
    // exactly as much as the context-free `optimize` — the recorder hook
    // itself is free.
    let cfg = OptimizerConfig {
        kappa: 2,
        bid_levels: 3,
        threads: 1,
        ..Default::default()
    };
    let _ = TwoLevelOptimizer::new(&problem, &view, cfg).optimize(); // warm lazies
    let (base_plan, base_allocs) = counted(|| {
        TwoLevelOptimizer::new(&problem, &view, cfg)
            .optimize()
            .unwrap()
    });
    let off = RingRecorder::new(TraceLevel::Off, 8);
    let (rec_plan, rec_allocs) = counted(|| {
        TwoLevelOptimizer::new(&problem, &view, cfg)
            .optimize_with(&mut PlanContext::new().with_recorder(&off))
            .unwrap()
    });
    assert_eq!(base_plan.plan, rec_plan.plan);
    assert!(off.is_empty(), "Off-level recorder captured events");
    assert_eq!(
        base_allocs, rec_allocs,
        "tracing-off optimize allocated differently from plain optimize"
    );
}
