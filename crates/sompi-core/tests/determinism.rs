//! Parallel-search determinism: the two-level optimizer must return a
//! bit-identical `OptimizedPlan` — plan, evaluation, and the number of
//! candidate evaluations — at every thread count, on every market.
//!
//! Workers search disjoint chunks of the C(K,k) subset enumeration and
//! merge local incumbents under a total order (feasibility, expected
//! cost, bid vector, enumeration ordinal), so the chunking must be
//! unobservable in the result.

use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::{MarketView, Problem};

fn problem_on(seed: u64, kernel: NpbKernel, deadline: f64) -> (Problem, MarketView) {
    let cat = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&cat);
    let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 200.0, 1.0 / 12.0);
    let profile = kernel.profile(NpbClass::B, 128).repeated(200);
    let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).unwrap())
        .collect();
    let problem = Problem::build(
        &market,
        &profile,
        deadline,
        Some(&types),
        S3Store::paper_2014(),
    );
    let view = MarketView::from_market(&market, 0.0, 48.0);
    (problem, view)
}

fn assert_thread_invariant(problem: &Problem, view: &MarketView, cfg: OptimizerConfig) {
    let serial = TwoLevelOptimizer::new(problem, view, OptimizerConfig { threads: 1, ..cfg })
        .optimize()
        .unwrap();
    assert!(serial.evaluations_performed > 0);
    for threads in [2usize, 3, 8, 0] {
        let parallel = TwoLevelOptimizer::new(problem, view, OptimizerConfig { threads, ..cfg })
            .optimize()
            .unwrap();
        assert_eq!(
            parallel, serial,
            "threads = {threads} diverged from serial (kappa = {}, levels = {})",
            cfg.kappa, cfg.bid_levels
        );
    }
}

/// Paper-scale search (κ = 4, 12 bid levels) on the default seeded market.
#[test]
fn paper_scale_plan_is_thread_invariant() {
    let (problem, view) = problem_on(13, NpbKernel::Bt, 3.0);
    assert_thread_invariant(&problem, &view, OptimizerConfig::default());
}

/// A second market (different seed, workload, and deadline) so the
/// invariance is not an artifact of one incumbent trajectory.
#[test]
fn second_market_plan_is_thread_invariant() {
    let (problem, view) = problem_on(97, NpbKernel::Sp, 2.5);
    assert_thread_invariant(&problem, &view, OptimizerConfig::default());
}

/// Small odd-shaped searches: subset counts that do not divide evenly
/// across workers, and κ = 1 where chunks hold a single subset each.
#[test]
fn uneven_chunking_is_thread_invariant() {
    let (problem, view) = problem_on(13, NpbKernel::Bt, 3.0);
    for (kappa, bid_levels) in [(1, 3), (2, 5), (3, 2)] {
        let cfg = OptimizerConfig {
            kappa,
            bid_levels,
            ..OptimizerConfig::default()
        };
        assert_thread_invariant(&problem, &view, cfg);
    }
}

/// The Theorem 1 ablation multiplies per-subset work; the merge must
/// still be invariant when the odometer covers interval grids too.
#[test]
fn interval_grid_search_is_thread_invariant() {
    let (problem, view) = problem_on(97, NpbKernel::Bt, 3.0);
    let cfg = OptimizerConfig {
        kappa: 2,
        bid_levels: 4,
        interval_grid: Some(3),
        ..OptimizerConfig::default()
    };
    assert_thread_invariant(&problem, &view, cfg);
}
