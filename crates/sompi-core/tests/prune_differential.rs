//! Exactness of the search-pruning stages: with dominance collapse,
//! branch-and-bound, and the shared incumbent bound all enabled, the
//! optimizer must return the *same* optimal plan and evaluation as the
//! exhaustive odometer walk — on every market, at every thread count.
//!
//! `evaluations_performed` is deliberately not compared between pruned
//! and exhaustive runs: dominance collapse shrinks the enumerated space
//! itself (fewer per-group options), so the raw size differs while the
//! optimum does not. Thread-count invariance of the full struct at a
//! fixed config is covered by `determinism.rs`.

use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::{MarketView, Problem};

fn problem_on(seed: u64, kernel: NpbKernel, deadline: f64) -> (Problem, MarketView) {
    let cat = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&cat);
    let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 200.0, 1.0 / 12.0);
    let profile = kernel.profile(NpbClass::B, 128).repeated(200);
    let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).unwrap())
        .collect();
    let problem = Problem::build(
        &market,
        &profile,
        deadline,
        Some(&types),
        S3Store::paper_2014(),
    );
    let view = MarketView::from_market(&market, 0.0, 48.0);
    (problem, view)
}

/// Every ablation of the pruning stages, exhaustive first.
fn ablations(base: OptimizerConfig) -> Vec<(&'static str, OptimizerConfig)> {
    vec![
        (
            "exhaustive",
            OptimizerConfig {
                prune_dominance: false,
                prune_bound: false,
                shared_incumbent: false,
                ..base
            },
        ),
        (
            "dominance-only",
            OptimizerConfig {
                prune_dominance: true,
                prune_bound: false,
                shared_incumbent: false,
                ..base
            },
        ),
        (
            "bound-local",
            OptimizerConfig {
                prune_dominance: false,
                prune_bound: true,
                shared_incumbent: false,
                ..base
            },
        ),
        (
            "bound-shared",
            OptimizerConfig {
                prune_dominance: false,
                prune_bound: true,
                shared_incumbent: true,
                ..base
            },
        ),
        ("full", base),
    ]
}

/// Pruned and exhaustive searches agree on the optimum — plan, bids,
/// checkpoint intervals, on-demand fallback, and the full evaluation —
/// for every pruning ablation, at threads 1, 4, and all-cores.
fn assert_prune_exact(problem: &Problem, view: &MarketView, cfg: OptimizerConfig) {
    let reference = TwoLevelOptimizer::new(
        problem,
        view,
        OptimizerConfig {
            prune_dominance: false,
            prune_bound: false,
            shared_incumbent: false,
            threads: 1,
            ..cfg
        },
    )
    .optimize()
    .unwrap();
    assert!(reference.evaluations_performed > 0);
    for (name, ablation) in ablations(cfg) {
        for threads in [1usize, 4, 0] {
            let pruned = TwoLevelOptimizer::new(
                problem,
                view,
                OptimizerConfig {
                    threads,
                    ..ablation
                },
            )
            .optimize()
            .unwrap();
            assert_eq!(
                pruned.plan, reference.plan,
                "{name} (threads = {threads}) changed the optimal plan"
            );
            assert_eq!(
                pruned.evaluation, reference.evaluation,
                "{name} (threads = {threads}) changed the optimal evaluation"
            );
        }
    }
}

#[test]
fn paper_scale_market_prunes_exactly() {
    let (problem, view) = problem_on(13, NpbKernel::Bt, 3.0);
    assert_prune_exact(
        &problem,
        &view,
        OptimizerConfig {
            kappa: 3,
            bid_levels: 6,
            ..OptimizerConfig::default()
        },
    );
}

#[test]
fn second_market_prunes_exactly() {
    let (problem, view) = problem_on(31, NpbKernel::Sp, 2.5);
    assert_prune_exact(
        &problem,
        &view,
        OptimizerConfig {
            kappa: 2,
            bid_levels: 8,
            ..OptimizerConfig::default()
        },
    );
}

#[test]
fn third_market_prunes_exactly() {
    let (problem, view) = problem_on(97, NpbKernel::Lu, 2.0);
    assert_prune_exact(
        &problem,
        &view,
        OptimizerConfig {
            kappa: 3,
            bid_levels: 5,
            ..OptimizerConfig::default()
        },
    );
}

/// Tight deadlines drive the search into the infeasible regime where the
/// incumbent order falls back to cheapest-in-expectation; pruning must
/// not disturb that path either.
#[test]
fn infeasible_regime_prunes_exactly() {
    let (mut problem, view) = problem_on(13, NpbKernel::Bt, 3.0);
    problem.deadline = 0.05;
    assert_prune_exact(
        &problem,
        &view,
        OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            ..OptimizerConfig::default()
        },
    );
}

/// The Theorem 1 ablation (interval grids) multiplies per-slot options;
/// the bound and dominance stages must stay exact there too.
#[test]
fn interval_grid_prunes_exactly() {
    let (problem, view) = problem_on(31, NpbKernel::Bt, 3.0);
    assert_prune_exact(
        &problem,
        &view,
        OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            interval_grid: Some(3),
            ..OptimizerConfig::default()
        },
    );
}
