//! Amazon-S3-style reliable checkpoint store.
//!
//! The paper stores BLCR checkpoints on S3 (Section 4.4, "Checkpointing"):
//! local disks evaporate with the spot instance, S3 survives. The store
//! model captures the three quantities the cost model needs: upload time
//! (part of the checkpoint overhead `O_i`), download time (part of the
//! recovery overhead `R_i`) and storage cost (which the paper measures to
//! be <0.1% of the execution cost — we keep it so that claim can be
//! checked rather than assumed).

use crate::Hours;
use serde::{Deserialize, Serialize};

/// Where checkpoint images live — the paper's Section 4.4 design decision.
///
/// *"If the checkpoint is stored in local disk, the data may be lost at any
/// time when the spot instance is terminated. We choose to use Amazon S3"*.
/// Local disk is faster and free, but an out-of-bid kill destroys the
/// images with the instances; only a *reliable* backend makes the
/// checkpoint-based `Ratio` recovery of the cost model valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CheckpointBackend {
    /// Amazon S3: survives instance termination; transfer is bounded by
    /// the per-instance network path to S3.
    #[default]
    S3,
    /// Instance-local ephemeral disk: fast writes, zero storage cost,
    /// **lost on provider termination** — checkpoints only help against
    /// the winner-rule user terminations, not against out-of-bid kills.
    LocalDisk,
}

impl CheckpointBackend {
    /// Whether images survive an out-of-bid (provider) termination.
    pub fn survives_termination(self) -> bool {
        matches!(self, CheckpointBackend::S3)
    }
}

/// Reliable object store with per-instance bandwidth caps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct S3Store {
    /// Sustained upload bandwidth per instance, MB/s.
    pub upload_mbps_per_instance: f64,
    /// Sustained download bandwidth per instance, MB/s.
    pub download_mbps_per_instance: f64,
    /// Fixed per-object latency per operation, seconds (request overhead,
    /// multipart setup).
    pub request_overhead_s: f64,
    /// Storage price in USD per GB-month ($0.03 in 2014).
    pub usd_per_gb_month: f64,
}

impl S3Store {
    /// 2014-era S3 from EC2: ~50 MB/s per instance each way, $0.03/GB-month.
    pub fn paper_2014() -> Self {
        Self {
            upload_mbps_per_instance: 50.0,
            download_mbps_per_instance: 50.0,
            request_overhead_s: 2.0,
            usd_per_gb_month: 0.03,
        }
    }

    /// Wall time for `instances` machines to upload `total_gb` in parallel
    /// (each uploads its share), in hours.
    pub fn upload_hours(&self, total_gb: f64, instances: u32) -> Hours {
        self.transfer_hours(total_gb, instances, self.upload_mbps_per_instance)
    }

    /// Wall time for `instances` machines to download `total_gb` in
    /// parallel, in hours.
    pub fn download_hours(&self, total_gb: f64, instances: u32) -> Hours {
        self.transfer_hours(total_gb, instances, self.download_mbps_per_instance)
    }

    fn transfer_hours(&self, total_gb: f64, instances: u32, mbps: f64) -> Hours {
        assert!(instances > 0, "need at least one instance");
        assert!(total_gb >= 0.0, "volume must be non-negative");
        if total_gb == 0.0 {
            return 0.0;
        }
        let per_instance_gb = total_gb / instances as f64;
        (per_instance_gb * 1000.0 / mbps + self.request_overhead_s) / 3600.0
    }

    /// Cost of holding `gb` for `hours`.
    pub fn storage_cost(&self, gb: f64, hours: Hours) -> f64 {
        let months = hours / (30.0 * 24.0);
        self.usd_per_gb_month * gb * months
    }

    /// Wall time for an upload that fails `failed_attempts` times before
    /// succeeding: every attempt pays the full transfer (S3 multipart
    /// uploads that die mid-flight are discarded, not resumed), so the
    /// total is `(failed_attempts + 1) × upload_hours`. Backoff waits
    /// between attempts are the executor's business (`ec2-market`'s
    /// `RetryPolicy`), not the store's — this is pure transfer time.
    pub fn upload_hours_with_retries(
        &self,
        total_gb: f64,
        instances: u32,
        failed_attempts: u32,
    ) -> Hours {
        (failed_attempts as f64 + 1.0) * self.upload_hours(total_gb, instances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_upload_scales_with_instances() {
        let s3 = S3Store::paper_2014();
        let one = s3.upload_hours(100.0, 1);
        let hundred = s3.upload_hours(100.0, 100);
        assert!(one > 50.0 * hundred, "one {one} hundred {hundred}");
    }

    #[test]
    fn zero_volume_is_free_and_instant() {
        let s3 = S3Store::paper_2014();
        assert_eq!(s3.upload_hours(0.0, 4), 0.0);
        assert_eq!(s3.storage_cost(0.0, 100.0), 0.0);
    }

    #[test]
    fn request_overhead_bounds_small_transfers() {
        let s3 = S3Store::paper_2014();
        let t = s3.upload_hours(1e-6, 128);
        assert!(t * 3600.0 >= s3.request_overhead_s);
    }

    #[test]
    fn storage_cost_is_tiny_at_paper_scale() {
        // 32 GB of checkpoints held for a 24-hour run: fractions of a cent,
        // consistent with the paper's <0.1% claim.
        let s3 = S3Store::paper_2014();
        let c = s3.storage_cost(32.0, 24.0);
        assert!(c < 0.04, "cost {c}");
    }

    #[test]
    fn retried_uploads_pay_full_transfer_per_attempt() {
        let s3 = S3Store::paper_2014();
        let clean = s3.upload_hours(32.0, 128);
        assert_eq!(s3.upload_hours_with_retries(32.0, 128, 0), clean);
        assert!((s3.upload_hours_with_retries(32.0, 128, 2) - 3.0 * clean).abs() < 1e-12);
    }

    #[test]
    fn upload_time_is_plausible() {
        // 32 GB from 128 instances: 0.25 GB each at 50 MB/s = 5 s + 2 s
        // overhead.
        let s3 = S3Store::paper_2014();
        let t = s3.upload_hours(32.0, 128) * 3600.0;
        assert!((t - 7.0).abs() < 0.5, "t {t}");
    }
}
