//! BLCR-style coordinated checkpointing.
//!
//! The paper checkpoints with BLCR under OpenMPI: a system-level,
//! *coordinated* protocol (all ranks quiesce in-flight messages, then each
//! dumps its process image), with images shipped to S3. This module
//! computes the two overheads the cost model consumes per circle group:
//!
//! * `O_i` — wall-clock cost of taking one checkpoint
//!   ([`CheckpointSpec::overhead_hours`]),
//! * `R_i` — wall-clock cost of restarting from the latest checkpoint on a
//!   fresh cluster ([`CheckpointSpec::recovery_hours`]), including 2014-era
//!   instance provisioning time.

use crate::cluster::ClusterSpec;
use crate::profile::AppProfile;
use crate::storage::S3Store;
use crate::Hours;
use ec2_market::instance::InstanceCatalog;
use serde::{Deserialize, Serialize};

/// Checkpoint/restart cost parameters for one application on one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Total coordinated image volume, GB (all ranks).
    pub volume_gb: f64,
    /// Instances sharing the upload/download.
    pub instances: u32,
    /// Coordination cost of quiescing the MPI job, hours (drain in-flight
    /// messages, global barrier, fork the dump).
    pub coordination_hours: Hours,
    /// Time to provision and boot a replacement cluster, hours (2014 EC2
    /// spot fulfillment plus boot was minutes).
    pub provisioning_hours: Hours,
    /// The store holding the images.
    pub store: S3Store,
}

impl CheckpointSpec {
    /// Build the spec for `profile` running on `cluster`, with paper-era
    /// constants: 30 s of coordination per checkpoint, 3 min of cluster
    /// provisioning on recovery.
    pub fn for_app(
        catalog: &InstanceCatalog,
        cluster: &ClusterSpec,
        profile: &AppProfile,
        store: S3Store,
    ) -> Self {
        let _ = catalog; // sizing already captured by `cluster`
        Self {
            volume_gb: profile.checkpoint_volume_gb(),
            instances: cluster.instances,
            coordination_hours: 30.0 / 3600.0,
            provisioning_hours: 3.0 / 60.0,
            store,
        }
    }

    /// `O_i`: wall-clock overhead of one coordinated checkpoint.
    pub fn overhead_hours(&self) -> Hours {
        self.coordination_hours + self.store.upload_hours(self.volume_gb, self.instances)
    }

    /// `R_i`: wall-clock overhead of recovering onto a cluster of
    /// `instances` machines — provision, download images, restart.
    pub fn recovery_hours(&self) -> Hours {
        self.provisioning_hours
            + self.store.download_hours(self.volume_gb, self.instances)
            + self.coordination_hours
    }

    /// Recovery overhead onto a *different* cluster size (the on-demand
    /// fallback may use another instance type).
    pub fn recovery_hours_on(&self, instances: u32) -> Hours {
        self.provisioning_hours
            + self.store.download_hours(self.volume_gb, instances)
            + self.coordination_hours
    }

    /// Storage cost of keeping one checkpoint image for `hours`.
    pub fn storage_cost(&self, hours: Hours) -> f64 {
        self.store.storage_cost(self.volume_gb, hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npb::{NpbClass, NpbKernel};

    fn spec(ty: &str, procs: u32) -> CheckpointSpec {
        let cat = InstanceCatalog::paper_2014();
        let id = cat.by_name(ty).unwrap();
        let cluster = ClusterSpec::for_processes(&cat, id, procs);
        let profile = NpbKernel::Bt.profile(NpbClass::B, procs);
        CheckpointSpec::for_app(&cat, &cluster, &profile, S3Store::paper_2014())
    }

    #[test]
    fn overhead_is_seconds_to_minutes() {
        // BT.B on 128 m1.small: ~10.8 GB image over 128 uploaders — tens of
        // seconds, consistent with BLCR "does not significantly increase
        // the length of runs".
        let o = spec("m1.small", 128).overhead_hours() * 3600.0;
        assert!(o > 10.0 && o < 300.0, "O = {o}s");
    }

    #[test]
    fn recovery_costs_more_than_checkpoint() {
        let s = spec("m1.small", 128);
        assert!(s.recovery_hours() > s.overhead_hours());
    }

    #[test]
    fn fewer_instances_upload_slower() {
        let small = spec("m1.small", 128); // 128 uploaders
        let cc2 = spec("cc2.8xlarge", 128); // 4 uploaders
        assert!(cc2.overhead_hours() > small.overhead_hours());
    }

    #[test]
    fn recovery_on_other_cluster_scales_with_downloaders() {
        let s = spec("m1.small", 128);
        assert!(s.recovery_hours_on(4) > s.recovery_hours_on(128));
    }

    #[test]
    fn storage_cost_negligible_vs_execution() {
        // Holding BT.B checkpoints for a 48 h run costs well under a cent.
        let s = spec("m1.small", 128);
        assert!(s.storage_cost(48.0) < 0.05);
    }
}
