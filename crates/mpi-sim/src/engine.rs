//! Discrete-event simulation core: a time-ordered event queue.
//!
//! The queue is generic over the event payload; [`crate::sim`] drives MPI
//! executions through it. Ties in time are broken FIFO by insertion order,
//! which keeps simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation timestamps in hours.
pub type SimTime = f64;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, earliest-first event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics on scheduling into the past or at a non-finite time.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` `delay` hours from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay.max(0.0), event);
    }

    /// Pop the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(1.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 3.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
