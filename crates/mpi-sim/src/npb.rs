//! Analytic workload models of the NAS Parallel Benchmarks (NPB 2.4).
//!
//! The paper evaluates three application classes (Section 5.1):
//! computation-intensive (BT, SP, LU), communication-intensive (FT, IS) and
//! IO-intensive (BTIO), at 128 processes, CLASS B, each repeated 100–200
//! times "to extend to large scale computing".
//!
//! We model each kernel analytically from its published problem dimensions:
//! total operation counts come from the NPB reports, halo-exchange volumes
//! from surface-to-volume of the domain decomposition, all-to-all volumes
//! from the transposed/redistributed array sizes, and BTIO's I/O volume
//! from the solution-field dumps (amplified nothing — its pain comes from
//! the *random-access* nature of the unstructured per-rank file offsets,
//! which the instance catalog's HDD random bandwidths punish).
//!
//! These are engineering approximations: absolute seconds are not the
//! reproduction target, the compute/communication/I/O *balance* per kernel
//! is, because that balance is what drives the paper's instance-type
//! choices.

use crate::profile::{AppProfile, CommPattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// NPB problem classes. The paper's default is [`NpbClass::B`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NpbClass {
    /// Sample size for smoke tests.
    S,
    /// Workstation size.
    W,
    /// Small.
    A,
    /// Paper default.
    B,
    /// Large.
    C,
}

impl NpbClass {
    /// Work multiplier relative to class A (grids roughly 4× ops per class).
    fn scale(self) -> f64 {
        match self {
            NpbClass::S => 1.0 / 256.0,
            NpbClass::W => 1.0 / 16.0,
            NpbClass::A => 1.0,
            NpbClass::B => 4.0,
            NpbClass::C => 16.0,
        }
    }

    /// Cube-grid edge for BT/SP/LU per the NPB specification.
    fn cube_edge(self) -> f64 {
        match self {
            NpbClass::S => 12.0,
            NpbClass::W => 24.0,
            NpbClass::A => 64.0,
            NpbClass::B => 102.0,
            NpbClass::C => 162.0,
        }
    }

    /// FT grid total points per the NPB specification.
    fn ft_points(self) -> f64 {
        match self {
            NpbClass::S => 64.0 * 64.0 * 64.0,
            NpbClass::W => 128.0 * 128.0 * 32.0,
            NpbClass::A => 256.0 * 256.0 * 128.0,
            NpbClass::B => 512.0 * 256.0 * 256.0,
            NpbClass::C => 512.0 * 512.0 * 512.0,
        }
    }

    /// IS key count per the NPB specification.
    fn is_keys(self) -> f64 {
        match self {
            NpbClass::S => (1u64 << 16) as f64,
            NpbClass::W => (1u64 << 20) as f64,
            NpbClass::A => (1u64 << 23) as f64,
            NpbClass::B => (1u64 << 25) as f64,
            NpbClass::C => (1u64 << 27) as f64,
        }
    }
}

impl fmt::Display for NpbClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            NpbClass::S => 'S',
            NpbClass::W => 'W',
            NpbClass::A => 'A',
            NpbClass::B => 'B',
            NpbClass::C => 'C',
        };
        write!(f, "{c}")
    }
}

/// The NPB kernels: the six the paper evaluates (BT, SP, LU, FT, IS,
/// BTIO) plus the remaining NPB 2.4 kernels (CG, MG, EP) for broader
/// coverage of communication patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NpbKernel {
    /// Block tri-diagonal solver — computation-intensive.
    Bt,
    /// Scalar penta-diagonal solver — computation-intensive.
    Sp,
    /// Lower-upper Gauss-Seidel — computation-intensive.
    Lu,
    /// 3D FFT — communication-intensive (global transposes).
    Ft,
    /// Integer sort — communication-intensive (key redistribution).
    Is,
    /// BT with solution-field I/O every 5 steps — IO-intensive.
    Btio,
    /// Conjugate gradient — irregular memory access, latency-sensitive
    /// reductions every iteration.
    Cg,
    /// Multigrid V-cycles — neighbor exchanges across grid levels.
    Mg,
    /// Embarrassingly parallel — pure compute, one final reduction.
    Ep,
}

impl NpbKernel {
    /// The six kernels of the paper's evaluation, in its order.
    pub const ALL: [NpbKernel; 6] = [
        NpbKernel::Bt,
        NpbKernel::Sp,
        NpbKernel::Lu,
        NpbKernel::Ft,
        NpbKernel::Is,
        NpbKernel::Btio,
    ];

    /// Every modeled kernel, including the non-paper extras.
    pub const FULL_SUITE: [NpbKernel; 9] = [
        NpbKernel::Bt,
        NpbKernel::Sp,
        NpbKernel::Lu,
        NpbKernel::Ft,
        NpbKernel::Is,
        NpbKernel::Btio,
        NpbKernel::Cg,
        NpbKernel::Mg,
        NpbKernel::Ep,
    ];

    /// The paper's application-class label for this kernel.
    pub fn class_label(self) -> &'static str {
        match self {
            NpbKernel::Bt | NpbKernel::Sp | NpbKernel::Lu | NpbKernel::Ep => {
                "computation-intensive"
            }
            NpbKernel::Ft | NpbKernel::Is | NpbKernel::Cg => "communication-intensive",
            NpbKernel::Mg => "computation-intensive",
            NpbKernel::Btio => "IO-intensive",
        }
    }

    fn name(self) -> &'static str {
        match self {
            NpbKernel::Bt => "BT",
            NpbKernel::Sp => "SP",
            NpbKernel::Lu => "LU",
            NpbKernel::Ft => "FT",
            NpbKernel::Is => "IS",
            NpbKernel::Btio => "BTIO",
            NpbKernel::Cg => "CG",
            NpbKernel::Mg => "MG",
            NpbKernel::Ep => "EP",
        }
    }

    /// Total operation count in GFLOP. BT/SP/LU/IS scale ≈4× per class
    /// (grid growth at fixed iteration counts); FT additionally grows its
    /// iteration count from class A to B, so its published totals are
    /// encoded explicitly.
    fn total_gflop(self, class: NpbClass) -> f64 {
        match self {
            NpbKernel::Bt | NpbKernel::Btio => 168.3 * class.scale(),
            NpbKernel::Sp => 102.0 * class.scale(),
            NpbKernel::Lu => 119.3 * class.scale(),
            NpbKernel::Ft => match class {
                NpbClass::S => 0.18,
                NpbClass::W => 0.54,
                NpbClass::A => 7.16,
                NpbClass::B => 92.8,
                NpbClass::C => 390.0,
            },
            // IS does integer/memory ops; expressed in equivalent GFLOP of
            // sustained throughput.
            NpbKernel::Is => 0.78 * class.scale(),
            // Published totals: CG grows super-linearly across classes
            // (iterations and nonzeros both jump), MG and EP are closer to
            // the 4x grid scaling.
            NpbKernel::Cg => match class {
                NpbClass::S => 0.066,
                NpbClass::W => 0.25,
                NpbClass::A => 1.50,
                NpbClass::B => 54.7,
                NpbClass::C => 143.3,
            },
            NpbKernel::Mg => match class {
                NpbClass::S => 0.01,
                NpbClass::W => 0.24,
                NpbClass::A => 3.9,
                NpbClass::B => 18.8,
                NpbClass::C => 155.7,
            },
            NpbKernel::Ep => 26.68 * class.scale(),
        }
    }

    /// Outer iterations per the NPB specification.
    fn iterations(self, class: NpbClass) -> u32 {
        match self {
            NpbKernel::Bt | NpbKernel::Btio => 200,
            NpbKernel::Sp => 400,
            NpbKernel::Lu => 250,
            NpbKernel::Ft => match class {
                NpbClass::S | NpbClass::W | NpbClass::A => 6,
                NpbClass::B | NpbClass::C => 20,
            },
            NpbKernel::Is => 10,
            NpbKernel::Cg => match class {
                NpbClass::S | NpbClass::W => 15,
                _ => 75,
            },
            NpbKernel::Mg => match class {
                NpbClass::S => 4,
                _ => 20,
            },
            NpbKernel::Ep => 1,
        }
    }

    /// Build the TAU-style profile for this kernel at `class` on
    /// `processes` ranks.
    ///
    /// # Panics
    /// Panics if `processes == 0`.
    pub fn profile(self, class: NpbClass, processes: u32) -> AppProfile {
        assert!(processes > 0, "need at least one process");
        let n = processes as f64;
        let iters = self.iterations(class) as f64;

        let (comm_gb, pattern, io_seq_gb, io_rnd_gb, mem_total_gb) = match self {
            NpbKernel::Bt | NpbKernel::Sp | NpbKernel::Lu | NpbKernel::Btio => {
                let g = class.cube_edge().powi(3);
                // Per-rank halo: subdomain face area × 5 solution variables
                // × 8 bytes; `faces` is the per-iteration exchange weight
                // (BT ≈ one full halo round, SP lighter per iteration,
                // LU pipelined with 2 active faces).
                let faces = match self {
                    NpbKernel::Bt | NpbKernel::Btio => 6.0,
                    NpbKernel::Sp => 2.0,
                    NpbKernel::Lu => 2.0,
                    _ => unreachable!(),
                };
                let per_rank_per_iter = faces * (g / n).powf(2.0 / 3.0) * 5.0 * 8.0;
                let comm_gb = per_rank_per_iter * n * iters / 1e9;
                // BTIO: full solution field (5 vars × 8 B/point) dumped
                // every 5 steps, landing as per-rank unstructured writes.
                let io_rnd = if self == NpbKernel::Btio {
                    (iters / 5.0) * g * 5.0 * 8.0 / 1e9
                } else {
                    0.0
                };
                let mem = g * 8.0 * 45.0 / 1e9; // ~45 grid-sized arrays
                (comm_gb, CommPattern::Neighbor3D, 0.0, io_rnd, mem)
            }
            NpbKernel::Ft => {
                let g = class.ft_points();
                // Two global transposes per iteration move the entire
                // complex (16 B) array.
                let comm_gb = 2.0 * g * 16.0 * iters / 1e9;
                let mem = g * 16.0 * 4.0 / 1e9;
                (comm_gb, CommPattern::AllToAll, 0.0, 0.0, mem)
            }
            NpbKernel::Is => {
                let keys = class.is_keys();
                // Every iteration redistributes all keys (4 B each).
                let comm_gb = keys * 4.0 * iters / 1e9;
                let mem = keys * 4.0 * 3.0 / 1e9;
                (comm_gb, CommPattern::AllToAll, 0.0, 0.0, mem)
            }
            NpbKernel::Cg => {
                // Sparse matvec on a row-partitioned matrix: each of the
                // ~25 inner iterations per outer step exchanges vector
                // segments with the transpose partner plus two allreduce
                // rounds — heavy traffic relative to the flop count.
                let rows = 14_000.0 * class.scale().max(1.0 / 16.0);
                let per_rank_per_iter = (rows / n).max(1.0) * 8.0 * 25.0 * 2.0;
                let comm_gb = per_rank_per_iter * n * iters / 1e9;
                let mem = rows * 8.0 * 180.0 / 1e9; // nonzeros dominate
                (comm_gb, CommPattern::Ring, 0.0, 0.0, mem)
            }
            NpbKernel::Mg => {
                // V-cycle: halo exchanges at every level; the fine level
                // dominates volume. Approximate as 2x the fine-level halo
                // per cycle (coarser levels sum geometrically).
                let g = class.cube_edge().powi(3);
                let per_rank_per_iter = 2.0 * 6.0 * (g / n).powf(2.0 / 3.0) * 8.0;
                let comm_gb = per_rank_per_iter * n * iters / 1e9;
                let mem = g * 8.0 * 8.0 / 1e9;
                (comm_gb, CommPattern::Neighbor3D, 0.0, 0.0, mem)
            }
            NpbKernel::Ep => {
                // One 80-byte allreduce at the end; effectively zero.
                let comm_gb = 80.0 * n / 1e9;
                (comm_gb, CommPattern::Ring, 0.0, 0.0, 0.1)
            }
        };

        AppProfile {
            name: format!("{}.{}", self.name(), class),
            processes,
            total_gflop: self.total_gflop(class),
            data_send_gb: comm_gb,
            data_recv_gb: comm_gb,
            io_seq_gb,
            io_rnd_gb,
            pattern,
            // Runtime image (code, MPI buffers) plus this rank's share of
            // the problem arrays.
            image_gb_per_process: 0.05 + mem_total_gb / n,
            iterations: self.iterations(class),
        }
    }
}

impl fmt::Display for NpbKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_b_totals_match_published_ops() {
        // Published NPB class-B totals (Gop): BT ≈ 673, SP ≈ 408, LU ≈ 477,
        // FT ≈ 92, IS ≈ 3.3. Our 4×A scaling lands within 15%.
        let bt = NpbKernel::Bt.profile(NpbClass::B, 128);
        assert!(
            (bt.total_gflop - 673.0).abs() / 673.0 < 0.15,
            "{}",
            bt.total_gflop
        );
        let ft = NpbKernel::Ft.profile(NpbClass::B, 128);
        assert!(
            (ft.total_gflop - 92.0).abs() / 92.0 < 0.15,
            "{}",
            ft.total_gflop
        );
    }

    #[test]
    fn comm_to_compute_ratio_separates_classes() {
        // GB of communication per GFLOP of compute: comm-intensive kernels
        // must sit an order of magnitude above compute-intensive ones.
        let ratio = |k: NpbKernel| {
            let p = k.profile(NpbClass::B, 128);
            p.data_send_gb / p.total_gflop
        };
        for comp in [NpbKernel::Bt, NpbKernel::Sp, NpbKernel::Lu] {
            for comm in [NpbKernel::Ft, NpbKernel::Is] {
                assert!(
                    ratio(comm) > 10.0 * ratio(comp),
                    "{comm} ratio {} vs {comp} ratio {}",
                    ratio(comm),
                    ratio(comp)
                );
            }
        }
    }

    #[test]
    fn only_btio_does_io() {
        for k in NpbKernel::ALL {
            let p = k.profile(NpbClass::B, 128);
            if k == NpbKernel::Btio {
                assert!(p.io_rnd_gb > 1.0, "BTIO io {}", p.io_rnd_gb);
            } else {
                assert_eq!(p.io_seq_gb + p.io_rnd_gb, 0.0, "{k}");
            }
        }
    }

    #[test]
    fn btio_io_volume_matches_solution_dumps() {
        // Class B: 102³ points × 5 vars × 8 B ≈ 42.4 MB per dump × 40 dumps
        // ≈ 1.70 GB.
        let p = NpbKernel::Btio.profile(NpbClass::B, 128);
        assert!((p.io_rnd_gb - 1.70).abs() < 0.1, "{}", p.io_rnd_gb);
    }

    #[test]
    fn classes_scale_work_monotonically() {
        for k in NpbKernel::ALL {
            let mut prev = 0.0;
            for c in [
                NpbClass::S,
                NpbClass::W,
                NpbClass::A,
                NpbClass::B,
                NpbClass::C,
            ] {
                let p = k.profile(c, 64);
                assert!(p.total_gflop > prev, "{k} {c}");
                prev = p.total_gflop;
            }
        }
    }

    #[test]
    fn halo_comm_shrinks_per_rank_with_more_ranks() {
        // Total halo volume grows with rank count (more surfaces), but
        // per-rank volume shrinks.
        let p64 = NpbKernel::Bt.profile(NpbClass::B, 64);
        let p512 = NpbKernel::Bt.profile(NpbClass::B, 512);
        assert!(p512.data_send_gb > p64.data_send_gb);
        assert!(p512.comm_gb_per_rank() < p64.comm_gb_per_rank());
    }

    #[test]
    fn alltoall_total_volume_is_rank_independent() {
        let p64 = NpbKernel::Ft.profile(NpbClass::B, 64);
        let p512 = NpbKernel::Ft.profile(NpbClass::B, 512);
        assert!((p64.data_send_gb - p512.data_send_gb).abs() < 1e-9);
    }

    #[test]
    fn profiles_name_kernel_and_class() {
        assert_eq!(NpbKernel::Lu.profile(NpbClass::C, 8).name, "LU.C");
        assert_eq!(NpbKernel::Btio.class_label(), "IO-intensive");
    }

    #[test]
    fn image_includes_runtime_floor() {
        let p = NpbKernel::Is.profile(NpbClass::S, 1024);
        assert!(p.image_gb_per_process >= 0.05);
    }
}
