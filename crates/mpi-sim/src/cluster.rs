//! Mapping MPI jobs onto instance clusters and estimating execution time.
//!
//! This is the simulation stand-in for the paper's TAU-based profiling
//! (Section 4.4): *"We estimate the execution time as the summation of its
//! CPU, networking and I/O time. … the CPU time is determined by the #instr
//! of the application as well as the CPU frequency of the instance … the
//! networking and I/O time is determined by networking and I/O data size
//! divided by the network and I/O bandwidth."*
//!
//! We follow that recipe, with two refinements the paper itself observes in
//! the evaluation: traffic between ranks on the same instance goes through
//! shared memory instead of the NIC (their cc2.8xlarge discussion), and
//! each outer iteration pays a synchronization latency when the job spans
//! several instances.

use crate::profile::AppProfile;
use crate::Hours;
use ec2_market::instance::{InstanceCatalog, InstanceType, InstanceTypeId};
use serde::{Deserialize, Serialize};

/// Effective shared-memory bandwidth between ranks on one instance, GB/s.
pub(crate) const SHARED_MEM_GBPS: f64 = 5.0;

/// A homogeneous cluster hosting one MPI job: `instances` machines of one
/// type, one rank per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Instance type of every machine.
    pub instance_type: InstanceTypeId,
    /// Number of machines (the paper's `M_i`).
    pub instances: u32,
    /// Total MPI ranks hosted (the paper's `N`).
    pub processes: u32,
}

impl ClusterSpec {
    /// Smallest cluster of `ty` that hosts `processes` ranks at one rank
    /// per core — the paper's `M_i = N / k` (ceiling).
    pub fn for_processes(catalog: &InstanceCatalog, ty: InstanceTypeId, processes: u32) -> Self {
        let instances = catalog.get(ty).instances_for(processes);
        Self {
            instance_type: ty,
            instances,
            processes,
        }
    }

    /// Ranks co-resident on each (fully packed) instance.
    pub fn ranks_per_instance(&self, catalog: &InstanceCatalog) -> u32 {
        catalog.get(self.instance_type).cores.min(self.processes)
    }

    /// Estimate the productive execution time of `profile` on this cluster
    /// (no checkpointing or recovery overheads — the paper's `T_i`).
    pub fn estimate(&self, catalog: &InstanceCatalog, profile: &AppProfile) -> TimeBreakdown {
        assert_eq!(
            self.processes, profile.processes,
            "cluster sized for a different process count"
        );
        let ty = catalog.get(self.instance_type);
        estimate_on(ty, self.instances, profile)
    }
}

/// Execution-time estimate split into the paper's three components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeBreakdown {
    /// CPU time, hours.
    pub compute_hours: Hours,
    /// Network (MPI) time, hours, including per-iteration sync latency.
    pub network_hours: Hours,
    /// Local I/O time, hours.
    pub io_hours: Hours,
}

impl TimeBreakdown {
    /// Total productive execution time in hours.
    pub fn total_hours(&self) -> Hours {
        self.compute_hours + self.network_hours + self.io_hours
    }

    /// Fraction of the runtime spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_hours();
        if t <= 0.0 {
            0.0
        } else {
            self.network_hours / t
        }
    }

    /// Fraction of the runtime spent in I/O.
    pub fn io_fraction(&self) -> f64 {
        let t = self.total_hours();
        if t <= 0.0 {
            0.0
        } else {
            self.io_hours / t
        }
    }
}

fn estimate_on(ty: &InstanceType, instances: u32, profile: &AppProfile) -> TimeBreakdown {
    let m = instances.max(1) as f64;
    let ranks_per_node = ty.cores.min(profile.processes);

    // CPU: one rank per core, ranks progress in parallel; GFLOP divided by
    // GFLOP/s yields seconds.
    let compute_s = profile.gflop_per_rank() / ty.gflops_per_core;

    // Network: split per-rank traffic into off-node (NIC, shared by the
    // instance's ranks) and on-node (shared memory).
    let total_comm_gb = profile.data_send_gb.max(profile.data_recv_gb);
    let off_frac = profile
        .pattern
        .off_node_fraction(ranks_per_node, profile.processes);
    let off_gb_per_instance = total_comm_gb * off_frac / m;
    let nic_gbs = ty.network_gbps / 8.0; // GB/s
    let off_s = if off_gb_per_instance > 0.0 {
        off_gb_per_instance / nic_gbs
    } else {
        0.0
    };
    let on_gb_per_instance = total_comm_gb * (1.0 - off_frac) / m;
    let on_s = on_gb_per_instance / SHARED_MEM_GBPS;
    // Latency: each iteration is a communication round; every off-node
    // message pays the instance type's MPI latency.
    let msgs = profile
        .pattern
        .off_node_messages(ranks_per_node, profile.processes);
    let latency_s = profile.iterations as f64 * msgs * ty.latency_ms / 1000.0;
    let network_s = off_s + on_s + latency_s;

    // I/O: each instance serves its ranks' share from local disk.
    let io_s = profile.io_seq_gb * 1000.0 / (ty.disk_seq_mbps * m)
        + profile.io_rnd_gb * 1000.0 / (ty.disk_rnd_mbps * m);

    TimeBreakdown {
        compute_hours: compute_s / 3600.0,
        network_hours: network_s / 3600.0,
        io_hours: io_s / 3600.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npb::{NpbClass, NpbKernel};
    use ec2_market::instance::InstanceCatalog;

    fn catalog() -> InstanceCatalog {
        InstanceCatalog::paper_2014()
    }

    fn breakdown(kernel: NpbKernel, ty_name: &str, procs: u32) -> TimeBreakdown {
        let cat = catalog();
        let ty = cat.by_name(ty_name).unwrap();
        let profile = kernel.profile(NpbClass::B, procs).repeated(100);
        ClusterSpec::for_processes(&cat, ty, procs).estimate(&cat, &profile)
    }

    #[test]
    fn compute_kernels_are_compute_dominated_on_m1small() {
        for k in [NpbKernel::Bt, NpbKernel::Sp, NpbKernel::Lu] {
            let b = breakdown(k, "m1.small", 128);
            assert!(
                b.comm_fraction() < 0.45 && b.io_fraction() < 0.05,
                "{k}: comm {:.2} io {:.2}",
                b.comm_fraction(),
                b.io_fraction()
            );
        }
    }

    #[test]
    fn comm_kernels_are_comm_dominated_on_m1small() {
        for k in [NpbKernel::Ft, NpbKernel::Is] {
            let b = breakdown(k, "m1.small", 128);
            assert!(
                b.comm_fraction() > 0.6,
                "{k}: comm {:.2}",
                b.comm_fraction()
            );
        }
    }

    #[test]
    fn btio_is_io_dominated_on_cc2() {
        let b = breakdown(NpbKernel::Btio, "cc2.8xlarge", 128);
        assert!(b.io_fraction() > 0.5, "io {:.2}", b.io_fraction());
    }

    #[test]
    fn cc2_beats_m1small_on_ft_wallclock() {
        // Communication-intensive: 10 GbE plus shared memory makes
        // cc2.8xlarge the fastest type (paper Section 5.3.1).
        let cc2 = breakdown(NpbKernel::Ft, "cc2.8xlarge", 128);
        let small = breakdown(NpbKernel::Ft, "m1.small", 128);
        assert!(cc2.total_hours() < small.total_hours() / 2.0);
    }

    #[test]
    fn m1_beats_cc2_on_btio_wallclock() {
        // IO-intensive: 128 spindles beat 4 (paper: m1.small/m1.medium have
        // "lower costs and higher performance" than cc2 for BTIO).
        let cc2 = breakdown(NpbKernel::Btio, "cc2.8xlarge", 128);
        let small = breakdown(NpbKernel::Btio, "m1.small", 128);
        let medium = breakdown(NpbKernel::Btio, "m1.medium", 128);
        assert!(small.total_hours() < cc2.total_hours());
        assert!(medium.total_hours() < cc2.total_hours());
    }

    #[test]
    fn faster_types_run_compute_kernels_faster() {
        let small = breakdown(NpbKernel::Bt, "m1.small", 128);
        let medium = breakdown(NpbKernel::Bt, "m1.medium", 128);
        let c3 = breakdown(NpbKernel::Bt, "c3.xlarge", 128);
        let cc2 = breakdown(NpbKernel::Bt, "cc2.8xlarge", 128);
        assert!(cc2.total_hours() < c3.total_hours());
        assert!(c3.total_hours() < medium.total_hours());
        assert!(medium.total_hours() < small.total_hours());
    }

    #[test]
    fn single_instance_uses_shared_memory_only() {
        let cat = catalog();
        let cc2 = cat.by_name("cc2.8xlarge").unwrap();
        let profile = NpbKernel::Ft.profile(NpbClass::A, 32);
        let b = ClusterSpec::for_processes(&cat, cc2, 32).estimate(&cat, &profile);
        // 32 ranks fit in one cc2.8xlarge: no NIC time, no sync latency;
        // network time is shared-memory only and small.
        assert!(
            b.network_hours * 3600.0 < 10.0,
            "{}",
            b.network_hours * 3600.0
        );
    }

    #[test]
    fn cluster_sizing_matches_paper() {
        let cat = catalog();
        let spec = ClusterSpec::for_processes(&cat, cat.by_name("cc2.8xlarge").unwrap(), 128);
        assert_eq!(spec.instances, 4);
        assert_eq!(spec.ranks_per_instance(&cat), 32);
        let spec = ClusterSpec::for_processes(&cat, cat.by_name("m1.small").unwrap(), 128);
        assert_eq!(spec.instances, 128);
    }

    #[test]
    #[should_panic(expected = "different process count")]
    fn estimate_rejects_mismatched_processes() {
        let cat = catalog();
        let spec = ClusterSpec::for_processes(&cat, cat.by_name("m1.small").unwrap(), 64);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128);
        spec.estimate(&cat, &profile);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let b = breakdown(NpbKernel::Bt, "c3.xlarge", 128);
        let sum = b.compute_hours + b.network_hours + b.io_hours;
        assert!((b.total_hours() - sum).abs() < 1e-15);
        assert!(b.total_hours() > 0.0);
    }
}
