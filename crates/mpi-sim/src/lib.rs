//! MPI application simulation substrate for the SOMPI reproduction.
//!
//! The paper runs real OpenMPI + BLCR executions of the NAS Parallel
//! Benchmarks and LAMMPS on EC2, profiled with TAU into the 5-tuple
//! `<#instr, Data_send, Data_recv, IO_seq, IO_rnd>` (Section 4.4,
//! "Profiling"), and estimates execution time as the sum of CPU, network and
//! I/O components. This crate rebuilds that pipeline in simulation:
//!
//! * [`profile`] — the TAU-style application profile and communication
//!   patterns,
//! * [`npb`] / [`lammps`] — analytic workload models producing profiles for
//!   BT, SP, LU, FT, IS, BTIO (NPB 2.4 classes S–C) and LAMMPS,
//! * [`cluster`] — mapping `N` processes onto instances of a type and the
//!   paper's CPU+network+I/O execution-time estimator,
//! * [`checkpoint`] — BLCR-style coordinated checkpointing with an
//!   S3-backed store ([`storage`]): per-checkpoint overhead `O_i`, recovery
//!   overhead `R_i` and storage cost,
//! * [`engine`] + [`program`] + [`sim`] — a discrete-event simulator that
//!   actually executes a phase-structured MPI program on a simulated
//!   cluster, supports checkpoint/restart and failure injection, and is
//!   used to validate the analytic estimator.
//!
//! ```
//! use ec2_market::instance::InstanceCatalog;
//! use mpi_sim::cluster::ClusterSpec;
//! use mpi_sim::npb::{NpbClass, NpbKernel};
//!
//! // How long does BT.B on 128 ranks take on a cc2.8xlarge cluster?
//! let catalog = InstanceCatalog::paper_2014();
//! let ty = catalog.by_name("cc2.8xlarge").unwrap();
//! let profile = NpbKernel::Bt.profile(NpbClass::B, 128);
//! let cluster = ClusterSpec::for_processes(&catalog, ty, 128);
//! let t = cluster.estimate(&catalog, &profile);
//! assert!(t.total_hours() > 0.0);
//! assert!(t.comm_fraction() < 0.5); // BT is computation-intensive
//! ```

pub mod checkpoint;
pub mod cluster;
pub mod collective;
pub mod engine;
pub mod lammps;
pub mod npb;
pub mod profile;
pub mod program;
pub mod sim;
pub mod storage;

pub use checkpoint::CheckpointSpec;
pub use cluster::{ClusterSpec, TimeBreakdown};
pub use collective::{Collective, CommShape};
pub use lammps::Lammps;
pub use npb::{NpbClass, NpbKernel};
pub use profile::{AppProfile, CommPattern};
pub use program::{Phase, Program};
pub use sim::{SimOutcome, Simulation};
pub use storage::S3Store;

/// Hours, matching `ec2-market`.
pub type Hours = f64;
