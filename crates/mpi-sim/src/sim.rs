//! Discrete-event execution of MPI programs on simulated clusters.
//!
//! [`Simulation::run`] walks a [`Program`] phase by phase through the
//! [`EventQueue`]: each rank's completion of a phase is an event (ranks get
//! a small deterministic speed jitter, so barriers genuinely wait for the
//! slowest rank), synchronized phases complete at the latest arrival plus
//! the shared communication cost, checkpoint opportunities consult the
//! checkpoint interval, and an optional injected failure cuts the run short
//! — exactly what an out-of-bid event does to a circle group.
//!
//! The simulator validates the closed-form estimator in [`crate::cluster`]
//! (they must agree within the jitter margin) and gives examples and tests
//! a concrete "this is what the run did" artifact.

use crate::checkpoint::CheckpointSpec;
use crate::cluster::ClusterSpec;
use crate::engine::EventQueue;
use crate::program::{Phase, Program};
use crate::Hours;
use ec2_market::instance::{InstanceCatalog, InstanceType};
use serde::{Deserialize, Serialize};

use crate::cluster::SHARED_MEM_GBPS;

/// Result of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Whether the program ran to completion.
    pub completed: bool,
    /// Wall-clock hours elapsed when the run ended (completion or failure).
    pub wall_hours: Hours,
    /// Productive hours of progress made (excludes checkpoint overheads).
    pub productive_hours: Hours,
    /// Coordinated checkpoints taken.
    pub checkpoints_taken: u32,
    /// Productive hours recoverable from the most recent checkpoint when
    /// the run ended. Equals `productive_hours` on completion.
    pub saved_progress_hours: Hours,
}

/// A configured simulation: application cluster + checkpoint machinery.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    catalog: &'a InstanceCatalog,
    cluster: ClusterSpec,
    checkpoint: CheckpointSpec,
    /// Peak relative rank speed jitter (e.g. 0.02 = ±2%).
    jitter: f64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    RankDone,
}

impl<'a> Simulation<'a> {
    /// Create a simulation with the default ±2% rank jitter.
    pub fn new(
        catalog: &'a InstanceCatalog,
        cluster: ClusterSpec,
        checkpoint: CheckpointSpec,
    ) -> Self {
        Self {
            catalog,
            cluster,
            checkpoint,
            jitter: 0.02,
        }
    }

    /// Override the rank speed jitter (0 disables it).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self
    }

    /// Deterministic per-rank slowdown factor in `[1, 1 + jitter]`.
    fn rank_factor(&self, rank: u32) -> f64 {
        // splitmix64-style hash for a stable pseudo-random spread.
        let mut z = (rank as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = ((z >> 11) as f64) / ((1u64 << 53) as f64);
        1.0 + self.jitter * u
    }

    /// Execute `program`, taking a coordinated checkpoint at the first
    /// opportunity after every `ckpt_interval` productive hours (`None`
    /// disables checkpointing), with an optional injected failure at
    /// absolute time `failure_at`.
    pub fn run(
        &self,
        program: &Program,
        ckpt_interval: Option<Hours>,
        failure_at: Option<Hours>,
    ) -> SimOutcome {
        assert_eq!(
            program.processes, self.cluster.processes,
            "program and cluster disagree on rank count"
        );
        let ty = self.catalog.get(self.cluster.instance_type);
        let fail_at = failure_at.unwrap_or(f64::INFINITY);
        let mut queue: EventQueue<Ev> = EventQueue::new();

        let mut wall: Hours = 0.0;
        let mut productive: Hours = 0.0;
        let mut saved: Hours = 0.0;
        let mut checkpoints = 0u32;

        for phase in &program.phases {
            if wall >= fail_at {
                break;
            }
            match *phase {
                Phase::Compute { gflop } => {
                    // Each rank finishes at its own jittered time; the next
                    // (synchronized) phase waits for the slowest.
                    let base_h = gflop / ty.gflops_per_core / 3600.0;
                    for rank in 0..program.processes {
                        queue.schedule(wall + base_h * self.rank_factor(rank), Ev::RankDone);
                    }
                    let mut latest = wall;
                    while let Some((t, Ev::RankDone)) = queue.pop() {
                        latest = t;
                    }
                    let dur = latest - wall;
                    if wall + dur > fail_at {
                        productive += (fail_at - wall).max(0.0);
                        wall = fail_at;
                    } else {
                        wall = latest;
                        productive += dur;
                    }
                }
                Phase::Exchange {
                    gb,
                    pattern,
                    rounds,
                } => {
                    let dur =
                        exchange_hours(ty, &self.cluster, gb, pattern, rounds, program.processes);
                    step(&mut wall, &mut productive, dur, fail_at);
                }
                Phase::Collective {
                    op,
                    bytes_per_rank,
                    rounds,
                } => {
                    let shape = crate::collective::CommShape {
                        ranks: program.processes,
                        ranks_per_node: self.cluster.ranks_per_instance(self.catalog),
                    };
                    let dur = rounds * op.seconds(ty, shape, bytes_per_rank) / 3600.0;
                    step(&mut wall, &mut productive, dur, fail_at);
                }
                Phase::Io { seq_gb, rnd_gb } => {
                    let ranks_per_node = self.cluster.ranks_per_instance(self.catalog) as f64;
                    let dur = (seq_gb * ranks_per_node * 1000.0 / ty.disk_seq_mbps
                        + rnd_gb * ranks_per_node * 1000.0 / ty.disk_rnd_mbps)
                        / 3600.0;
                    step(&mut wall, &mut productive, dur, fail_at);
                }
                Phase::CheckpointOpportunity => {
                    if let Some(interval) = ckpt_interval {
                        if productive - saved >= interval {
                            let o = self.checkpoint.overhead_hours();
                            if wall + o > fail_at {
                                wall = fail_at;
                                break;
                            }
                            wall += o;
                            saved = productive;
                            checkpoints += 1;
                        }
                    }
                }
            }
        }

        let completed = wall < fail_at && {
            // All phases consumed without hitting the failure.
            productive >= program_productive_floor(program)
        };
        if completed {
            saved = productive;
        }
        SimOutcome {
            completed,
            wall_hours: wall.min(fail_at),
            productive_hours: productive,
            checkpoints_taken: checkpoints,
            saved_progress_hours: saved,
        }
    }
}

/// Advance wall/productive clocks by a synchronized phase of `dur` hours,
/// truncating at the failure time.
fn step(wall: &mut Hours, productive: &mut Hours, dur: Hours, fail_at: Hours) {
    if *wall + dur > fail_at {
        *productive += (fail_at - *wall).max(0.0);
        *wall = fail_at;
    } else {
        *wall += dur;
        *productive += dur;
    }
}

/// Cost of one synchronized exchange phase, hours.
fn exchange_hours(
    ty: &InstanceType,
    cluster: &ClusterSpec,
    gb_per_rank: f64,
    pattern: crate::profile::CommPattern,
    rounds: f64,
    processes: u32,
) -> Hours {
    let m = cluster.instances.max(1) as f64;
    let ranks_per_node = ty.cores.min(processes);
    let total_gb = gb_per_rank * processes as f64;
    let off = pattern.off_node_fraction(ranks_per_node, processes);
    let off_s = if total_gb > 0.0 {
        total_gb * off / m / (ty.network_gbps / 8.0)
    } else {
        0.0
    };
    let on_s = total_gb * (1.0 - off) / m / SHARED_MEM_GBPS;
    let latency_s =
        rounds * pattern.off_node_messages(ranks_per_node, processes) * ty.latency_ms / 1000.0;
    (off_s + on_s + latency_s) / 3600.0
}

/// Minimum productive hours a completed run must have accumulated — used
/// only to distinguish "ran everything" from "stopped by failure" without
/// tracking a phase cursor. Always 0: the loop either consumed all phases
/// or broke at `fail_at`, and `wall < fail_at` discriminates the two.
fn program_productive_floor(_program: &Program) -> Hours {
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npb::{NpbClass, NpbKernel};
    use crate::storage::S3Store;

    fn setup(
        kernel: NpbKernel,
        ty: &str,
        procs: u32,
        repeats: u32,
    ) -> (
        InstanceCatalog,
        ClusterSpec,
        crate::profile::AppProfile,
        CheckpointSpec,
    ) {
        let cat = InstanceCatalog::paper_2014();
        let id = cat.by_name(ty).unwrap();
        let cluster = ClusterSpec::for_processes(&cat, id, procs);
        let profile = kernel.profile(NpbClass::B, procs).repeated(repeats);
        let ckpt = CheckpointSpec::for_app(&cat, &cluster, &profile, S3Store::paper_2014());
        (cat, cluster, profile, ckpt)
    }

    #[test]
    fn des_matches_closed_form_estimate() {
        let (cat, cluster, profile, ckpt) = setup(NpbKernel::Bt, "m1.small", 128, 10);
        let analytic = cluster.estimate(&cat, &profile).total_hours();
        let prog = Program::from_profile(&profile, 100);
        let sim = Simulation::new(&cat, cluster, ckpt).with_jitter(0.0);
        let out = sim.run(&prog, None, None);
        assert!(out.completed);
        let rel = (out.wall_hours - analytic).abs() / analytic;
        // The DES adds per-superstep sync latency the closed form charges
        // per iteration; with 100 supersteps vs 2000 iterations the DES is
        // slightly cheaper. Within 5%.
        assert!(rel < 0.05, "DES {} vs analytic {analytic}", out.wall_hours);
    }

    #[test]
    fn jitter_slows_execution_monotonically() {
        let (cat, cluster, profile, ckpt) = setup(NpbKernel::Bt, "m1.small", 128, 1);
        let prog = Program::from_profile(&profile, 50);
        let t0 = Simulation::new(&cat, cluster, ckpt)
            .with_jitter(0.0)
            .run(&prog, None, None);
        let t5 = Simulation::new(&cat, cluster, ckpt)
            .with_jitter(0.05)
            .run(&prog, None, None);
        assert!(t5.wall_hours > t0.wall_hours);
    }

    #[test]
    fn checkpoints_add_overhead_but_save_progress() {
        let (cat, cluster, profile, ckpt) = setup(NpbKernel::Bt, "m1.small", 128, 50);
        let prog = Program::from_profile(&profile, 200);
        let sim = Simulation::new(&cat, cluster, ckpt);
        let plain = sim.run(&prog, None, None);
        let interval = plain.wall_hours / 10.0;
        let ck = sim.run(&prog, Some(interval), None);
        assert!(ck.completed);
        assert!(ck.checkpoints_taken >= 5, "{}", ck.checkpoints_taken);
        assert!(ck.wall_hours > plain.wall_hours);
    }

    #[test]
    fn failure_without_checkpoints_loses_everything() {
        let (cat, cluster, profile, ckpt) = setup(NpbKernel::Bt, "m1.small", 128, 50);
        let prog = Program::from_profile(&profile, 100);
        let sim = Simulation::new(&cat, cluster, ckpt);
        let full = sim.run(&prog, None, None);
        let out = sim.run(&prog, None, Some(full.wall_hours * 0.6));
        assert!(!out.completed);
        assert_eq!(out.saved_progress_hours, 0.0);
        assert!(out.productive_hours > 0.0);
    }

    #[test]
    fn failure_with_checkpoints_keeps_saved_progress() {
        let (cat, cluster, profile, ckpt) = setup(NpbKernel::Bt, "m1.small", 128, 50);
        let prog = Program::from_profile(&profile, 200);
        let sim = Simulation::new(&cat, cluster, ckpt);
        let full = sim.run(&prog, None, None);
        let interval = full.wall_hours / 20.0;
        let out = sim.run(&prog, Some(interval), Some(full.wall_hours * 0.6));
        assert!(!out.completed);
        assert!(out.saved_progress_hours > 0.0);
        assert!(out.saved_progress_hours <= out.productive_hours);
    }

    #[test]
    fn failure_at_time_zero_accomplishes_nothing() {
        let (cat, cluster, profile, ckpt) = setup(NpbKernel::Bt, "m1.small", 128, 1);
        let prog = Program::from_profile(&profile, 10);
        let out = Simulation::new(&cat, cluster, ckpt).run(&prog, Some(0.1), Some(0.0));
        assert!(!out.completed);
        assert_eq!(out.wall_hours, 0.0);
        assert_eq!(out.productive_hours, 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (cat, cluster, profile, ckpt) = setup(NpbKernel::Ft, "cc2.8xlarge", 128, 5);
        let prog = Program::from_profile(&profile, 60);
        let sim = Simulation::new(&cat, cluster, ckpt);
        let a = sim.run(&prog, Some(0.05), None);
        let b = sim.run(&prog, Some(0.05), None);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "disagree on rank count")]
    fn mismatched_program_panics() {
        let (cat, cluster, _, ckpt) = setup(NpbKernel::Bt, "m1.small", 128, 1);
        let other = NpbKernel::Bt.profile(NpbClass::B, 64);
        let prog = Program::from_profile(&other, 10);
        Simulation::new(&cat, cluster, ckpt).run(&prog, None, None);
    }
}
