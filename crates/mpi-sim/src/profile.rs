//! Application profiles — the paper's TAU 5-tuple.
//!
//! Section 4.4: *"We estimate the execution time of MPI applications on
//! different instance types using TAU with the following profile:
//! `<#instr, Data_send, Data_recv, IO_seq, IO_rnd>`"*. We keep exactly that
//! shape (with `#instr` expressed in GFLOP so it divides cleanly by the
//! catalog's per-core GFLOP/s) plus two fields the rest of the pipeline
//! needs: the dominant communication pattern (which decides how much
//! traffic leaves the node) and the per-process memory image size (which
//! decides checkpoint volume).

use serde::{Deserialize, Serialize};

/// Dominant communication pattern of an MPI application. Decides the
/// fraction of message traffic that must cross the NIC when several ranks
/// share an instance ("many processes in cc2.8xlarge … utilize shared
/// memory instead of exchanging message through the network" — Section
/// 5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommPattern {
    /// Nearest-neighbor halo exchange on a 3D decomposition (BT, SP, LU,
    /// LAMMPS). With `c` ranks per node arranged compactly, roughly
    /// `1 - (1 - c^(-1/3))` … we use the standard surface/volume estimate:
    /// off-node fraction ≈ `min(1, c^(-1/3))` is too optimistic for small
    /// c, so we use `1 - ((c-1)/c)^(1/3)` smoothed — see
    /// [`CommPattern::off_node_fraction`].
    Neighbor3D,
    /// Personalized all-to-all (FT transpose, IS key exchange): a rank
    /// sends `1/N` of its volume to every other rank, so the off-node
    /// fraction with `c` ranks per node out of `N` total is `(N - c) /
    /// (N - 1)`.
    AllToAll,
    /// 1D ring / pipeline (wavefront sweeps): two neighbors, at most two
    /// off-node partners per node boundary.
    Ring,
}

impl CommPattern {
    /// Fraction of per-rank communication volume that crosses the network
    /// when `ranks_per_node` of the `total_ranks` share each instance.
    ///
    /// Returns a value in `[0, 1]`; single-instance clusters return 0
    /// (pure shared memory), single-rank-per-node clusters return 1.
    pub fn off_node_fraction(self, ranks_per_node: u32, total_ranks: u32) -> f64 {
        let c = ranks_per_node.min(total_ranks) as f64;
        let n = total_ranks as f64;
        if n <= 1.0 || c >= n {
            return 0.0;
        }
        if c <= 1.0 {
            return 1.0;
        }
        match self {
            // Surface-to-volume of a compact cube of c ranks inside a 3D
            // lattice: the share of a rank's 6 faces that leave the cube is
            // ≈ c^(-1/3) per dimension.
            CommPattern::Neighbor3D => c.powf(-1.0 / 3.0).min(1.0),
            CommPattern::AllToAll => (n - c) / (n - 1.0),
            // A contiguous segment of c ranks in a ring has 2 boundary
            // links out of 2c total links.
            CommPattern::Ring => (1.0 / c).min(1.0),
        }
    }

    /// Off-node messages each rank sends per communication round — the
    /// latency-bound component of strong scaling. All-to-all pays one
    /// message per off-node peer; halo patterns pay one per off-node face.
    pub fn off_node_messages(self, ranks_per_node: u32, total_ranks: u32) -> f64 {
        let c = ranks_per_node.min(total_ranks) as f64;
        let n = total_ranks as f64;
        if n <= 1.0 || c >= n {
            return 0.0;
        }
        match self {
            CommPattern::Neighbor3D => 6.0 * self.off_node_fraction(ranks_per_node, total_ranks),
            CommPattern::AllToAll => (n - c).max(0.0),
            CommPattern::Ring => 2.0 * self.off_node_fraction(ranks_per_node, total_ranks),
        }
    }
}

/// TAU-style application profile: aggregate resource demands of one MPI
/// execution with a fixed process count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Human-readable name, e.g. `"BT.B"`.
    pub name: String,
    /// Number of MPI processes (`N` in the paper; fixed during execution).
    pub processes: u32,
    /// Total computational work across all ranks, in GFLOP (`#instr`).
    pub total_gflop: f64,
    /// Total bytes sent by all ranks over MPI, in GB (`Data_send`).
    pub data_send_gb: f64,
    /// Total bytes received, in GB (`Data_recv`). Symmetric patterns have
    /// `data_recv == data_send`.
    pub data_recv_gb: f64,
    /// Total sequential I/O volume in GB (`IO_seq`).
    pub io_seq_gb: f64,
    /// Total random-access I/O volume in GB (`IO_rnd`).
    pub io_rnd_gb: f64,
    /// Dominant communication pattern.
    pub pattern: CommPattern,
    /// Resident memory image per process in GB — the coordinated checkpoint
    /// volume per rank (BLCR dumps the full process image).
    pub image_gb_per_process: f64,
    /// Number of outer iterations; used to structure the discrete-event
    /// program into supersteps and to place checkpoint opportunities.
    pub iterations: u32,
}

impl AppProfile {
    /// Computational work per rank in GFLOP.
    pub fn gflop_per_rank(&self) -> f64 {
        self.total_gflop / self.processes as f64
    }

    /// Communication volume per rank (max of send/recv, the bottleneck
    /// direction) in GB.
    pub fn comm_gb_per_rank(&self) -> f64 {
        self.data_send_gb.max(self.data_recv_gb) / self.processes as f64
    }

    /// Total checkpoint volume of one coordinated checkpoint, in GB.
    pub fn checkpoint_volume_gb(&self) -> f64 {
        self.image_gb_per_process * self.processes as f64
    }

    /// Scale the workload by running it `times` back-to-back (the paper
    /// runs each NPB kernel 100–200 times "to extend to large scale
    /// computing"). I/O, comm and compute all scale linearly; the resident
    /// image does not.
    pub fn repeated(&self, times: u32) -> AppProfile {
        assert!(times >= 1, "must repeat at least once");
        let k = times as f64;
        AppProfile {
            name: format!("{}x{}", self.name, times),
            total_gflop: self.total_gflop * k,
            data_send_gb: self.data_send_gb * k,
            data_recv_gb: self.data_recv_gb * k,
            io_seq_gb: self.io_seq_gb * k,
            io_rnd_gb: self.io_rnd_gb * k,
            iterations: self.iterations.saturating_mul(times),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppProfile {
        AppProfile {
            name: "X".into(),
            processes: 128,
            total_gflop: 1280.0,
            data_send_gb: 64.0,
            data_recv_gb: 64.0,
            io_seq_gb: 12.8,
            io_rnd_gb: 0.0,
            pattern: CommPattern::Neighbor3D,
            image_gb_per_process: 0.25,
            iterations: 200,
        }
    }

    #[test]
    fn per_rank_quantities() {
        let p = sample();
        assert!((p.gflop_per_rank() - 10.0).abs() < 1e-12);
        assert!((p.comm_gb_per_rank() - 0.5).abs() < 1e-12);
        assert!((p.checkpoint_volume_gb() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_scales_flows_not_image() {
        let p = sample().repeated(100);
        assert!((p.total_gflop - 128_000.0).abs() < 1e-9);
        assert!((p.io_seq_gb - 1280.0).abs() < 1e-9);
        assert_eq!(p.iterations, 20_000);
        assert_eq!(p.image_gb_per_process, 0.25);
        assert_eq!(p.processes, 128);
    }

    #[test]
    fn off_node_fraction_boundary_cases() {
        for pat in [
            CommPattern::Neighbor3D,
            CommPattern::AllToAll,
            CommPattern::Ring,
        ] {
            // All ranks on one node: everything is shared memory.
            assert_eq!(pat.off_node_fraction(128, 128), 0.0);
            assert_eq!(pat.off_node_fraction(200, 128), 0.0);
            // One rank per node: everything crosses the NIC.
            assert_eq!(pat.off_node_fraction(1, 128), 1.0);
            // Single-rank job communicates with nobody.
            assert_eq!(pat.off_node_fraction(1, 1), 0.0);
        }
    }

    #[test]
    fn alltoall_leaves_node_more_than_neighbor() {
        // With 32 ranks/node out of 128, all-to-all traffic is mostly
        // off-node while 3D halos are mostly on-node.
        let a2a = CommPattern::AllToAll.off_node_fraction(32, 128);
        let nbr = CommPattern::Neighbor3D.off_node_fraction(32, 128);
        assert!(a2a > 0.7, "a2a {a2a}");
        assert!(nbr < 0.5, "nbr {nbr}");
        assert!(a2a > nbr);
    }

    #[test]
    fn off_node_fraction_monotone_in_ranks_per_node() {
        for pat in [
            CommPattern::Neighbor3D,
            CommPattern::AllToAll,
            CommPattern::Ring,
        ] {
            let mut prev = 1.0;
            for c in [1u32, 2, 4, 8, 16, 32, 64, 128] {
                let f = pat.off_node_fraction(c, 128);
                assert!(f <= prev + 1e-12, "{pat:?} c={c}: {f} > {prev}");
                assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
        }
    }
}
