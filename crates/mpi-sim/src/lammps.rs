//! Analytic workload model of LAMMPS (Large-scale Atomic/Molecular
//! Massively Parallel Simulator).
//!
//! The paper's real-world application (Section 5.3.1): a molecular-dynamics
//! run with a **fixed problem size** and a varying process count. Its key
//! property, which the paper leans on, is that the communication *share*
//! grows with the process count: with few processes each rank owns many
//! atoms (compute-heavy); with many processes the halo surface per rank
//! shrinks more slowly than the owned volume, so the run becomes
//! communication-intensive and the optimizer flips from "powerless" m1
//! instances to cc2.8xlarge.

use crate::profile::{AppProfile, CommPattern};
use serde::{Deserialize, Serialize};

/// A LAMMPS-style molecular dynamics workload: Lennard-Jones melt on a 3D
/// spatial decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lammps {
    /// Total number of atoms (fixed while processes vary, per the paper).
    pub atoms: u64,
    /// Number of timesteps.
    pub timesteps: u32,
    /// Sustained floating point work per atom per timestep (force
    /// computation over the neighbor list; ~0.5 kFLOP for LJ with a
    /// standard cutoff).
    pub flop_per_atom_step: f64,
    /// Bytes exchanged per halo atom per timestep (positions out, forces
    /// back).
    pub bytes_per_halo_atom: f64,
}

impl Lammps {
    /// The configuration used in our Figure 5 reproduction: a 256k-atom
    /// melt run for 20k steps. Strong scaling over a fixed atom count is
    /// what the paper exploits: at 32 processes each rank owns 8k atoms
    /// (computation-dominated); at 128 the per-rank halo surface and
    /// per-step message latency dominate and the run becomes
    /// communication-intensive.
    pub fn paper() -> Self {
        Self {
            atoms: 256_000,
            timesteps: 20_000,
            flop_per_atom_step: 500.0,
            bytes_per_halo_atom: 32.0,
        }
    }

    /// Build the profile for a run on `processes` ranks.
    ///
    /// # Panics
    /// Panics if `processes == 0`.
    pub fn profile(&self, processes: u32) -> AppProfile {
        assert!(processes > 0, "need at least one process");
        let n = processes as f64;
        let atoms = self.atoms as f64;
        let steps = self.timesteps as f64;

        let total_gflop = atoms * steps * self.flop_per_atom_step / 1e9;

        // Each rank owns atoms/n atoms in a compact cube; its halo is the
        // six faces of that cube, one atom-layer deep.
        let per_rank_atoms = atoms / n;
        let face_atoms = per_rank_atoms.powf(2.0 / 3.0);
        let halo_atoms_per_rank = 6.0 * face_atoms;
        let comm_gb = halo_atoms_per_rank * self.bytes_per_halo_atom * steps * n / 1e9;

        AppProfile {
            name: format!("LAMMPS-{}p", processes),
            processes,
            total_gflop,
            data_send_gb: comm_gb,
            data_recv_gb: comm_gb,
            io_seq_gb: 0.0,
            io_rnd_gb: 0.0,
            pattern: CommPattern::Neighbor3D,
            // ~200 B of state per atom (position, velocity, force, neighbor
            // list share) plus runtime image.
            image_gb_per_process: 0.05 + per_rank_atoms * 200.0 / 1e9,
            iterations: self.timesteps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_is_independent_of_process_count() {
        let l = Lammps::paper();
        let a = l.profile(32);
        let b = l.profile(128);
        assert!((a.total_gflop - b.total_gflop).abs() < 1e-9);
    }

    #[test]
    fn comm_share_grows_with_processes() {
        // The paper: "as the number of processes increases, the
        // communication proportion is increasing".
        let l = Lammps::paper();
        let share = |p: u32| {
            let pr = l.profile(p);
            pr.data_send_gb / pr.total_gflop
        };
        assert!(share(128) > share(32));
        assert!(share(512) > share(128));
    }

    #[test]
    fn per_rank_compute_shrinks_with_processes() {
        let l = Lammps::paper();
        assert!(l.profile(128).gflop_per_rank() < l.profile(32).gflop_per_rank());
    }

    #[test]
    fn image_shrinks_with_processes_but_keeps_floor() {
        let l = Lammps::paper();
        let small = l.profile(1024).image_gb_per_process;
        let big = l.profile(8).image_gb_per_process;
        assert!(small < big);
        assert!(small >= 0.05);
    }

    #[test]
    fn profile_names_process_count() {
        assert_eq!(Lammps::paper().profile(32).name, "LAMMPS-32p");
    }
}
