//! Phase-structured MPI programs for the discrete-event simulator.
//!
//! An [`AppProfile`] summarizes *totals*; a [`Program`] lays those totals
//! out in time as a sequence of BSP supersteps — compute, halo exchange /
//! collective, optional I/O — with a checkpoint opportunity after each
//! superstep, which is where OpenMPI+BLCR can coordinate a dump.

use crate::collective::Collective;
use crate::profile::{AppProfile, CommPattern};
use serde::{Deserialize, Serialize};

/// One phase of an MPI program, with per-rank resource demands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Local computation: `gflop` of work per rank, perfectly parallel.
    Compute {
        /// Work per rank, GFLOP.
        gflop: f64,
    },
    /// Synchronized communication step (halo exchange or collective):
    /// every rank sends/receives `gb` and no rank proceeds until all
    /// complete.
    Exchange {
        /// Volume per rank, GB.
        gb: f64,
        /// Traffic pattern, for the off-node fraction.
        pattern: CommPattern,
        /// Communication rounds folded into this phase (application
        /// iterations per superstep) — each pays per-message latency.
        rounds: f64,
    },
    /// A synchronized MPI collective operation, costed with the α–β
    /// models of [`crate::collective`].
    Collective {
        /// Which collective.
        op: Collective,
        /// Payload per rank, bytes.
        bytes_per_rank: f64,
        /// Back-to-back invocations folded into this phase.
        rounds: f64,
    },
    /// Local I/O.
    Io {
        /// Sequential volume per rank, GB.
        seq_gb: f64,
        /// Random-access volume per rank, GB.
        rnd_gb: f64,
    },
    /// A point where a coordinated checkpoint may be taken (superstep
    /// boundary). Zero cost unless the runtime decides to checkpoint here.
    CheckpointOpportunity,
}

/// A schedulable MPI program: phases plus identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (from the profile).
    pub name: String,
    /// Rank count.
    pub processes: u32,
    /// The phase list, executed in order by all ranks.
    pub phases: Vec<Phase>,
}

impl Program {
    /// Lay out `profile` as `supersteps` identical BSP supersteps. More
    /// supersteps mean finer checkpoint granularity and more barriers, at
    /// higher simulation cost; callers typically pick
    /// `min(profile.iterations, a few hundred)`.
    ///
    /// # Panics
    /// Panics if `supersteps == 0`.
    pub fn from_profile(profile: &AppProfile, supersteps: u32) -> Self {
        assert!(supersteps > 0, "need at least one superstep");
        let s = supersteps as f64;
        let n = profile.processes as f64;
        let compute = Phase::Compute {
            gflop: profile.total_gflop / n / s,
        };
        let exchange = Phase::Exchange {
            gb: profile.comm_gb_per_rank() / s,
            pattern: profile.pattern,
            rounds: profile.iterations as f64 / s,
        };
        let io = Phase::Io {
            seq_gb: profile.io_seq_gb / n / s,
            rnd_gb: profile.io_rnd_gb / n / s,
        };
        let has_io = profile.io_seq_gb + profile.io_rnd_gb > 0.0;

        let mut phases = Vec::with_capacity(supersteps as usize * 4);
        for _ in 0..supersteps {
            phases.push(compute);
            phases.push(exchange);
            if has_io {
                phases.push(io);
            }
            phases.push(Phase::CheckpointOpportunity);
        }
        Self {
            name: profile.name.clone(),
            processes: profile.processes,
            phases,
        }
    }

    /// Number of checkpoint opportunities.
    pub fn opportunities(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p, Phase::CheckpointOpportunity))
            .count()
    }

    /// Total per-rank compute in the program, GFLOP.
    pub fn total_gflop_per_rank(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Compute { gflop } => *gflop,
                _ => 0.0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npb::{NpbClass, NpbKernel};

    #[test]
    fn program_conserves_compute_volume() {
        let p = NpbKernel::Bt.profile(NpbClass::B, 128);
        let prog = Program::from_profile(&p, 100);
        let per_rank = prog.total_gflop_per_rank();
        assert!((per_rank - p.gflop_per_rank()).abs() / p.gflop_per_rank() < 1e-9);
    }

    #[test]
    fn one_opportunity_per_superstep() {
        let p = NpbKernel::Lu.profile(NpbClass::A, 64);
        let prog = Program::from_profile(&p, 37);
        assert_eq!(prog.opportunities(), 37);
    }

    #[test]
    fn io_phases_only_when_profile_has_io() {
        let bt = Program::from_profile(&NpbKernel::Bt.profile(NpbClass::B, 128), 10);
        assert!(!bt.phases.iter().any(|p| matches!(p, Phase::Io { .. })));
        let btio = Program::from_profile(&NpbKernel::Btio.profile(NpbClass::B, 128), 10);
        assert!(btio.phases.iter().any(|p| matches!(p, Phase::Io { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one superstep")]
    fn zero_supersteps_panics() {
        Program::from_profile(&NpbKernel::Bt.profile(NpbClass::S, 4), 0);
    }
}

#[cfg(test)]
mod collective_phase_tests {
    use super::*;
    use crate::checkpoint::CheckpointSpec;
    use crate::cluster::ClusterSpec;
    use crate::collective::Collective;
    use crate::sim::Simulation;
    use crate::storage::S3Store;
    use ec2_market::instance::InstanceCatalog;

    fn hand_built(processes: u32) -> Program {
        Program {
            name: "hand".into(),
            processes,
            phases: vec![
                Phase::Compute { gflop: 1.0 },
                Phase::Collective {
                    op: Collective::Allreduce,
                    bytes_per_rank: 1e6,
                    rounds: 10.0,
                },
                Phase::CheckpointOpportunity,
                Phase::Compute { gflop: 1.0 },
                Phase::Collective {
                    op: Collective::AllToAll,
                    bytes_per_rank: 1e6,
                    rounds: 10.0,
                },
            ],
        }
    }

    #[test]
    fn collective_phases_execute_and_cost_time() {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let cluster = ClusterSpec::for_processes(&cat, ty, 64);
        let profile = crate::npb::NpbKernel::Ep.profile(crate::npb::NpbClass::S, 64);
        let ckpt = CheckpointSpec::for_app(&cat, &cluster, &profile, S3Store::paper_2014());
        let prog = hand_built(64);
        let sim = Simulation::new(&cat, cluster, ckpt).with_jitter(0.0);
        let out = sim.run(&prog, None, None);
        assert!(out.completed);
        // Compute alone: 2 GFLOP / 0.2 GFLOP/s = 10 s.
        let compute_h = 2.0 / 0.2 / 3600.0;
        assert!(
            out.wall_hours > compute_h,
            "collectives must add time: {} vs {}",
            out.wall_hours,
            compute_h
        );
    }

    #[test]
    fn alltoall_phase_costs_more_than_allreduce() {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let cluster = ClusterSpec::for_processes(&cat, ty, 64);
        let profile = crate::npb::NpbKernel::Ep.profile(crate::npb::NpbClass::S, 64);
        let ckpt = CheckpointSpec::for_app(&cat, &cluster, &profile, S3Store::paper_2014());
        // Small payloads: all-to-all pays (p-1) latencies per round vs
        // allreduce's 2*log2(p).
        let mk = |op| Program {
            name: "one".into(),
            processes: 64,
            phases: vec![Phase::Collective {
                op,
                bytes_per_rank: 1e3,
                rounds: 100.0,
            }],
        };
        let sim = Simulation::new(&cat, cluster, ckpt).with_jitter(0.0);
        let a2a = sim.run(&mk(Collective::AllToAll), None, None);
        let ar = sim.run(&mk(Collective::Allreduce), None, None);
        assert!(a2a.wall_hours > ar.wall_hours);
    }
}
