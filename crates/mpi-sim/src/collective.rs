//! Analytic cost models for MPI collective operations.
//!
//! The α–β (latency–bandwidth) models standard in the literature
//! (Hockney/LogP-style), specialized to the two-level EC2 topology: ranks
//! on the same instance communicate through shared memory, ranks on
//! different instances through the shared NIC. These feed the per-phase
//! costs of richer [`crate::program::Program`]s and give the workload
//! models in [`crate::npb`] principled per-iteration costs.

use crate::cluster::SHARED_MEM_GBPS;
use ec2_market::instance::InstanceType;
use serde::{Deserialize, Serialize};

/// The MPI collectives used by the NPB kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// `MPI_Bcast` — binomial tree.
    Broadcast,
    /// `MPI_Reduce` / `MPI_Allreduce` — reduce-scatter + allgather
    /// (Rabenseifner) for large messages.
    Allreduce,
    /// `MPI_Alltoall` — pairwise exchange, the transpose workhorse.
    AllToAll,
    /// `MPI_Allgather` — ring.
    Allgather,
    /// `MPI_Barrier` — dissemination.
    Barrier,
}

/// Cluster shape seen by a collective: total ranks and ranks per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommShape {
    /// Total ranks in the communicator.
    pub ranks: u32,
    /// Co-resident ranks per instance (fully packed).
    pub ranks_per_node: u32,
}

impl CommShape {
    /// Number of instances spanned.
    pub fn nodes(&self) -> u32 {
        self.ranks.div_ceil(self.ranks_per_node.max(1))
    }

    /// Whether the communicator crosses instance boundaries.
    pub fn multi_node(&self) -> bool {
        self.nodes() > 1
    }
}

impl Collective {
    /// Wall-clock seconds for this collective moving `bytes_per_rank`
    /// per rank on `shape`, over `ty`'s network.
    ///
    /// Single-node communicators use shared memory and negligible latency.
    pub fn seconds(self, ty: &InstanceType, shape: CommShape, bytes_per_rank: f64) -> f64 {
        let p = shape.ranks.max(1) as f64;
        if p <= 1.0 {
            return 0.0;
        }
        let alpha = if shape.multi_node() {
            ty.latency_ms / 1000.0
        } else {
            1e-6 // shared-memory latency
        };
        let beta = if shape.multi_node() {
            // Seconds per byte through the NIC, shared by the node's ranks
            // that are communicating off-node concurrently.
            let nic_bytes_per_s = ty.network_gbps / 8.0 * 1e9;
            shape.ranks_per_node.min(shape.ranks) as f64 / nic_bytes_per_s
        } else {
            1.0 / (SHARED_MEM_GBPS * 1e9)
        };
        let n = bytes_per_rank;
        let lg = p.log2().ceil();

        match self {
            // Binomial tree: ceil(log2 p) rounds of the full message.
            Collective::Broadcast => lg * (alpha + n * beta),
            // Rabenseifner: 2·log2(p)·α + 2·(p−1)/p·n·β.
            Collective::Allreduce => 2.0 * lg * alpha + 2.0 * (p - 1.0) / p * n * beta,
            // Pairwise exchange: (p−1) rounds of n/p bytes each.
            Collective::AllToAll => (p - 1.0) * (alpha + n / p * beta),
            // Ring: (p−1) rounds of n/p bytes.
            Collective::Allgather => (p - 1.0) * (alpha + n / p * beta),
            // Dissemination barrier: ceil(log2 p) zero-byte rounds.
            Collective::Barrier => lg * alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceCatalog;

    fn ty(name: &str) -> InstanceType {
        let c = InstanceCatalog::paper_2014();
        c.get(c.by_name(name).unwrap()).clone()
    }

    fn shape(ranks: u32, per_node: u32) -> CommShape {
        CommShape {
            ranks,
            ranks_per_node: per_node,
        }
    }

    #[test]
    fn single_rank_costs_nothing() {
        for coll in [
            Collective::Broadcast,
            Collective::Allreduce,
            Collective::AllToAll,
            Collective::Allgather,
            Collective::Barrier,
        ] {
            assert_eq!(coll.seconds(&ty("m1.small"), shape(1, 1), 1e6), 0.0);
        }
    }

    #[test]
    fn shared_memory_much_faster_than_network() {
        let cc2 = ty("cc2.8xlarge");
        let on_node = Collective::AllToAll.seconds(&cc2, shape(32, 32), 1e6);
        let cross = Collective::AllToAll.seconds(&cc2, shape(32, 8), 1e6);
        assert!(on_node < cross / 3.0, "on {on_node} vs cross {cross}");
    }

    #[test]
    fn barrier_is_latency_only() {
        let small = ty("m1.small");
        let b0 = Collective::Barrier.seconds(&small, shape(128, 1), 0.0);
        let b1 = Collective::Barrier.seconds(&small, shape(128, 1), 1e9);
        assert_eq!(b0, b1, "barrier must ignore payload");
        // 7 rounds × 0.5 ms.
        assert!((b0 - 7.0 * 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn alltoall_scales_worse_than_allreduce_in_latency() {
        // (p−1)·α vs 2·log2(p)·α: at 128 ranks, 127 vs 14 rounds.
        let small = ty("m1.small");
        let a2a = Collective::AllToAll.seconds(&small, shape(128, 1), 0.0);
        let ar = Collective::Allreduce.seconds(&small, shape(128, 1), 0.0);
        assert!(a2a > 5.0 * ar, "a2a {a2a} vs allreduce {ar}");
    }

    #[test]
    fn bandwidth_term_scales_with_message_size() {
        let small = ty("m1.small");
        let s1 = Collective::Broadcast.seconds(&small, shape(64, 1), 1e6);
        let s2 = Collective::Broadcast.seconds(&small, shape(64, 1), 2e6);
        assert!(s2 > s1);
        // Latency-only part is identical; bandwidth doubles.
        let lat = Collective::Broadcast.seconds(&small, shape(64, 1), 0.0);
        assert!(((s2 - lat) / (s1 - lat) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_network_speeds_up_collectives() {
        let sh = shape(128, 1);
        let small = Collective::Allreduce.seconds(&ty("m1.small"), sh, 1e7);
        let sh_cc2 = shape(128, 32);
        let cc2 = Collective::Allreduce.seconds(&ty("cc2.8xlarge"), sh_cc2, 1e7);
        assert!(cc2 < small);
    }

    #[test]
    fn shape_helpers() {
        assert_eq!(shape(128, 32).nodes(), 4);
        assert!(!shape(32, 32).multi_node());
        assert!(shape(33, 32).multi_node());
    }
}
