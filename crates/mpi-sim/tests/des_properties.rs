//! Property-based tests of the discrete-event MPI simulator's invariants.

use ec2_market::instance::InstanceCatalog;
use mpi_sim::checkpoint::CheckpointSpec;
use mpi_sim::cluster::ClusterSpec;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::program::Program;
use mpi_sim::sim::Simulation;
use mpi_sim::storage::S3Store;
use proptest::prelude::*;

fn setup(procs: u32) -> (InstanceCatalog, ClusterSpec, CheckpointSpec, Program) {
    let cat = InstanceCatalog::paper_2014();
    let ty = cat.by_name("m1.medium").unwrap();
    let profile = NpbKernel::Bt.profile(NpbClass::A, procs).repeated(20);
    let cluster = ClusterSpec::for_processes(&cat, ty, procs);
    let ckpt = CheckpointSpec::for_app(&cat, &cluster, &profile, S3Store::paper_2014());
    let program = Program::from_profile(&profile, 40);
    (cat, cluster, ckpt, program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accounting invariants hold for any failure time and checkpoint
    /// interval: saved ≤ productive ≤ wall, and completion implies all
    /// progress is durable.
    #[test]
    fn accounting_invariants(
        fail_frac in 0.0f64..1.5,
        interval_frac in 0.01f64..1.2,
    ) {
        let (cat, cluster, ckpt, program) = setup(32);
        let sim = Simulation::new(&cat, cluster, ckpt);
        let clean = sim.run(&program, None, None);
        prop_assert!(clean.completed);

        let interval = clean.wall_hours * interval_frac;
        let fail_at = clean.wall_hours * fail_frac;
        let out = sim.run(&program, Some(interval), Some(fail_at));

        prop_assert!(out.saved_progress_hours <= out.productive_hours + 1e-9);
        prop_assert!(out.productive_hours <= out.wall_hours + 1e-9);
        prop_assert!(out.wall_hours <= fail_at.max(clean.wall_hours * 1.5) + 1e-9);
        if out.completed {
            prop_assert!((out.saved_progress_hours - out.productive_hours).abs() < 1e-9);
        } else {
            prop_assert!(out.wall_hours <= fail_at + 1e-9);
        }
    }

    /// A later failure never yields less durable progress (checkpoints
    /// only accumulate).
    #[test]
    fn progress_monotone_in_failure_time(t1 in 0.05f64..0.5, dt in 0.0f64..0.5) {
        let (cat, cluster, ckpt, program) = setup(16);
        let sim = Simulation::new(&cat, cluster, ckpt);
        let clean = sim.run(&program, None, None);
        let interval = clean.wall_hours / 10.0;
        let a = sim.run(&program, Some(interval), Some(clean.wall_hours * t1));
        let b = sim.run(&program, Some(interval), Some(clean.wall_hours * (t1 + dt)));
        prop_assert!(b.saved_progress_hours >= a.saved_progress_hours - 1e-9);
    }

    /// Shorter checkpoint intervals never reduce the progress that
    /// survives a mid-run failure, and strictly increase checkpoint count
    /// (until the overhead-bound floor).
    #[test]
    fn denser_checkpoints_save_no_less(frac in 0.3f64..0.9) {
        let (cat, cluster, ckpt, program) = setup(16);
        let sim = Simulation::new(&cat, cluster, ckpt);
        let clean = sim.run(&program, None, None);
        let fail_at = clean.wall_hours * frac;
        let coarse = sim.run(&program, Some(clean.wall_hours / 4.0), Some(fail_at));
        let fine = sim.run(&program, Some(clean.wall_hours / 16.0), Some(fail_at));
        prop_assert!(fine.checkpoints_taken >= coarse.checkpoints_taken);
        prop_assert!(
            fine.saved_progress_hours >= coarse.saved_progress_hours - clean.wall_hours / 4.0
        );
    }
}
