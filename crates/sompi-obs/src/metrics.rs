//! Monotonic counters and phase timers.
//!
//! These are the numeric backbone behind the rates a run report prints:
//! candidates evaluated per second, prune rate, per-phase wall time. They
//! are deliberately tiny — a counter is one relaxed atomic, a stopwatch is
//! one `Instant` — so instrumented code can use them unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic event counter shareable across threads.
///
/// ```
/// use sompi_obs::Counter;
///
/// let evals = Counter::new();
/// evals.inc();
/// evals.add(41);
/// assert_eq!(evals.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A started stopwatch for one pipeline phase.
///
/// ```
/// use sompi_obs::PhaseTimer;
///
/// let t = PhaseTimer::start();
/// let secs = t.elapsed_secs();
/// assert!(secs >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer {
    started: Instant,
}

impl PhaseTimer {
    /// Start timing now.
    pub fn start() -> Self {
        PhaseTimer {
            started: Instant::now(),
        }
    }

    /// Wall seconds since [`PhaseTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Events per second, or 0 when the denominator is degenerate.
///
/// ```
/// use sompi_obs::rate_per_sec;
///
/// assert_eq!(rate_per_sec(100, 2.0), 50.0);
/// assert_eq!(rate_per_sec(100, 0.0), 0.0);
/// ```
pub fn rate_per_sec(count: u64, secs: f64) -> f64 {
    if secs > 0.0 && secs.is_finite() {
        count as f64 / secs
    } else {
        0.0
    }
}

/// Pruned fraction of a considered population, in `[0, 1]`.
///
/// ```
/// use sompi_obs::prune_rate;
///
/// assert_eq!(prune_rate(5, 20), 0.25);
/// assert_eq!(prune_rate(0, 0), 0.0);
/// ```
pub fn prune_rate(pruned: u64, considered: u64) -> f64 {
    if considered == 0 {
        0.0
    } else {
        pruned as f64 / considered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn timer_is_monotonic() {
        let t = PhaseTimer::start();
        let a = t.elapsed_secs();
        let b = t.elapsed_secs();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn rates_handle_degenerate_denominators() {
        assert_eq!(rate_per_sec(10, f64::NAN), 0.0);
        assert_eq!(rate_per_sec(10, -1.0), 0.0);
        assert_eq!(prune_rate(3, 4), 0.75);
    }
}
