//! JSONL (newline-delimited JSON) trace sink and parser.
//!
//! One [`Event`] per line, serialized in serde's external enum
//! representation: `{"PlanSelected":{"source":"spot",...}}`. The format
//! is append-friendly, greppable, and documented with a worked example in
//! `docs/OBSERVABILITY.md`.

use crate::event::{Event, TraceLevel};
use crate::recorder::Recorder;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A [`Recorder`] that appends one JSON line per event to a writer.
///
/// Writes are serialized through a mutex (worker threads may share the
/// recorder); I/O errors do not panic or abort the run — they increment a
/// counter readable via [`JsonlRecorder::write_errors`], because tracing
/// must never take down the computation it observes.
pub struct JsonlRecorder {
    level: TraceLevel,
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    write_errors: AtomicU64,
}

impl JsonlRecorder {
    /// Create (truncate) `path` and record events up to `level` into it.
    pub fn create(path: &Path, level: TraceLevel) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(file), level))
    }

    /// Record into an arbitrary writer (tests use `Vec<u8>` via a
    /// wrapper; the CLI uses a file).
    pub fn to_writer(out: Box<dyn Write + Send>, level: TraceLevel) -> Self {
        JsonlRecorder {
            level,
            out: Mutex::new(BufWriter::new(out)),
            write_errors: AtomicU64::new(0),
        }
    }

    /// Flush buffered lines to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }

    /// Number of events lost to I/O errors so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl Recorder for JsonlRecorder {
    fn level(&self) -> TraceLevel {
        self.level
    }

    fn record(&self, event: Event) {
        let line = match serde_json::to_string(&event) {
            Ok(line) => line,
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut out = self.out.lock().unwrap();
        if writeln!(out, "{line}").is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Parse a JSONL trace back into events.
///
/// Blank lines are skipped; a malformed line fails the whole parse with
/// its 1-based line number, so schema drift surfaces loudly instead of
/// silently truncating a report.
///
/// ```
/// use sompi_obs::{parse_jsonl, Event};
///
/// let text = concat!(
///     "{\"GroupFailed\":{\"group\":\"g0\",\"at_hours\":4.0,\"saved_fraction\":0.5}}\n",
///     "\n",
///     "{\"RunCompleted\":{\"finisher\":\"on-demand\",\"total_cost\":9.0,\
///       \"spot_cost\":4.0,\"od_cost\":5.0,\"wall_hours\":12.0,\
///       \"met_deadline\":true,\"groups_failed\":1,\"windows\":null,\
///       \"plan_changes\":null}}\n",
/// );
/// let events = parse_jsonl(text).unwrap();
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[1].kind(), "RunCompleted");
/// assert!(parse_jsonl("not json").is_err());
/// ```
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event: Event =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e} in `{line}`", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::emit;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Shared-buffer writer so the test can read back what the recorder
    /// wrote without touching the filesystem.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::OnDemandFallback {
                at_hours: 10.0,
                remaining_fraction: 0.5,
                od_hours: 6.0,
                od_cost: 3.0,
                reason: "all-groups-failed".to_string(),
            },
            Event::CheckpointTaken {
                group: "g1".to_string(),
                at_hours: 8.0,
                count: 4,
                saved_fraction: 0.5,
            },
        ]
    }

    #[test]
    fn recorder_writes_parseable_lines() {
        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        let rec = JsonlRecorder::to_writer(Box::new(buf.clone()), TraceLevel::Detail);
        for e in sample_events() {
            rec.record(e);
        }
        rec.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, sample_events());
        assert_eq!(rec.write_errors(), 0);
    }

    #[test]
    fn level_gates_what_reaches_the_file() {
        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        let rec = JsonlRecorder::to_writer(Box::new(buf.clone()), TraceLevel::Summary);
        for e in sample_events() {
            let level = e.level();
            emit(&rec, level, || e);
        }
        rec.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let back = parse_jsonl(&text).unwrap();
        // CheckpointTaken is Detail; only the Summary fallback lands.
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].kind(), "OnDemandFallback");
    }

    #[test]
    fn parse_reports_line_numbers() {
        let good = serde_json::to_string(&sample_events()[0]).unwrap();
        let text = format!("{good}\n{{broken\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "unexpected error: {err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("sompi-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let rec = JsonlRecorder::create(&path, TraceLevel::Detail).unwrap();
            for e in sample_events() {
                rec.record(e);
            }
        } // Drop flushes.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_jsonl(&text).unwrap(), sample_events());
        std::fs::remove_dir_all(&dir).ok();
    }
}
