//! Turn a stream of [`Event`]s into a human-readable run report — the
//! engine behind `sompi trace summarize`.

use crate::event::Event;
use crate::metrics::{prune_rate, rate_per_sec};
use std::fmt;

/// Aggregated view of one trace, ready to render.
///
/// Build it from parsed events, then `Display` it (or call
/// [`RunReport::render`]):
///
/// ```
/// use sompi_obs::{Event, RunReport};
///
/// let events = vec![Event::RunCompleted {
///     finisher: "on-demand".to_string(),
///     total_cost: 12.5,
///     spot_cost: 2.5,
///     od_cost: 10.0,
///     wall_hours: 48.0,
///     met_deadline: true,
///     groups_failed: 2,
///     windows: Some(3),
///     plan_changes: Some(1),
/// }];
/// let report = RunReport::from_events(&events);
/// let text = report.render();
/// assert!(text.contains("on-demand"));
/// assert!(text.contains("12.5"));
/// ```
#[derive(Debug, Default)]
pub struct RunReport {
    /// (kind, occurrences) in first-seen order.
    pub event_counts: Vec<(&'static str, usize)>,
    /// Last `PlanSearchStarted` seen, if any.
    search: Option<SearchStats>,
    /// Every `PlanSelected`, in trace order.
    selections: Vec<Selection>,
    /// Window decisions, in trace order.
    windows: Vec<WindowLine>,
    /// Warm-start applications, in trace order (one per warm search).
    warm: Vec<WarmLine>,
    /// Failure / checkpoint / fallback timeline, in trace order.
    timeline: Vec<TimelineLine>,
    /// Aggregated planner-service counters (requests, cache, shedding,
    /// per-phase latency), if the trace has server events.
    server: Option<ServerStats>,
    /// Persistent search-pool usage folded from `SearchPoolUsed` events,
    /// if the trace has any.
    pool: Option<PoolStats>,
    /// Final `RunCompleted`, if the trace has one.
    outcome: Option<Outcome>,
}

/// Planner-service aggregates folded from the four server event kinds.
/// A trace containing *only* these (a pure service trace, no
/// `RunCompleted` terminator) still renders a full counters section.
#[derive(Debug, Default)]
struct ServerStats {
    received: u64,
    completed: u64,
    errors: u64,
    shed: u64,
    cache_hits: u64,
    cache_coalesced: u64,
    cache_misses: u64,
    /// (count, sum, max) of queue-wait seconds over completed requests.
    queue: (u64, f64, f64),
    /// (count, sum, max) of service seconds over completed requests.
    service: (u64, f64, f64),
    /// (kind, occurrences) of completed requests, first-seen order.
    kinds: Vec<(String, u64)>,
}

impl ServerStats {
    fn bump_kind(&mut self, kind: &str) {
        match self.kinds.iter_mut().find(|(k, _)| k == kind) {
            Some((_, n)) => *n += 1,
            None => self.kinds.push((kind.to_string(), 1)),
        }
    }
}

/// Fold one latency observation into a (count, sum, max) accumulator.
fn observe(acc: &mut (u64, f64, f64), secs: f64) {
    acc.0 += 1;
    acc.1 += secs;
    acc.2 = acc.2.max(secs);
}

/// Persistent-pool aggregates: how many searches dispatched onto how
/// many distinct pools. One pool id across many searches is the
/// "no thread spawn per request" proof.
#[derive(Debug, Default)]
struct PoolStats {
    /// Pooled searches observed in the trace.
    searches: u64,
    /// Distinct pool ids, first-seen order (usually exactly one).
    pool_ids: Vec<u64>,
    /// Resident workers reported by the last event.
    workers: u32,
    /// Total chunk jobs submitted across pooled searches.
    jobs: u64,
}

#[derive(Debug)]
struct SearchStats {
    candidates: u32,
    kappa: u32,
    bid_levels: u32,
    threads: u32,
    subsets: u64,
    options_considered: u64,
    options_pruned: u64,
    options_dominated: u64,
    deadline_hours: f64,
    /// Summed over `SubsetEvaluated` worker events (Detail traces only).
    worker_evaluations: u64,
    worker_feasible: u64,
    worker_skipped: u64,
    workers: usize,
}

#[derive(Debug)]
struct Selection {
    source: String,
    groups: u32,
    expected_cost: f64,
    expected_time: f64,
    p_all_fail: f64,
    slack: f64,
    evaluations: u64,
    assess_secs: f64,
    search_secs: f64,
    evals_skipped: u64,
    bound_tightenings: u64,
    evals_per_sec: f64,
    kernel_nanos: u64,
}

#[derive(Debug)]
struct WindowLine {
    window: u32,
    elapsed_hours: f64,
    remaining_fraction: f64,
    reused: bool,
    fingerprint_hit: bool,
    decision: String,
    groups: u32,
}

#[derive(Debug)]
struct WarmLine {
    seeded: bool,
    seed_cost: Option<f64>,
    hot_subsets: u32,
    tables_reused: u64,
    tables_rebuilt: u64,
}

#[derive(Debug)]
struct TimelineLine {
    at_hours: f64,
    text: String,
}

#[derive(Debug)]
struct Outcome {
    finisher: String,
    total_cost: f64,
    spot_cost: f64,
    od_cost: f64,
    wall_hours: f64,
    met_deadline: bool,
    groups_failed: u32,
    windows: Option<u32>,
    plan_changes: Option<u32>,
}

impl RunReport {
    /// Fold a trace into a report. Events arrive in emission order; the
    /// report preserves that order for the timeline sections.
    pub fn from_events(events: &[Event]) -> Self {
        let mut report = RunReport::default();
        for event in events {
            report.bump(event.kind());
            match event {
                Event::PlanSearchStarted {
                    candidates,
                    kappa,
                    bid_levels,
                    threads,
                    subsets,
                    options_considered,
                    options_pruned,
                    deadline_hours,
                    options_dominated,
                } => {
                    report.search = Some(SearchStats {
                        candidates: *candidates,
                        kappa: *kappa,
                        bid_levels: *bid_levels,
                        threads: *threads,
                        subsets: *subsets,
                        options_considered: *options_considered,
                        options_pruned: *options_pruned,
                        options_dominated: *options_dominated,
                        deadline_hours: *deadline_hours,
                        worker_evaluations: 0,
                        worker_feasible: 0,
                        worker_skipped: 0,
                        workers: 0,
                    });
                }
                Event::SubsetEvaluated {
                    evaluations,
                    feasible,
                    skipped,
                    ..
                } => {
                    if let Some(s) = report.search.as_mut() {
                        s.worker_evaluations += evaluations;
                        s.worker_feasible += feasible;
                        s.worker_skipped += skipped;
                        s.workers += 1;
                    }
                }
                Event::PlanSelected {
                    source,
                    groups,
                    expected_cost,
                    expected_time,
                    p_all_fail,
                    slack,
                    evaluations,
                    assess_secs,
                    search_secs,
                    evals_skipped,
                    bound_tightenings,
                    evals_per_sec,
                    kernel_nanos,
                } => report.selections.push(Selection {
                    source: source.clone(),
                    groups: *groups,
                    expected_cost: *expected_cost,
                    expected_time: *expected_time,
                    p_all_fail: *p_all_fail,
                    slack: *slack,
                    evaluations: *evaluations,
                    assess_secs: *assess_secs,
                    search_secs: *search_secs,
                    evals_skipped: *evals_skipped,
                    bound_tightenings: *bound_tightenings,
                    evals_per_sec: *evals_per_sec,
                    kernel_nanos: *kernel_nanos,
                }),
                Event::SearchPoolUsed {
                    pool_id,
                    search_seq: _,
                    workers,
                    jobs,
                } => {
                    let p = report.pool.get_or_insert_with(PoolStats::default);
                    p.searches += 1;
                    if !p.pool_ids.contains(pool_id) {
                        p.pool_ids.push(*pool_id);
                    }
                    p.workers = *workers;
                    p.jobs += u64::from(*jobs);
                }
                Event::WarmStartApplied {
                    seeded,
                    seed_cost,
                    hot_subsets,
                    tables_reused,
                    tables_rebuilt,
                } => report.warm.push(WarmLine {
                    seeded: *seeded,
                    seed_cost: *seed_cost,
                    hot_subsets: *hot_subsets,
                    tables_reused: *tables_reused,
                    tables_rebuilt: *tables_rebuilt,
                }),
                // Per-group detail; the per-search totals on
                // `WarmStartApplied` already cover the report.
                Event::BucketTableReused { .. } => {}
                Event::WindowReplanned {
                    window,
                    elapsed_hours,
                    remaining_fraction,
                    reused,
                    decision,
                    groups,
                    fingerprint_hit,
                } => report.windows.push(WindowLine {
                    window: *window,
                    elapsed_hours: *elapsed_hours,
                    remaining_fraction: *remaining_fraction,
                    reused: *reused,
                    fingerprint_hit: *fingerprint_hit,
                    decision: decision.clone(),
                    groups: *groups,
                }),
                Event::GroupFailed {
                    group,
                    at_hours,
                    saved_fraction,
                } => report.timeline.push(TimelineLine {
                    at_hours: *at_hours,
                    text: format!(
                        "group {group} killed by provider ({:.0}% of work saved)",
                        saved_fraction * 100.0
                    ),
                }),
                Event::CheckpointTaken {
                    group,
                    at_hours,
                    count,
                    saved_fraction,
                } => report.timeline.push(TimelineLine {
                    at_hours: *at_hours,
                    text: format!(
                        "group {group} banked {count} checkpoint(s) ({:.0}% of work saved)",
                        saved_fraction * 100.0
                    ),
                }),
                Event::OnDemandFallback {
                    at_hours,
                    remaining_fraction,
                    od_hours,
                    od_cost,
                    reason,
                } => report.timeline.push(TimelineLine {
                    at_hours: *at_hours,
                    text: format!(
                        "on-demand fallback ({reason}): {:.0}% of work left, \
                         {od_hours:.2} h on-demand for ${od_cost:.2}",
                        remaining_fraction * 100.0
                    ),
                }),
                Event::FaultInjected {
                    class,
                    group,
                    at_hours,
                    detail,
                } => report.timeline.push(TimelineLine {
                    at_hours: *at_hours,
                    text: match group {
                        Some(g) => format!("fault injected: {class} on group {g} ({detail:.3})"),
                        None => format!("fault injected: {class} ({detail:.3})"),
                    },
                }),
                Event::RetryAttempted {
                    op,
                    group,
                    at_hours,
                    attempt,
                    backoff_hours,
                    gave_up,
                } => report.timeline.push(TimelineLine {
                    at_hours: *at_hours,
                    text: if *gave_up {
                        format!("{op} retries exhausted for group {group} after attempt {attempt}")
                    } else {
                        format!(
                            "{op} attempt {attempt} failed for group {group}; \
                             retrying in {backoff_hours:.3} h"
                        )
                    },
                }),
                Event::DegradedMode {
                    mode,
                    group,
                    at_hours,
                    reason,
                } => report.timeline.push(TimelineLine {
                    at_hours: *at_hours,
                    text: match group {
                        Some(g) => format!("degraded mode {mode} for group {g} ({reason})"),
                        None => format!("degraded mode {mode} ({reason})"),
                    },
                }),
                Event::RequestReceived { .. } => {
                    report.server_mut().received += 1;
                }
                Event::RequestCompleted {
                    kind,
                    ok,
                    cache,
                    queue_secs,
                    service_secs,
                    ..
                } => {
                    let s = report.server_mut();
                    s.completed += 1;
                    if !ok {
                        s.errors += 1;
                    }
                    if cache == "miss" {
                        s.cache_misses += 1;
                    }
                    observe(&mut s.queue, *queue_secs);
                    observe(&mut s.service, *service_secs);
                    s.bump_kind(kind);
                }
                Event::RequestShed { .. } => {
                    report.server_mut().shed += 1;
                }
                Event::CacheHit { coalesced, .. } => {
                    let s = report.server_mut();
                    if *coalesced {
                        s.cache_coalesced += 1;
                    } else {
                        s.cache_hits += 1;
                    }
                }
                Event::RunCompleted {
                    finisher,
                    total_cost,
                    spot_cost,
                    od_cost,
                    wall_hours,
                    met_deadline,
                    groups_failed,
                    windows,
                    plan_changes,
                } => {
                    report.outcome = Some(Outcome {
                        finisher: finisher.clone(),
                        total_cost: *total_cost,
                        spot_cost: *spot_cost,
                        od_cost: *od_cost,
                        wall_hours: *wall_hours,
                        met_deadline: *met_deadline,
                        groups_failed: *groups_failed,
                        windows: *windows,
                        plan_changes: *plan_changes,
                    });
                }
                // Tournament cells are their own report (the rendered
                // table); the trace summary only counts them — likewise
                // the batched-replay and replay-memo accounting events,
                // whose totals live in the tournament report.
                Event::PolicyEvaluated { .. }
                | Event::ReplayBatched { .. }
                | Event::ReplayMemoHit { .. } => {}
            }
        }
        report
    }

    /// Render the report as plain text (same output as `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }

    fn server_mut(&mut self) -> &mut ServerStats {
        self.server.get_or_insert_with(ServerStats::default)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SOMPI run report")?;
        writeln!(f, "================")?;
        let total: usize = self.event_counts.iter().map(|(_, n)| n).sum();
        write!(f, "events: {total}")?;
        for (kind, n) in &self.event_counts {
            write!(f, "  {kind}={n}")?;
        }
        writeln!(f)?;

        if let Some(s) = &self.search {
            writeln!(f, "\nplan search")?;
            writeln!(f, "-----------")?;
            writeln!(
                f,
                "  {} circle groups, kappa={}, {} bid levels, {} thread(s), deadline {:.1} h",
                s.candidates, s.kappa, s.bid_levels, s.threads, s.deadline_hours
            )?;
            writeln!(
                f,
                "  {} subsets enumerated; {} per-group options considered, {} pruned ({:.1}% prune rate)",
                s.subsets,
                s.options_considered,
                s.options_pruned,
                prune_rate(s.options_pruned, s.options_considered) * 100.0
            )?;
            if s.options_dominated > 0 {
                writeln!(
                    f,
                    "  {} options removed by bid-collapse dominance",
                    s.options_dominated
                )?;
            }
            if s.workers > 0 {
                writeln!(
                    f,
                    "  workers: {} reporting, {} evaluations ({} feasible)",
                    s.workers, s.worker_evaluations, s.worker_feasible
                )?;
                if s.worker_skipped > 0 {
                    writeln!(
                        f,
                        "  branch-and-bound skipped {} of those positions ({:.1}%)",
                        s.worker_skipped,
                        prune_rate(s.worker_skipped, s.worker_evaluations) * 100.0
                    )?;
                }
            }
        }

        for sel in &self.selections {
            writeln!(f, "\nplan selected ({})", sel.source)?;
            writeln!(f, "-------------")?;
            writeln!(
                f,
                "  {} group(s), expected ${:.2} over {:.1} h (P[all fail]={:.4}, slack={:.2})",
                sel.groups, sel.expected_cost, sel.expected_time, sel.p_all_fail, sel.slack
            )?;
            writeln!(
                f,
                "  {} evaluations in {:.3} s search + {:.3} s assess ({:.0} eval/s)",
                sel.evaluations,
                sel.search_secs,
                sel.assess_secs,
                rate_per_sec(sel.evaluations, sel.search_secs)
            )?;
            if sel.evals_skipped > 0 {
                writeln!(
                    f,
                    "  {} positions pruned by the incumbent bound ({} tightening(s))",
                    sel.evals_skipped, sel.bound_tightenings
                )?;
            }
        }

        let kernel_timed = self.selections.iter().any(|s| s.kernel_nanos > 0);
        if kernel_timed || self.pool.is_some() {
            writeln!(f, "\nkernel")?;
            writeln!(f, "------")?;
            for (i, sel) in self.selections.iter().enumerate() {
                if sel.kernel_nanos == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  search {:>2}: {:.0} eval/s, {:.3} s inside the evaluation kernel \
                     ({:.1}% of search wall)",
                    i + 1,
                    sel.evals_per_sec,
                    sel.kernel_nanos as f64 * 1e-9,
                    if sel.search_secs > 0.0 {
                        100.0 * sel.kernel_nanos as f64 * 1e-9 / sel.search_secs
                    } else {
                        0.0
                    }
                )?;
            }
            match &self.pool {
                Some(p) => {
                    let ids = p
                        .pool_ids
                        .iter()
                        .map(|id| id.to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    writeln!(
                        f,
                        "  pool: {} search(es) on pool(s) [{}], {} resident worker(s), \
                         {} chunk job(s)",
                        p.searches, ids, p.workers, p.jobs
                    )?;
                }
                None => writeln!(f, "  pool: none (scoped threads or serial search)")?,
            }
        }

        if !self.warm.is_empty() {
            writeln!(f, "\nwarm starts")?;
            writeln!(f, "-----------")?;
            for (i, w) in self.warm.iter().enumerate() {
                write!(f, "  search {:>2}: ", i + 1)?;
                match (w.seeded, w.seed_cost) {
                    (true, Some(c)) => write!(f, "seeded at ${c:.2}")?,
                    _ => write!(f, "no incumbent seed")?,
                }
                writeln!(
                    f,
                    ", {} hot subset(s) first; tables {} reused / {} rebuilt",
                    w.hot_subsets, w.tables_reused, w.tables_rebuilt
                )?;
            }
        }

        if !self.windows.is_empty() {
            writeln!(f, "\nadaptive windows")?;
            writeln!(f, "----------------")?;
            for w in &self.windows {
                writeln!(
                    f,
                    "  window {:>2} @ {:>7.2} h: {:>5.1}% left, {} ({} group(s)){}",
                    w.window,
                    w.elapsed_hours,
                    w.remaining_fraction * 100.0,
                    w.decision,
                    w.groups,
                    if w.fingerprint_hit {
                        " [plan reused: fingerprint hit]"
                    } else if w.reused {
                        " [plan reused]"
                    } else {
                        ""
                    }
                )?;
            }
        }

        if let Some(s) = &self.server {
            writeln!(f, "\nserver requests")?;
            writeln!(f, "---------------")?;
            write!(
                f,
                "  {} received, {} completed ({} error(s)), {} shed",
                s.received, s.completed, s.errors, s.shed
            )?;
            writeln!(f)?;
            if !s.kinds.is_empty() {
                write!(f, "  by kind:")?;
                for (kind, n) in &s.kinds {
                    write!(f, "  {kind}={n}")?;
                }
                writeln!(f)?;
            }
            writeln!(
                f,
                "  plan cache: {} hit(s), {} coalesced, {} miss(es)",
                s.cache_hits, s.cache_coalesced, s.cache_misses
            )?;
            if s.queue.0 > 0 {
                writeln!(
                    f,
                    "  latency: queue mean {:.1} ms (max {:.1}), service mean {:.1} ms (max {:.1})",
                    1e3 * s.queue.1 / s.queue.0 as f64,
                    1e3 * s.queue.2,
                    1e3 * s.service.1 / s.service.0 as f64,
                    1e3 * s.service.2,
                )?;
            }
        }

        if !self.timeline.is_empty() {
            writeln!(f, "\ntimeline")?;
            writeln!(f, "--------")?;
            for line in &self.timeline {
                writeln!(f, "  t={:>8.2} h  {}", line.at_hours, line.text)?;
            }
        }

        if let Some(o) = &self.outcome {
            writeln!(f, "\noutcome")?;
            writeln!(f, "-------")?;
            writeln!(
                f,
                "  finished by {} in {:.2} h — deadline {}",
                o.finisher,
                o.wall_hours,
                if o.met_deadline { "met" } else { "MISSED" }
            )?;
            writeln!(
                f,
                "  cost ${:.4} total = ${:.4} spot + ${:.4} on-demand; {} group(s) failed",
                o.total_cost, o.spot_cost, o.od_cost, o.groups_failed
            )?;
            if let (Some(w), Some(p)) = (o.windows, o.plan_changes) {
                writeln!(f, "  adaptive: {w} window(s), {p} plan change(s)")?;
            }
        } else if self.server.is_some() {
            // A pure service trace has no run terminator; the counters
            // above are the outcome, so no "planning only" caveat.
            writeln!(f, "\n(no RunCompleted event — service trace)")?;
        } else {
            writeln!(f, "\n(no RunCompleted event — trace covers planning only)")?;
        }
        Ok(())
    }
}

impl RunReport {
    fn bump(&mut self, kind: &'static str) {
        match self.event_counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.event_counts.push((kind, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_trace() -> Vec<Event> {
        vec![
            Event::PlanSearchStarted {
                candidates: 4,
                kappa: 2,
                bid_levels: 6,
                threads: 2,
                subsets: 10,
                options_considered: 24,
                options_pruned: 6,
                deadline_hours: 60.0,
                options_dominated: 4,
            },
            Event::SubsetEvaluated {
                worker: 0,
                subsets: 5,
                evaluations: 100,
                feasible: 80,
                best_cost: Some(20.0),
                phi_intervals: vec![2.0],
                skipped: 10,
            },
            Event::SubsetEvaluated {
                worker: 1,
                subsets: 5,
                evaluations: 120,
                feasible: 90,
                best_cost: Some(21.0),
                phi_intervals: vec![2.5],
                skipped: 30,
            },
            Event::PlanSelected {
                source: "spot".to_string(),
                groups: 1,
                expected_cost: 20.0,
                expected_time: 50.0,
                p_all_fail: 0.01,
                slack: 1.0,
                evaluations: 220,
                assess_secs: 0.01,
                search_secs: 0.1,
                evals_skipped: 40,
                bound_tightenings: 3,
                evals_per_sec: 2200.0,
                kernel_nanos: 80_000_000,
            },
            Event::SearchPoolUsed {
                pool_id: 7,
                search_seq: 1,
                workers: 2,
                jobs: 2,
            },
            Event::WindowReplanned {
                window: 0,
                elapsed_hours: 0.0,
                remaining_fraction: 1.0,
                reused: false,
                decision: "hybrid".to_string(),
                groups: 1,
                fingerprint_hit: false,
            },
            Event::GroupFailed {
                group: "g0".to_string(),
                at_hours: 12.0,
                saved_fraction: 0.4,
            },
            Event::OnDemandFallback {
                at_hours: 12.0,
                remaining_fraction: 0.6,
                od_hours: 30.0,
                od_cost: 15.0,
                reason: "all-groups-failed".to_string(),
            },
            Event::RunCompleted {
                finisher: "on-demand".to_string(),
                total_cost: 18.0,
                spot_cost: 3.0,
                od_cost: 15.0,
                wall_hours: 42.0,
                met_deadline: true,
                groups_failed: 1,
                windows: Some(1),
                plan_changes: Some(0),
            },
        ]
    }

    #[test]
    fn report_aggregates_all_sections() {
        let report = RunReport::from_events(&full_trace());
        let text = report.render();
        assert!(text.contains("plan search"), "{text}");
        assert!(text.contains("220 evaluations"), "{text}");
        assert!(text.contains("25.0% prune rate"), "{text}");
        assert!(
            text.contains("workers: 2 reporting, 220 evaluations"),
            "{text}"
        );
        assert!(
            text.contains("4 options removed by bid-collapse dominance"),
            "{text}"
        );
        assert!(
            text.contains("branch-and-bound skipped 40 of those positions"),
            "{text}"
        );
        assert!(
            text.contains("40 positions pruned by the incumbent bound (3 tightening(s))"),
            "{text}"
        );
        assert!(text.contains("kernel\n------"), "{text}");
        assert!(
            text.contains(
                "2200 eval/s, 0.080 s inside the evaluation kernel (80.0% of search wall)"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "pool: 1 search(es) on pool(s) [7], 2 resident worker(s), 2 chunk job(s)"
            ),
            "{text}"
        );
        assert!(text.contains("adaptive windows"), "{text}");
        assert!(text.contains("killed by provider"), "{text}");
        assert!(
            text.contains("on-demand fallback (all-groups-failed)"),
            "{text}"
        );
        assert!(text.contains("deadline met"), "{text}");
        assert!(text.contains("$18.0000 total"), "{text}");
        assert!(text.contains("1 window(s), 0 plan change(s)"), "{text}");
    }

    #[test]
    fn planning_only_trace_notes_missing_outcome() {
        let events = &full_trace()[..4];
        let text = RunReport::from_events(events).render();
        assert!(text.contains("planning only"), "{text}");
        assert!(!text.contains("outcome\n-------"), "{text}");
    }

    #[test]
    fn resilience_events_render_on_the_timeline() {
        let events = vec![
            Event::FaultInjected {
                class: "spot-kill-storm".to_string(),
                group: Some("g0".to_string()),
                at_hours: 3.0,
                detail: 0.0,
            },
            Event::RetryAttempted {
                op: "ckpt-upload".to_string(),
                group: "g0".to_string(),
                at_hours: 4.0,
                attempt: 3,
                backoff_hours: 0.0,
                gave_up: true,
            },
            Event::DegradedMode {
                mode: "stale-market-view".to_string(),
                group: None,
                at_hours: 5.0,
                reason: "feed-gap".to_string(),
            },
        ];
        let text = RunReport::from_events(&events).render();
        assert!(
            text.contains("fault injected: spot-kill-storm on group g0"),
            "{text}"
        );
        assert!(
            text.contains("ckpt-upload retries exhausted for group g0 after attempt 3"),
            "{text}"
        );
        assert!(
            text.contains("degraded mode stale-market-view (feed-gap)"),
            "{text}"
        );
    }

    #[test]
    fn warm_start_events_get_their_own_section() {
        let events = vec![
            Event::WarmStartApplied {
                seeded: true,
                seed_cost: Some(19.75),
                hot_subsets: 4,
                tables_reused: 36,
                tables_rebuilt: 12,
            },
            Event::BucketTableReused {
                group: "g0".to_string(),
                digest: 42,
                reused: 36,
                rebuilt: 12,
            },
            Event::WarmStartApplied {
                seeded: false,
                seed_cost: None,
                hot_subsets: 0,
                tables_reused: 0,
                tables_rebuilt: 48,
            },
        ];
        let text = RunReport::from_events(&events).render();
        assert!(text.contains("warm starts"), "{text}");
        assert!(
            text.contains("seeded at $19.75, 4 hot subset(s) first; tables 36 reused / 12 rebuilt"),
            "{text}"
        );
        assert!(
            text.contains("no incumbent seed, 0 hot subset(s) first; tables 0 reused / 48 rebuilt"),
            "{text}"
        );
    }

    #[test]
    fn server_only_trace_renders_counters_without_run_completed() {
        // Regression for the planner-service satellite: a trace holding
        // only server events (no RunCompleted terminator) must still
        // render the full cache/server counters section.
        let events = vec![
            Event::RequestReceived {
                id: 1,
                tenant: "t0".to_string(),
                kind: "plan".to_string(),
            },
            Event::RequestCompleted {
                id: 1,
                tenant: "t0".to_string(),
                kind: "plan".to_string(),
                ok: true,
                cache: "miss".to_string(),
                queue_secs: 0.004,
                service_secs: 0.2,
            },
            Event::CacheHit {
                key: 99,
                kind: "plan".to_string(),
                coalesced: false,
            },
            Event::CacheHit {
                key: 99,
                kind: "plan".to_string(),
                coalesced: true,
            },
            Event::RequestCompleted {
                id: 2,
                tenant: "t1".to_string(),
                kind: "plan".to_string(),
                ok: true,
                cache: "hit".to_string(),
                queue_secs: 0.002,
                service_secs: 0.01,
            },
            Event::RequestShed {
                id: 3,
                queue_depth: 1,
                capacity: 1,
            },
            Event::RequestCompleted {
                id: 4,
                tenant: "t1".to_string(),
                kind: "ping".to_string(),
                ok: false,
                cache: "none".to_string(),
                queue_secs: 0.001,
                service_secs: 0.001,
            },
        ];
        let text = RunReport::from_events(&events).render();
        assert!(text.contains("server requests"), "{text}");
        assert!(
            text.contains("1 received, 3 completed (1 error(s)), 1 shed"),
            "{text}"
        );
        assert!(text.contains("plan=2  ping=1"), "{text}");
        assert!(
            text.contains("plan cache: 1 hit(s), 1 coalesced, 1 miss(es)"),
            "{text}"
        );
        assert!(text.contains("latency: queue mean"), "{text}");
        assert!(text.contains("service trace"), "{text}");
        assert!(
            !text.contains("planning only"),
            "server-only trace must not claim to cover planning only: {text}"
        );
    }

    #[test]
    fn mixed_trace_renders_server_and_outcome_sections() {
        let mut events = full_trace();
        events.push(Event::RequestCompleted {
            id: 7,
            tenant: "t".to_string(),
            kind: "replay".to_string(),
            ok: true,
            cache: "none".to_string(),
            queue_secs: 0.0,
            service_secs: 0.5,
        });
        let text = RunReport::from_events(&events).render();
        assert!(text.contains("server requests"), "{text}");
        assert!(text.contains("outcome"), "{text}");
    }

    #[test]
    fn event_counts_preserve_first_seen_order() {
        let report = RunReport::from_events(&full_trace());
        let kinds: Vec<&str> = report.event_counts.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds[0], "PlanSearchStarted");
        assert_eq!(
            report
                .event_counts
                .iter()
                .find(|(k, _)| *k == "SubsetEvaluated")
                .unwrap()
                .1,
            2
        );
    }
}
