//! Structured observability for the SOMPI pipeline.
//!
//! SOMPI's value is its decision trail — why a bid vector won, which
//! circle-group subsets were pruned, when the adaptive loop re-planned,
//! and when replay fell back to on-demand. This crate makes that trail a
//! first-class artifact:
//!
//! * [`Event`] — the typed vocabulary: `PlanSearchStarted`,
//!   `SubsetEvaluated`, `PlanSelected`, `WindowReplanned`, `GroupFailed`,
//!   `CheckpointTaken`, `OnDemandFallback`, `RunCompleted`. The full
//!   schema (fields, units, emission sites) lives in
//!   `docs/OBSERVABILITY.md`.
//! * [`Recorder`] — the sink trait, with three implementations:
//!   [`NullRecorder`] (drops everything; the default inside every
//!   un-instrumented public API), [`RingRecorder`] (bounded in-memory
//!   buffer for tests and inspection), and [`JsonlRecorder`] (one JSON
//!   object per line, the `--trace-out` format).
//! * [`emit`] — the gate every instrumentation site goes through. It
//!   takes a closure, so when the recorder's [`TraceLevel`] does not admit
//!   the event, the event is never even constructed. This is what keeps
//!   the `NullRecorder` path allocation-free on the optimizer hot loop
//!   (asserted by `crates/sompi-core/tests/alloc_guard.rs` and the
//!   `opt_speed` bench).
//! * [`Counter`] / [`PhaseTimer`] plus [`rate_per_sec`] / [`prune_rate`]
//!   — the monotonic counters and phase timers behind derived metrics
//!   (candidates evaluated/sec, prune rate, per-phase wall time).
//! * [`RunReport`] / [`parse_jsonl`] — turn a JSONL trace back into the
//!   human-readable report `sompi trace summarize` prints.
//!
//! # End-to-end example
//!
//! ```
//! use sompi_obs::{emit, parse_jsonl, Event, Recorder, RingRecorder, RunReport, TraceLevel};
//!
//! // Instrumented code emits through a recorder…
//! let ring = RingRecorder::new(TraceLevel::Summary, 64);
//! emit(&ring, TraceLevel::Summary, || Event::RunCompleted {
//!     finisher: "spot:g0".to_string(),
//!     total_cost: 21.0,
//!     spot_cost: 21.0,
//!     od_cost: 0.0,
//!     wall_hours: 80.0,
//!     met_deadline: true,
//!     groups_failed: 0,
//!     windows: None,
//!     plan_changes: None,
//! });
//!
//! // …events serialize one-per-line (the JSONL wire format)…
//! let jsonl: String = ring
//!     .events()
//!     .iter()
//!     .map(|e| serde_json::to_string(e).unwrap() + "\n")
//!     .collect();
//!
//! // …and parse back into a renderable report.
//! let report = RunReport::from_events(&parse_jsonl(&jsonl).unwrap());
//! assert!(report.render().contains("finished by spot:g0"));
//! ```

mod event;
mod jsonl;
mod metrics;
mod recorder;
mod summary;

pub use event::{Event, TraceLevel};
pub use jsonl::{parse_jsonl, JsonlRecorder};
pub use metrics::{prune_rate, rate_per_sec, Counter, PhaseTimer};
pub use recorder::{emit, NullRecorder, Recorder, RingRecorder};
pub use summary::RunReport;
