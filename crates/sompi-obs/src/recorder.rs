//! The [`Recorder`] trait and its in-process implementations.
//!
//! Instrumented code never constructs an [`Event`] unless the active
//! recorder wants it: every emission site goes through [`emit`], which
//! takes a closure and only invokes it when the recorder's level admits
//! the event. With [`NullRecorder`] the whole path is a branch on a
//! constant — no allocation, no formatting, no locking.

use crate::event::{Event, TraceLevel};
use std::collections::VecDeque;
use std::sync::Mutex;

/// A sink for pipeline [`Event`]s.
///
/// Implementations must be `Sync` because the optimizer's worker threads
/// may share one recorder. `record` takes `&self`; interior mutability is
/// the implementor's concern.
pub trait Recorder: Sync {
    /// Maximum [`TraceLevel`] this recorder wants. Emission sites skip
    /// event construction entirely for levels above this.
    fn level(&self) -> TraceLevel;

    /// Accept one event. Only called with events whose
    /// [`Event::level`] is at or below [`Recorder::level`].
    fn record(&self, event: Event);

    /// Whether events at `level` would be recorded.
    fn enabled(&self, level: TraceLevel) -> bool {
        level <= self.level() && level != TraceLevel::Off
    }
}

/// Construct and record an event only if `recorder` wants `level`.
///
/// The closure runs lazily, so the [`NullRecorder`] path costs one enum
/// comparison and nothing else:
///
/// ```
/// use sompi_obs::{emit, Event, NullRecorder, RingRecorder, TraceLevel};
///
/// let ring = RingRecorder::new(TraceLevel::Summary, 16);
/// emit(&ring, TraceLevel::Summary, || Event::GroupFailed {
///     group: "g0".into(),
///     at_hours: 1.0,
///     saved_fraction: 0.0,
/// });
/// emit(&NullRecorder, TraceLevel::Summary, || unreachable!("never built"));
/// assert_eq!(ring.len(), 1);
/// ```
pub fn emit(recorder: &dyn Recorder, level: TraceLevel, event: impl FnOnce() -> Event) {
    if recorder.enabled(level) {
        recorder.record(event());
    }
}

/// The no-op recorder: level [`TraceLevel::Off`], drops everything.
///
/// This is what the un-instrumented public APIs (`optimize()`, `run()`,
/// ...) pass internally, so the hot paths stay allocation-free — a
/// property `crates/sompi-core/tests/alloc_guard.rs` asserts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn level(&self) -> TraceLevel {
        TraceLevel::Off
    }

    fn record(&self, _event: Event) {}
}

/// In-memory bounded recorder: keeps the most recent `capacity` events.
///
/// Useful in tests (golden traces) and for post-hoc inspection without
/// touching the filesystem.
///
/// ```
/// use sompi_obs::{Event, Recorder, RingRecorder, TraceLevel};
///
/// let ring = RingRecorder::new(TraceLevel::Detail, 2);
/// for i in 0..3 {
///     ring.record(Event::CheckpointTaken {
///         group: "g0".into(),
///         at_hours: i as f64,
///         count: i,
///         saved_fraction: 0.1 * i as f64,
///     });
/// }
/// // Capacity 2: the first event was evicted.
/// assert_eq!(ring.len(), 2);
/// assert!(matches!(
///     ring.events()[0],
///     Event::CheckpointTaken { at_hours, .. } if at_hours == 1.0
/// ));
/// ```
#[derive(Debug)]
pub struct RingRecorder {
    level: TraceLevel,
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingRecorder {
    /// A ring accepting events up to `level`, retaining the last
    /// `capacity` of them.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        RingRecorder {
            level,
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Drain the retained events, oldest first, leaving the ring empty.
    pub fn take(&self) -> Vec<Event> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for RingRecorder {
    fn level(&self) -> TraceLevel {
        self.level
    }

    fn record(&self, event: Event) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_hours: f64) -> Event {
        Event::GroupFailed {
            group: "g0".to_string(),
            at_hours,
            saved_fraction: 0.0,
        }
    }

    #[test]
    fn null_recorder_never_constructs_events() {
        let mut built = false;
        emit(&NullRecorder, TraceLevel::Summary, || {
            built = true;
            ev(0.0)
        });
        assert!(!built);
        assert!(!NullRecorder.enabled(TraceLevel::Summary));
        assert!(!NullRecorder.enabled(TraceLevel::Off));
    }

    #[test]
    fn level_gating_filters_detail_events() {
        let ring = RingRecorder::new(TraceLevel::Summary, 8);
        emit(&ring, TraceLevel::Summary, || ev(1.0));
        let mut detail_built = false;
        emit(&ring, TraceLevel::Detail, || {
            detail_built = true;
            ev(2.0)
        });
        assert!(!detail_built);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let ring = RingRecorder::new(TraceLevel::Detail, 3);
        for i in 0..5 {
            ring.record(ev(i as f64));
        }
        let hours: Vec<f64> = ring
            .events()
            .iter()
            .map(|e| match e {
                Event::GroupFailed { at_hours, .. } => *at_hours,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hours, vec![2.0, 3.0, 4.0]);
        assert_eq!(ring.take().len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn off_level_ring_records_nothing_via_emit() {
        let ring = RingRecorder::new(TraceLevel::Off, 8);
        emit(&ring, TraceLevel::Summary, || ev(1.0));
        emit(&ring, TraceLevel::Detail, || ev(2.0));
        assert!(ring.is_empty());
    }
}
