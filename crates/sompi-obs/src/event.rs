//! Typed trace events and the verbosity levels that gate them.
//!
//! Every observable moment in the SOMPI pipeline — plan search, adaptive
//! re-planning, replayed failures, checkpoints, fallbacks — is one
//! [`Event`] variant. The full schema (fields, units, emission sites) is
//! documented in `docs/OBSERVABILITY.md`; the serialized form is serde's
//! external enum representation, one JSON object per line in a `.jsonl`
//! trace.

use serde::{Deserialize, Serialize};

/// Trace verbosity. Levels are totally ordered: `Off < Summary < Detail`.
///
/// A [`Recorder`](crate::Recorder) advertises the maximum level it wants;
/// emission sites tag each event with the level it belongs to and skip
/// construction entirely when the recorder's level is below it.
///
/// ```
/// use sompi_obs::TraceLevel;
///
/// assert!(TraceLevel::Off < TraceLevel::Summary);
/// assert!(TraceLevel::Summary < TraceLevel::Detail);
/// assert_eq!("detail".parse::<TraceLevel>(), Ok(TraceLevel::Detail));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing (the [`NullRecorder`](crate::NullRecorder) level).
    Off,
    /// Decision-level events: searches, selections, replans, fallbacks,
    /// failures, completions.
    Summary,
    /// Everything, including per-worker search statistics and checkpoint
    /// ticks.
    Detail,
}

impl std::str::FromStr for TraceLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TraceLevel::Off),
            "summary" => Ok(TraceLevel::Summary),
            "detail" => Ok(TraceLevel::Detail),
            other => Err(format!(
                "unknown trace level `{other}` (expected off|summary|detail)"
            )),
        }
    }
}

/// One structured observation from the SOMPI pipeline.
///
/// Variants serialize in serde's external enum representation — a
/// single-key JSON object `{"VariantName": {fields...}}` — which is the
/// JSONL wire format consumed by `sompi trace summarize` and documented in
/// `docs/OBSERVABILITY.md`.
///
/// All `*_hours` fields are hours on the market-trace clock (the same
/// clock as spot-price history offsets); `*_secs` fields are wall-clock
/// seconds of optimizer work on the host running the search.
///
/// ```
/// use sompi_obs::Event;
///
/// let e = Event::GroupFailed {
///     group: "g0".to_string(),
///     at_hours: 5.0,
///     saved_fraction: 0.25,
/// };
/// let line = serde_json::to_string(&e).unwrap();
/// assert!(line.starts_with("{\"GroupFailed\":"));
/// let back: Event = serde_json::from_str(&line).unwrap();
/// assert_eq!(back.kind(), "GroupFailed");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The two-level optimizer is about to enumerate κ-subsets.
    /// Emitted once per recorded `optimize_with` call, after per-group bid/φ
    /// options are assessed but before any subset is evaluated.
    PlanSearchStarted {
        /// Number of circle groups the market offers (K).
        candidates: u32,
        /// κ cap on replication degree (subsets of size 1..=κ).
        kappa: u32,
        /// Bid grid resolution per group.
        bid_levels: u32,
        /// Worker threads the search will actually use (after resolving 0
        /// = auto).
        threads: u32,
        /// Total number of subsets that will be enumerated: Σ C(K, k).
        subsets: u64,
        /// Per-group (bid, φ) options assessed across all groups.
        options_considered: u64,
        /// Options discarded because their completion wall time exceeds
        /// the deadline (the Theorem-1 prune).
        options_pruned: u64,
        /// Job deadline in hours.
        deadline_hours: f64,
        /// Deadline-surviving options removed by the exact bid-collapse
        /// dominance filter (DESIGN.md §8.1). Defaults to 0 for traces
        /// written before the pruning layer existed.
        #[serde(default)]
        options_dominated: u64,
    },
    /// Per-worker aggregate search statistics, merged at join.
    /// One event per worker, emitted in worker-index order after the
    /// parallel search completes. Detail level.
    SubsetEvaluated {
        /// Worker index (0-based).
        worker: u32,
        /// Subsets this worker enumerated.
        subsets: u64,
        /// Bid-vector candidates this worker evaluated.
        evaluations: u64,
        /// Candidates that met the deadline feasibility bar.
        feasible: u64,
        /// Expected cost of this worker's incumbent, if it found a
        /// feasible one.
        best_cost: Option<f64>,
        /// φ checkpoint intervals (hours) of the incumbent's groups —
        /// the Theorem 1 witness for the winning candidate.
        phi_intervals: Vec<f64>,
        /// Enumerated bid-vector positions the branch-and-bound walk
        /// skipped without evaluating (already included in
        /// `evaluations`, which reports the full enumeration size).
        /// Timing-dependent when the incumbent bound is shared across
        /// workers. Defaults to 0 for pre-pruning traces.
        #[serde(default)]
        skipped: u64,
    },
    /// The optimizer committed to a plan.
    /// Emitted once per recorded `optimize_with` call, after the merge.
    PlanSelected {
        /// `"spot"` when a hybrid spot plan won, `"on-demand"` when the
        /// pure on-demand baseline was cheaper (or nothing was feasible).
        source: String,
        /// Number of circle groups in the winning plan (0 for pure
        /// on-demand).
        groups: u32,
        /// Expected monetary cost of the plan (USD).
        expected_cost: f64,
        /// Expected completion time (hours).
        expected_time: f64,
        /// Probability that every spot group fails before completion.
        p_all_fail: f64,
        /// Slack factor the on-demand fallback budget was scaled by
        /// (Formulas 12–13 decoupling knob).
        slack: f64,
        /// Total candidate evaluations across all workers.
        evaluations: u64,
        /// Wall seconds spent precomputing per-group assessments.
        assess_secs: f64,
        /// Wall seconds spent in the parallel subset search.
        search_secs: f64,
        /// Positions skipped by branch-and-bound across all workers
        /// (subset of `evaluations`; timing-dependent with a shared
        /// incumbent). Defaults to 0 for pre-pruning traces.
        #[serde(default)]
        evals_skipped: u64,
        /// Times a worker published a strictly better feasible cost to
        /// the incumbent bound. Defaults to 0 for pre-pruning traces.
        #[serde(default)]
        bound_tightenings: u64,
        /// Candidate evaluations per wall second of subset search
        /// (`evaluations / search_secs`; 0 when the search was
        /// instantaneous). Defaults to 0 for pre-kernel traces.
        #[serde(default)]
        evals_per_sec: f64,
        /// Wall nanoseconds spent inside the Formula 2–11 evaluation
        /// kernel across all workers, timed per enumerated subset (not
        /// per candidate, to keep the probe out of the innermost loop).
        /// Defaults to 0 for pre-kernel traces.
        #[serde(default)]
        kernel_nanos: u64,
    },
    /// A parallel search dispatched onto a persistent `SearchPool`
    /// instead of spawning fresh scoped threads. Emitted once per pooled
    /// `optimize` call, before the batch is submitted; repeated events
    /// with the same `pool_id` and increasing `search_seq` prove that
    /// many searches (adaptive windows, server requests) reused one set
    /// of resident worker threads.
    SearchPoolUsed {
        /// Process-unique id of the pool that served the search.
        pool_id: u64,
        /// 1-based sequence number of this search on that pool.
        search_seq: u64,
        /// Resident worker threads in the pool.
        workers: u32,
        /// Chunk jobs this search submitted (the work split is decided by
        /// `OptimizerConfig::threads`, never by the pool size).
        jobs: u32,
    },
    /// The warm-start layer's per-window summary: whether the previous
    /// window's plan seeded the incumbent bound, how many carried subsets
    /// led the enumeration order, and the bucket-table cache totals.
    /// Emitted once per `optimize_with` call with warm state attached;
    /// warm-free contexts never construct it.
    WarmStartApplied {
        /// True when the previous plan projected onto the current option
        /// grids to a feasible candidate whose cost seeded the incumbent
        /// bound.
        seeded: bool,
        /// The seed cost (USD) when `seeded`.
        seed_cost: Option<f64>,
        /// Previous-window subsets applied to the front of this window's
        /// enumeration order.
        hot_subsets: u32,
        /// Per-`(group, bid)` failure-table entries served entirely from
        /// the warm cache this window.
        tables_reused: u64,
        /// Entries computed fresh (new bid, horizon growth, or a history
        /// digest invalidation).
        tables_rebuilt: u64,
    },
    /// Per-group bucket-table cache accounting for one warm-started
    /// assessment pass. One event per candidate group whose cache was
    /// consulted, in candidate order. Detail level.
    BucketTableReused {
        /// Circle-group id.
        group: String,
        /// FNV-1a digest of the group's empirical price history backing
        /// the cached tables.
        digest: u64,
        /// Bid entries reused without recomputation.
        reused: u64,
        /// Bid entries (re)computed this window.
        rebuilt: u64,
    },
    /// The adaptive loop (Algorithm 1) crossed a window boundary.
    /// Emitted by `AdaptivePlanner::plan_window` on a real
    /// re-plan and by `AdaptiveRunner` when the previous plan is reused.
    WindowReplanned {
        /// 0-based index of the window being planned.
        window: u32,
        /// Hours elapsed since the run started.
        elapsed_hours: f64,
        /// Fraction of total work still outstanding (0..=1).
        remaining_fraction: f64,
        /// True when the previous window's plan was carried over without
        /// a fresh search.
        reused: bool,
        /// `"hybrid"` or `"finish-on-demand"`.
        decision: String,
        /// Spot circle groups in the window's plan.
        groups: u32,
        /// True when the reuse came from the market-fingerprint cache: an
        /// unchanged `MarketView` digest plus a still-feasible incumbent
        /// plan let the window skip re-optimization entirely. Defaults to
        /// false for pre-cache traces.
        #[serde(default)]
        fingerprint_hit: bool,
    },
    /// A replayed spot group was terminated by the provider (price rose
    /// above its bid) before the work completed.
    GroupFailed {
        /// Circle-group id, e.g. `"g2"`.
        group: String,
        /// Market-trace hour at which the group died.
        at_hours: f64,
        /// Fraction of the group's work preserved in checkpoints at death.
        saved_fraction: f64,
    },
    /// A replayed group banked checkpoint progress. Detail level; one
    /// cumulative event per group per replay segment, not one per tick.
    CheckpointTaken {
        /// Circle-group id.
        group: String,
        /// Market-trace hour of the last completed checkpoint.
        at_hours: f64,
        /// Completed checkpoints in this segment.
        count: u32,
        /// Cumulative fraction of work saved after the last checkpoint.
        saved_fraction: f64,
    },
    /// Replay abandoned spot and bought on-demand capacity to finish.
    OnDemandFallback {
        /// Market-trace hour at which the fallback began.
        at_hours: f64,
        /// Fraction of work still outstanding at fallback time.
        remaining_fraction: f64,
        /// On-demand hours purchased.
        od_hours: f64,
        /// On-demand cost (USD).
        od_cost: f64,
        /// Why: `"all-groups-failed"`, `"deadline-guard"`, `"replan"`,
        /// `"trace-horizon"`, or `"bail-out"`.
        reason: String,
    },
    /// The fault injector fired: an adversity beyond what the price trace
    /// implies was imposed on the run. Emitted by the replay executors at
    /// the moment the fault takes effect.
    FaultInjected {
        /// Fault class: `"spot-kill-storm"`, `"ckpt-upload-failure"`,
        /// `"ckpt-latency-spike"`, `"restore-corruption"`, or
        /// `"feed-gap"`.
        class: String,
        /// Circle-group id the fault hit, if group-scoped (`None` for
        /// feed gaps and the on-demand restore).
        group: Option<String>,
        /// Market-trace hour at which the fault took effect.
        at_hours: f64,
        /// Class-specific context: added latency hours for a spike,
        /// window index for a feed gap, checkpoint ordinal for an upload
        /// failure, fraction lost for a restore corruption.
        detail: f64,
    },
    /// An executor retried a faulted operation under its `RetryPolicy`.
    /// One event per retry decision, including the final give-up.
    RetryAttempted {
        /// Operation: `"ckpt-upload"` or `"relaunch"`.
        op: String,
        /// Circle-group id the retry concerns.
        group: String,
        /// Market-trace hour of the decision.
        at_hours: f64,
        /// 1-based attempt number that just failed (or, for relaunch
        /// pacing, the incarnation being delayed).
        attempt: u32,
        /// Deterministic backoff applied before the next attempt, hours
        /// (0 when giving up).
        backoff_hours: f64,
        /// True when the policy is exhausted and the executor degrades
        /// instead of retrying again.
        gave_up: bool,
    },
    /// An executor or the adaptive planner entered a documented degraded
    /// mode instead of failing.
    DegradedMode {
        /// Mode: `"no-checkpoint"` (group lost checkpoint storage and
        /// continues bare), `"previous-checkpoint"` (restore fell back
        /// one checkpoint), `"stale-market-view"` (planner reused the
        /// last valid view), or `"stale-plan"` (planner reused the cached
        /// plan without a fingerprint match).
        mode: String,
        /// Circle-group id, if group-scoped.
        group: Option<String>,
        /// Market-trace hour the degradation began.
        at_hours: f64,
        /// What forced it, e.g. `"ckpt-upload-retries-exhausted"` or
        /// `"feed-gap"`.
        reason: String,
    },
    /// The planner service accepted a request for processing. Emitted by
    /// `sompi-server` after the request frame is read and parsed,
    /// before the request enters the worker queue.
    RequestReceived {
        /// Server-assigned request id (monotonic per server process).
        id: u64,
        /// Caller-supplied tenant label (`"anon"` when absent).
        tenant: String,
        /// Request kind: `"plan"`, `"replay"`, or `"ping"`.
        kind: String,
    },
    /// The planner service finished a request and wrote the response.
    RequestCompleted {
        /// Server-assigned request id.
        id: u64,
        /// Caller-supplied tenant label.
        tenant: String,
        /// Request kind: `"plan"`, `"replay"`, or `"ping"`.
        kind: String,
        /// False when the response is a typed error.
        ok: bool,
        /// How the cross-tenant plan cache answered: `"miss"` (a real
        /// search ran), `"hit"` (served from a completed entry),
        /// `"coalesced"` (waited on an identical in-flight search), or
        /// `"none"` (the request kind is not cacheable).
        cache: String,
        /// Wall seconds the request waited in the admission queue.
        queue_secs: f64,
        /// Wall seconds spent servicing the request (search/replay +
        /// response serialization).
        service_secs: f64,
    },
    /// The planner service rejected a request at admission because the
    /// worker queue was full (load shedding). The connection receives a
    /// typed `Overloaded` response instead of queueing unboundedly.
    RequestShed {
        /// Server-assigned request id (assigned at accept time; the
        /// request body is never parsed on this path, so no tenant/kind).
        id: u64,
        /// Requests waiting in the queue at the shedding decision.
        queue_depth: u32,
        /// The queue's configured capacity.
        capacity: u32,
    },
    /// The cross-tenant plan cache answered a request without a fresh
    /// search: either from a completed entry, or by waiting for an
    /// identical in-flight search to finish (single-flight coalescing).
    CacheHit {
        /// Stable 64-bit digest of the request key (parameters + market
        /// view fingerprint); identical requests share it.
        key: u64,
        /// Request kind served from cache (currently always `"plan"`).
        kind: String,
        /// True when this hit waited on an in-flight search rather than
        /// reading a completed entry.
        coalesced: bool,
    },
    /// A replayed run finished (success or not).
    RunCompleted {
        /// `"spot:<group-id>"` when a spot group finished the job,
        /// `"on-demand"` otherwise.
        finisher: String,
        /// Total money spent (USD).
        total_cost: f64,
        /// Spot portion of the cost (USD).
        spot_cost: f64,
        /// On-demand portion of the cost (USD).
        od_cost: f64,
        /// Wall hours from start to completion.
        wall_hours: f64,
        /// Whether completion beat the deadline.
        met_deadline: bool,
        /// Spot groups the provider killed during the run.
        groups_failed: u32,
        /// Windows executed (adaptive runs only).
        windows: Option<u32>,
        /// Times the adaptive loop changed plan (adaptive runs only).
        plan_changes: Option<u32>,
    },
    /// Monte-Carlo replay warmed the batched scenario-major path: the
    /// plan's per-(group, bid) death-time tables were fetched from the
    /// market's shared cache (or built on first touch) before any replica
    /// ran. Emitted once per `MonteCarlo::run_plan` call under the
    /// batched execution mode; absent under `--no-batch-replay`.
    ReplayBatched {
        /// Plan groups covered by batch tables.
        groups: u32,
        /// Replicas about to replay against them.
        replicas: u64,
        /// Tables built fresh for this call.
        tables_built: u32,
        /// Tables served from the market's shared cache (warmed by an
        /// earlier replay of the same (group, bid) on this market).
        tables_reused: u32,
    },
    /// A tournament cell reused another cell's Monte-Carlo result: its
    /// policy produced a byte-identical plan under the same
    /// (market, fault plan), so the replay was served from the
    /// plan-fingerprint memo instead of re-running. Absent under
    /// `--no-replay-memo`.
    ReplayMemoHit {
        /// Policy display name of the cell served from the memo.
        policy: String,
        /// Market case label (e.g. `"paper-2014-s21"`).
        market: String,
        /// Fault-plan label (`"none"` or the injection spec).
        faults: String,
        /// FNV-1a digest of the plan's serialized form — cells sharing a
        /// fingerprint shared one replay.
        fingerprint: u64,
    },
    /// One tournament cell finished: a policy was planned and
    /// Monte-Carlo-executed against one market × fault-plan combination.
    PolicyEvaluated {
        /// Policy display name (e.g. `"SOMPI"`, `"No-FT"`).
        policy: String,
        /// Market case label (e.g. `"paper-2014-s21"`).
        market: String,
        /// Fault-plan label (`"none"` or the injection spec).
        faults: String,
        /// Expected cost of the policy's plan under the cost model, USD
        /// (absent when the plan cannot be evaluated under the view).
        expected_cost: Option<f64>,
        /// Mean realized cost across Monte-Carlo replicas, USD.
        mean_cost: f64,
        /// Mean realized cost normalized by the on-demand baseline cost.
        normalized_cost: f64,
        /// Fraction of replicas that missed the deadline.
        deadline_miss_rate: f64,
        /// Fraction of replicas finished by a spot group.
        spot_finish_rate: f64,
        /// Mean out-of-bid kills per replica.
        mean_failures: f64,
        /// Mean wall hours divided by the baseline (fastest on-demand)
        /// execution time.
        time_degradation: f64,
    },
}

impl Event {
    /// The variant name, as it appears as the single key on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PlanSearchStarted { .. } => "PlanSearchStarted",
            Event::SubsetEvaluated { .. } => "SubsetEvaluated",
            Event::PlanSelected { .. } => "PlanSelected",
            Event::SearchPoolUsed { .. } => "SearchPoolUsed",
            Event::WarmStartApplied { .. } => "WarmStartApplied",
            Event::BucketTableReused { .. } => "BucketTableReused",
            Event::WindowReplanned { .. } => "WindowReplanned",
            Event::GroupFailed { .. } => "GroupFailed",
            Event::CheckpointTaken { .. } => "CheckpointTaken",
            Event::OnDemandFallback { .. } => "OnDemandFallback",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::RetryAttempted { .. } => "RetryAttempted",
            Event::DegradedMode { .. } => "DegradedMode",
            Event::RequestReceived { .. } => "RequestReceived",
            Event::RequestCompleted { .. } => "RequestCompleted",
            Event::RequestShed { .. } => "RequestShed",
            Event::CacheHit { .. } => "CacheHit",
            Event::RunCompleted { .. } => "RunCompleted",
            Event::ReplayBatched { .. } => "ReplayBatched",
            Event::ReplayMemoHit { .. } => "ReplayMemoHit",
            Event::PolicyEvaluated { .. } => "PolicyEvaluated",
        }
    }

    /// The verbosity level this event belongs to. High-volume events
    /// (per-worker stats, checkpoint ticks) are [`TraceLevel::Detail`];
    /// everything else is [`TraceLevel::Summary`].
    pub fn level(&self) -> TraceLevel {
        match self {
            Event::SubsetEvaluated { .. }
            | Event::CheckpointTaken { .. }
            | Event::BucketTableReused { .. } => TraceLevel::Detail,
            _ => TraceLevel::Summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_and_orders() {
        let levels: Vec<TraceLevel> = ["off", "summary", "detail"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert!("verbose".parse::<TraceLevel>().is_err());
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let events = vec![
            Event::PlanSearchStarted {
                candidates: 12,
                kappa: 2,
                bid_levels: 6,
                threads: 1,
                subsets: 78,
                options_considered: 72,
                options_pruned: 3,
                deadline_hours: 100.0,
                options_dominated: 9,
            },
            Event::SubsetEvaluated {
                worker: 0,
                subsets: 78,
                evaluations: 1200,
                feasible: 900,
                best_cost: Some(41.5),
                phi_intervals: vec![2.5, 3.0],
                skipped: 600,
            },
            Event::SubsetEvaluated {
                worker: 1,
                subsets: 0,
                evaluations: 0,
                feasible: 0,
                best_cost: None,
                phi_intervals: vec![],
                skipped: 0,
            },
            Event::PlanSelected {
                source: "spot".to_string(),
                groups: 2,
                expected_cost: 41.5,
                expected_time: 88.0,
                p_all_fail: 0.01,
                slack: 0.2,
                evaluations: 1200,
                assess_secs: 0.05,
                search_secs: 0.5,
                evals_skipped: 600,
                bound_tightenings: 4,
                evals_per_sec: 2400.0,
                kernel_nanos: 350_000_000,
            },
            Event::SearchPoolUsed {
                pool_id: 1,
                search_seq: 3,
                workers: 4,
                jobs: 4,
            },
            Event::WarmStartApplied {
                seeded: true,
                seed_cost: Some(39.25),
                hot_subsets: 16,
                tables_reused: 40,
                tables_rebuilt: 8,
            },
            Event::BucketTableReused {
                group: "g2".to_string(),
                digest: 0xdead_beef_u64,
                reused: 5,
                rebuilt: 1,
            },
            Event::FaultInjected {
                class: "ckpt-upload-failure".to_string(),
                group: Some("g1".to_string()),
                at_hours: 7.5,
                detail: 2.0,
            },
            Event::RetryAttempted {
                op: "ckpt-upload".to_string(),
                group: "g1".to_string(),
                at_hours: 7.5,
                attempt: 2,
                backoff_hours: 0.1,
                gave_up: false,
            },
            Event::DegradedMode {
                mode: "no-checkpoint".to_string(),
                group: Some("g1".to_string()),
                at_hours: 8.0,
                reason: "ckpt-upload-retries-exhausted".to_string(),
            },
            Event::RequestReceived {
                id: 3,
                tenant: "team-a".to_string(),
                kind: "plan".to_string(),
            },
            Event::RequestCompleted {
                id: 3,
                tenant: "team-a".to_string(),
                kind: "plan".to_string(),
                ok: true,
                cache: "coalesced".to_string(),
                queue_secs: 0.002,
                service_secs: 0.13,
            },
            Event::RequestShed {
                id: 4,
                queue_depth: 1,
                capacity: 1,
            },
            Event::CacheHit {
                key: 0x1234_5678,
                kind: "plan".to_string(),
                coalesced: false,
            },
            Event::RunCompleted {
                finisher: "spot:g1".to_string(),
                total_cost: 40.0,
                spot_cost: 40.0,
                od_cost: 0.0,
                wall_hours: 90.0,
                met_deadline: true,
                groups_failed: 1,
                windows: None,
                plan_changes: Some(2),
            },
            Event::ReplayBatched {
                groups: 2,
                replicas: 200,
                tables_built: 2,
                tables_reused: 0,
            },
            Event::ReplayMemoHit {
                policy: "Ckpt-Only".to_string(),
                market: "paper-2014-s21".to_string(),
                faults: "none".to_string(),
                fingerprint: 0x9e37_79b9_u64,
            },
            Event::PolicyEvaluated {
                policy: "No-FT".to_string(),
                market: "paper-2014-s21".to_string(),
                faults: "none".to_string(),
                expected_cost: Some(35.0),
                mean_cost: 38.5,
                normalized_cost: 0.62,
                deadline_miss_rate: 0.05,
                spot_finish_rate: 0.9,
                mean_failures: 0.2,
                time_degradation: 1.3,
            },
        ];
        for e in &events {
            let line = serde_json::to_string(e).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, e, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn external_tagging_is_the_wire_format() {
        let e = Event::WindowReplanned {
            window: 3,
            elapsed_hours: 45.0,
            remaining_fraction: 0.4,
            reused: false,
            decision: "hybrid".to_string(),
            groups: 2,
            fingerprint_hit: false,
        };
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.starts_with("{\"WindowReplanned\":{\"window\":3,"));
        assert_eq!(e.kind(), "WindowReplanned");
        assert_eq!(e.level(), TraceLevel::Summary);
    }

    #[test]
    fn pre_pruning_traces_still_parse() {
        // Fields added by the pruning layer are `#[serde(default)]` so
        // traces written before it existed keep deserializing.
        let old = r#"{"WindowReplanned":{"window":1,"elapsed_hours":12.0,
            "remaining_fraction":0.5,"reused":true,"decision":"hybrid",
            "groups":2}}"#;
        let e: Event = serde_json::from_str(old).unwrap();
        match e {
            Event::WindowReplanned {
                fingerprint_hit, ..
            } => assert!(!fingerprint_hit),
            other => panic!("wrong variant: {other:?}"),
        }
        let old = r#"{"SubsetEvaluated":{"worker":0,"subsets":5,
            "evaluations":10,"feasible":3,"best_cost":null,
            "phi_intervals":[]}}"#;
        let e: Event = serde_json::from_str(old).unwrap();
        match e {
            Event::SubsetEvaluated { skipped, .. } => assert_eq!(skipped, 0),
            other => panic!("wrong variant: {other:?}"),
        }
        // Kernel counters appended in the caps-memo PR likewise default.
        let old = r#"{"PlanSelected":{"source":"spot","groups":2,
            "expected_cost":41.5,"expected_time":88.0,"p_all_fail":0.01,
            "slack":0.2,"evaluations":1200,"assess_secs":0.05,
            "search_secs":0.5}}"#;
        let e: Event = serde_json::from_str(old).unwrap();
        match e {
            Event::PlanSelected {
                evals_per_sec,
                kernel_nanos,
                ..
            } => {
                assert_eq!(evals_per_sec, 0.0);
                assert_eq!(kernel_nanos, 0);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
