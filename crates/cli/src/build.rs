//! Shared construction helpers for CLI commands: markets (synthetic or
//! from a feed file) driven by flags. Application and problem
//! construction lives in `sompi-server::service`, shared with the
//! planner daemon.

use crate::args::{ArgError, Args};
use ec2_market::instance::InstanceCatalog;
use ec2_market::market::{CircleGroupId, SpotMarket};
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use ec2_market::zone::AvailabilityZone;

/// Command errors: argument problems or domain failures.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation failed.
    Arg(ArgError),
    /// Anything else, already formatted.
    Other(String),
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Arg(e) => write!(f, "{e}"),
            CliError::Other(s) => write!(f, "{s}"),
        }
    }
}

/// Build a market from flags: either `--feed <file>` (AWS price history)
/// or a synthetic one from `--seed` / `--hours`. `--no-trace-index`
/// disables the sparse-table trace index (an ablation switch — replay
/// answers are bit-identical either way, only wall-clock changes).
pub fn market_from(args: &Args) -> Result<SpotMarket, CliError> {
    let mut market = market_from_inner(args)?;
    if args.flag("no-trace-index") {
        market.set_trace_index_enabled(false);
    }
    Ok(market)
}

fn market_from_inner(args: &Args) -> Result<SpotMarket, CliError> {
    let step = args.f64_or("step", 1.0 / 12.0)?;
    if let Some(path) = args.get("feed") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?;
        let events =
            ec2_market::feed::parse_feed(&text).map_err(|e| CliError::Other(e.to_string()))?;
        let catalog = InstanceCatalog::paper_2014();
        let mut market = SpotMarket::new(catalog.clone());
        for ((ty_name, zone_name), trace) in ec2_market::feed::traces_by_group(&events, step) {
            let Some(ty) = catalog.by_name(&ty_name) else {
                return Err(CliError::Other(format!(
                    "feed references unknown instance type {ty_name:?}"
                )));
            };
            let zone = parse_zone(&zone_name)?;
            market.insert(CircleGroupId::new(ty, zone), trace);
        }
        if market.is_empty() {
            return Err(CliError::Other("feed produced no traces".into()));
        }
        Ok(market)
    } else {
        let seed = args.u64_or("seed", 42)?;
        let hours = args.f64_or("hours", 336.0)?;
        let catalog = InstanceCatalog::paper_2014();
        let profile = MarketProfile::paper_2014(&catalog);
        Ok(SpotMarket::generate(
            catalog,
            &TraceGenerator::new(profile, seed),
            hours,
            step,
        ))
    }
}

fn parse_zone(name: &str) -> Result<AvailabilityZone, CliError> {
    match name {
        "us-east-1a" => Ok(AvailabilityZone::UsEast1a),
        "us-east-1b" => Ok(AvailabilityZone::UsEast1b),
        "us-east-1c" => Ok(AvailabilityZone::UsEast1c),
        other => other
            .strip_prefix("us-east-1x")
            .and_then(|n| n.parse().ok())
            .map(AvailabilityZone::Other)
            .ok_or_else(|| CliError::Other(format!("unknown availability zone {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn synthetic_market_by_default() {
        let m = market_from(&args(&["--hours", "72", "--seed", "5"])).unwrap();
        assert_eq!(m.len(), 15);
        assert!((m.horizon() - 72.0).abs() < 1.0);
        assert!(m.trace_index_enabled());
    }

    #[test]
    fn no_trace_index_flag_disables_the_index() {
        let m = market_from(&args(&["--hours", "72", "--no-trace-index"])).unwrap();
        assert!(!m.trace_index_enabled());
        let id = m.groups().next().unwrap();
        assert!(!m.query(id).unwrap().indexed());
    }

    #[test]
    fn feed_market_from_file() {
        let dir = std::env::temp_dir().join("sompi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.txt");
        std::fs::write(
            &path,
            "0 m1.small us-east-1a 0.01\n7200 m1.small us-east-1a 0.02\n",
        )
        .unwrap();
        let m = market_from(&args(&["--feed", path.to_str().unwrap()])).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn feed_with_unknown_type_errors() {
        let dir = std::env::temp_dir().join("sompi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "0 z9.mega us-east-1a 0.01\n").unwrap();
        assert!(market_from(&args(&["--feed", path.to_str().unwrap()])).is_err());
    }
}
