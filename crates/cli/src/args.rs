//! Tiny dependency-free argument parser: `--flag value`, `--flag=value`
//! and boolean `--flag` forms, with typed accessors and unknown-flag
//! detection.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Argument errors, rendered to the user verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// `--flag` was given but the command does not know it.
    Unknown(String),
    /// A flag's value failed to parse.
    BadValue {
        /// Flag name without dashes.
        flag: String,
        /// Offending raw value.
        value: String,
        /// Expected type, e.g. `"number"`.
        expected: &'static str,
    },
    /// A required flag is missing.
    Missing(&'static str),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag}: expected {expected}, got {value:?}")
            }
            ArgError::Missing(flag) => write!(f, "missing required flag --{flag}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments (excluding the program name and subcommand).
    pub fn parse(raw: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut options = BTreeMap::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(stripped) = a.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    options.insert(k.to_string(), v.to_string());
                } else if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    options.insert(stripped.to_string(), raw[i + 1].clone());
                    i += 1;
                } else {
                    options.insert(stripped.to_string(), "true".to_string());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Self {
            positional,
            options,
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Raw string option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// String option with default.
    pub fn str_or(&self, flag: &str, default: &str) -> String {
        self.get(flag).unwrap_or(default).to_string()
    }

    /// Float option with default.
    pub fn f64_or(&self, flag: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.into(),
                value: v.into(),
                expected: "number",
            }),
        }
    }

    /// Integer option with default.
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.into(),
                value: v.into(),
                expected: "integer",
            }),
        }
    }

    /// Boolean flag (present or `--flag=true`).
    pub fn flag(&self, flag: &str) -> bool {
        matches!(self.get(flag), Some("true") | Some("1") | Some("yes"))
    }

    /// Reject flags outside the allowed set.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn space_and_equals_forms() {
        let a = parse(&["--app", "BT", "--deadline=1.5", "--json"]);
        assert_eq!(a.get("app"), Some("BT"));
        assert_eq!(a.get("deadline"), Some("1.5"));
        assert!(a.flag("json"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn positionals_survive() {
        let a = parse(&["feed.csv", "--step", "0.25", "other.txt"]);
        assert_eq!(a.positional(), ["feed.csv", "other.txt"]);
    }

    #[test]
    fn typed_accessors() {
        let a = parse(&["--x", "2.5", "--n", "7"]);
        assert_eq!(a.f64_or("x", 0.0).unwrap(), 2.5);
        assert_eq!(a.u64_or("n", 0).unwrap(), 7);
        assert_eq!(a.f64_or("absent", 9.0).unwrap(), 9.0);
        assert!(a.f64_or("n", 0.0).is_ok());
    }

    #[test]
    fn bad_values_error_cleanly() {
        let a = parse(&["--x", "abc"]);
        assert!(matches!(
            a.f64_or("x", 0.0),
            Err(ArgError::BadValue {
                expected: "number",
                ..
            })
        ));
    }

    #[test]
    fn unknown_flags_detected() {
        let a = parse(&["--app", "BT", "--tyop", "q"]);
        assert_eq!(
            a.check_known(&["app"]),
            Err(ArgError::Unknown("tyop".into()))
        );
        assert!(a.check_known(&["app", "tyop"]).is_ok());
    }

    #[test]
    fn boolean_then_positional() {
        // A bare flag followed by another flag stays boolean.
        let a = parse(&["--json", "--app", "BT"]);
        assert!(a.flag("json"));
        assert_eq!(a.get("app"), Some("BT"));
    }
}
