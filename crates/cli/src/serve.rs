//! The `serve` and `client` subcommands: run the planner daemon, and a
//! smoke-test client for driving it.
//!
//! `sompi serve` owns the market (synthetic or `--feed`), the trace
//! sink and the server lifecycle; `sompi client` builds one wire
//! request from the same flags `plan`/`replay` use and prints the
//! response — or, with `--burst N`, fires N identical requests from N
//! threads at once to exercise the cache and the load-shedding path.

use crate::args::Args;
use crate::build::{market_from, CliError};
use crate::commands::{
    finish_trace, plan_request_from, replay_request_from, trace_sink_from, PLAN_FLAGS,
};
use sompi_obs::{NullRecorder, Recorder};
use sompi_server::client;
use sompi_server::proto::{Request, Response};
use sompi_server::{Server, ServerConfig, PROTOCOL_VERSION};
use std::io::Write;
use std::sync::Arc;

/// `sompi serve` — run the planner daemon until `--max-requests` is
/// reached (or forever). Market flags choose what the server plans
/// against; the remaining flags size the worker pool, admission queue
/// and cross-tenant plan cache.
pub fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(&[
        "feed",
        "seed",
        "hours",
        "step",
        "no-trace-index",
        "addr",
        "workers",
        "queue-cap",
        "batch",
        "cache-cap",
        "pause-ms",
        "max-requests",
        "no-eval-pool",
        "trace-out",
        "trace-level",
    ])?;
    let market = Arc::new(market_from(args)?);
    let sink = trace_sink_from(args)?.map(Arc::new);
    let recorder: Arc<dyn Recorder + Send + Sync> = match &sink {
        Some(s) => Arc::clone(s) as Arc<dyn Recorder + Send + Sync>,
        None => Arc::new(NullRecorder),
    };
    let max_requests = match args.get("max-requests") {
        None => None,
        Some(_) => Some(args.u64_or("max-requests", 0)?),
    };
    let config = ServerConfig {
        addr: args.str_or("addr", "127.0.0.1:7077"),
        workers: args.u64_or("workers", 2)? as usize,
        queue_cap: args.u64_or("queue-cap", 32)? as usize,
        batch: args.u64_or("batch", 8)? as usize,
        cache_capacity: args.u64_or("cache-cap", 128)? as usize,
        pause_ms: args.u64_or("pause-ms", 0)?,
        max_requests,
        eval_pool: !args.flag("no-eval-pool"),
    };
    let server = Server::bind(market, recorder, config.clone())
        .map_err(|e| CliError::Other(format!("cannot bind {}: {e}", config.addr)))?;
    writeln!(
        out,
        "sompi-server listening on {} (protocol v{PROTOCOL_VERSION}, {} worker(s), queue {}, cache {})",
        server.local_addr(),
        config.workers.max(1),
        config.queue_cap.max(1),
        config.cache_capacity.max(1),
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    out.flush().map_err(|e| CliError::Other(e.to_string()))?;

    let stats = server
        .serve()
        .map_err(|e| CliError::Other(format!("serve: {e}")))?;
    let cache = server.cache();
    writeln!(
        out,
        "served {} connection(s): {} shed; plan cache: {} hit(s), {} coalesced, {} miss(es)",
        stats.accepted,
        stats.shed,
        cache.hits(),
        cache.coalesced(),
        cache.misses()
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    if let Some(s) = &sink {
        finish_trace(s, args.get("trace-out").unwrap_or(""))?;
    }
    Ok(())
}

/// `sompi client` — send one request (or a `--burst` of identical
/// ones) to a running server and print the response(s).
pub fn cmd_client(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut flags: Vec<&str> = PLAN_FLAGS
        .iter()
        .copied()
        // Market flags are the server's business, not the client's.
        .filter(|f| !matches!(*f, "feed" | "seed" | "hours" | "step" | "no-trace-index"))
        .filter(|f| !matches!(*f, "trace-out" | "trace-level"))
        .collect();
    flags.extend([
        "addr",
        "tenant",
        "burst",
        "ping",
        "replay",
        "replicas",
        "mc-seed",
        "adaptive",
        "window",
        "no-warmstart",
        "no-bucket-reuse",
        "faults",
        "fault-seed",
    ]);
    args.check_known(&flags)?;
    let addr = args.str_or("addr", "127.0.0.1:7077");
    let request = if args.flag("ping") {
        Request::Ping
    } else if args.flag("replay") {
        Request::Replay(replay_request_from(args, 100)?)
    } else {
        Request::Plan(plan_request_from(args)?)
    };
    let burst = args.u64_or("burst", 1)?.max(1) as usize;
    let json = args.flag("json");

    if burst == 1 {
        let response =
            client::call(&addr, &request).map_err(|e| CliError::Other(format!("{addr}: {e}")))?;
        return render(out, &response, json).map_err(|e| CliError::Other(e.to_string()));
    }
    for (i, result) in client::burst(&addr, &request, burst)
        .into_iter()
        .enumerate()
    {
        write!(out, "[{i}] ").map_err(|e| CliError::Other(e.to_string()))?;
        match result {
            Ok(response) => {
                render(out, &response, json).map_err(|e| CliError::Other(e.to_string()))?
            }
            Err(e) => {
                writeln!(out, "transport error: {e}").map_err(|e| CliError::Other(e.to_string()))?
            }
        }
    }
    Ok(())
}

/// One response, one line (or a pretty JSON document with `--json`).
/// Typed errors from the server render as lines, not process failures,
/// so a burst with a few shed responses still exits 0.
fn render(out: &mut dyn Write, response: &Response, json: bool) -> std::io::Result<()> {
    if json {
        return writeln!(
            out,
            "{}",
            serde_json::to_string_pretty(response).expect("serializable")
        );
    }
    match response {
        Response::Pong { version } => writeln!(out, "pong: protocol v{version}"),
        Response::Plan { id, cache, report } => writeln!(
            out,
            "plan[{id}] cache={cache}: {} via {} E[cost] ${:.2} E[time] {:.2} h",
            report.app, report.strategy, report.expected_cost, report.expected_time
        ),
        Response::Replay { id, report } => writeln!(
            out,
            "replay[{id}]: {} via {} mean ${:.2} = {:.3} x baseline, met {:.0}%",
            report.app,
            report.strategy,
            report.cost.mean,
            report.normalized_cost,
            report.deadline_rate * 100.0
        ),
        Response::Overloaded {
            id,
            queue_depth,
            capacity,
        } => writeln!(
            out,
            "overloaded[{id}]: queue {queue_depth}/{capacity}, retry with backoff"
        ),
        Response::Error { id, kind, message } => {
            writeln!(out, "error[{id}] ({kind}): {message}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    /// A `Write` sink shareable with the thread running `cmd_serve`.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    /// Reserve an ephemeral loopback port. There is a small window
    /// between dropping the listener and the server re-binding, but
    /// loopback ports are not reused that eagerly in practice.
    fn free_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut buf = Vec::new();
        let err = cmd_serve(&args(&["--nope", "1"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("unknown flag"), "{err}");
        let err = cmd_client(&args(&["--hours", "100"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("unknown flag"), "{err}");
    }

    #[test]
    fn client_reports_unreachable_server() {
        let mut buf = Vec::new();
        let err = cmd_client(&args(&["--addr", "127.0.0.1:1", "--ping"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("127.0.0.1:1"), "{err}");
    }

    #[test]
    fn serve_and_client_round_trip_with_cache_accounting() {
        let addr = free_addr();
        let serve_out = SharedBuf::default();
        let server = {
            let addr = addr.clone();
            let mut out = serve_out.clone();
            std::thread::spawn(move || {
                cmd_serve(
                    &args(&[
                        "--addr",
                        &addr,
                        "--hours",
                        "100",
                        "--workers",
                        "1",
                        "--max-requests",
                        "3",
                    ]),
                    &mut out,
                )
            })
        };

        // Wait for the listener, burning the first accepted connection
        // on a ping.
        let ping = args(&["--addr", &addr, "--ping"]);
        let mut buf = Vec::new();
        for attempt in 0.. {
            match cmd_client(&ping, &mut buf) {
                Ok(()) => break,
                Err(_) if attempt < 100 => std::thread::sleep(std::time::Duration::from_millis(20)),
                Err(e) => panic!("server never came up: {e}"),
            }
        }
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("pong: protocol v1"));

        // Identical plans: the first misses, the second hits the cache.
        let plan = args(&[
            "--addr",
            &addr,
            "--repeats",
            "50",
            "--kappa",
            "1",
            "--levels",
            "2",
        ]);
        let mut first = Vec::new();
        cmd_client(&plan, &mut first).unwrap();
        let mut second = Vec::new();
        cmd_client(&plan, &mut second).unwrap();
        let (first, second) = (
            String::from_utf8(first).unwrap(),
            String::from_utf8(second).unwrap(),
        );
        assert!(first.contains("cache=miss"), "{first}");
        assert!(second.contains("cache=hit"), "{second}");

        // --max-requests 3 exits the server cleanly after the burst.
        server.join().unwrap().unwrap();
        let text = serve_out.text();
        assert!(text.contains("listening on"), "{text}");
        assert!(
            text.contains(
                "served 3 connection(s): 0 shed; plan cache: 1 hit(s), 0 coalesced, 1 miss(es)"
            ),
            "{text}"
        );
    }
}
