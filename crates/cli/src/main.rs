//! `sompi` — plan and evaluate cost-optimized MPI executions on (simulated
//! or imported) EC2 spot markets.
//!
//! ```text
//! sompi plan   [--app BT --class B --procs 128 --deadline 1.5 ...]
//! sompi replay [... --replicas 200]     (alias: sompi run)
//! sompi sweep  [... --from 1.05 --to 2.0 --points 6]
//! sompi tournament [--policies ondemand,no-ft,ckpt-only,app-centric,deadline-hedge,sompi ...]
//! sompi trace  [--feed history.txt | --seed 42 --hours 336] [--calibrate]
//! sompi trace summarize run.jsonl
//! sompi serve  [--addr 127.0.0.1:7077 --workers 2 --queue-cap 32 ...]
//! sompi client [--addr 127.0.0.1:7077 --burst N --replay ...]
//! ```

use sompi_cli::args::Args;
use sompi_cli::commands;
use sompi_cli::serve;

const USAGE: &str = "\
sompi — monetary cost optimization for MPI applications on EC2 spot markets

USAGE:
    sompi <COMMAND> [FLAGS]

COMMANDS:
    plan      optimize bids/checkpoints/fallback for one application
    replay    plan, then Monte-Carlo replay against the market (alias: run)
    sweep     cost vs deadline-factor sweep
    tournament  head-to-head policy arena over markets x fault plans
    trace     summarize market traces (optionally --calibrate)
    trace summarize FILE    render a recorded .jsonl execution trace
    serve     run the planner daemon (see docs/SERVER.md for the protocol)
    client    send one request (or --burst N) to a running server

COMMON FLAGS:
    --app BT|SP|LU|FT|IS|BTIO|CG|MG|EP|LAMMPS   (default BT)
    --class S|W|A|B|C          NPB class (default B)
    --procs N                  MPI processes (default 128)
    --repeats N                back-to-back runs (default 200)
    --deadline F               deadline as multiple of Baseline Time (default 1.5)
    --strategy NAME            planning policy: sompi, on-demand, marathe,
                               marathe-opt, spot-inf, spot-avg, no-rp, no-ck,
                               no-ft, ckpt-only, app-centric, deadline-hedge
    --kappa K --levels L --slack S      optimizer knobs (default 4, 12, 0.2)
    --threads N                optimizer worker threads (0 = all cores, default)
    --no-prune-dominance / --no-prune-bound / --no-shared-incumbent
                               disable exactness-preserving search pruning stages
                               (ablation; the optimum never changes)
    --no-trace-index           disable the sparse-table trace index used by
                               replay queries (ablation; answers never change)
    --no-kernel-caps           force the scalar cost kernel instead of the
                               auto-selected cap-memo/SoA kernels (ablation;
                               plans never change)
    --no-batch-replay          disable the batched scenario-major replay
                               executor (ablation; outcomes are bit-identical,
                               only replay wall-clock changes)
    --adaptive                 replay the windowed Algorithm-1 loop instead of
                               a single frozen plan (replay only)
    --window H                 adaptive re-optimization window T_m, hours
                               (default 15)
    --no-warmstart / --no-bucket-reuse
                               disable the adaptive re-optimizer's warm-start
                               layers (ablation; plans and outcomes never
                               change, only re-plan wall-clock)
    --seed N --hours H --step H         synthetic market shape
    --feed FILE                import AWS spot price history instead
    --history H                planning history window, hours (default 48)
    --replicas N --mc-seed N   Monte-Carlo controls
    --faults SPEC              inject deterministic faults during replay, e.g.
                               storm=0.05x0.5,ckpt-fail=0.1,feed-gap=0.2
    --fault-seed N             fault-injection seed (default 42)
    --json                     machine-readable output (plan, replay, client)
    --trace-out FILE           write a JSONL event trace (plan, replay, serve)
    --trace-level off|summary|detail    trace verbosity (default summary)

TOURNAMENT FLAGS (tournament):
    --policies a,b,c           roster to compete (default ondemand,no-ft,
                               ckpt-only,app-centric,deadline-hedge,sompi)
    --seeds 21,22,...          one synthetic market per seed (default 21)
    --fault-grid \"none;SPEC\"   fault plans to sweep, `;`-separated; `none`
                               is the fault-free case (default none)
    --smoke                    seconds-fast CI configuration (small problem,
                               3 replicas, 120 h market)
    --no-replay-memo           disable cross-cell plan-fingerprint replay
                               memoization (ablation; the report is
                               byte-identical, only wall-clock changes)

SERVER FLAGS (serve):
    --addr HOST:PORT           listen address (default 127.0.0.1:7077; port 0
                               picks an ephemeral port)
    --workers N --queue-cap N --batch N --cache-cap N
                               worker pool, admission queue, request batching
                               and plan-cache sizing
    --pause-ms MS              artificial per-request delay (load drills)
    --max-requests N           exit cleanly after N accepted connections

CLIENT FLAGS (client):
    --addr HOST:PORT           server to talk to (default 127.0.0.1:7077)
    --tenant NAME              tenant label for multi-tenant accounting
    --burst N                  fire N identical requests from N threads
    --ping                     liveness/version probe instead of a plan
    --replay                   send a replay request instead of a plan
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().map(String::as_str) else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let args = Args::parse(&raw[1..]);
    let mut stdout = std::io::stdout().lock();
    let result = match command {
        "plan" => commands::cmd_plan(&args, &mut stdout),
        "replay" | "run" => commands::cmd_replay(&args, &mut stdout),
        "sweep" => commands::cmd_sweep(&args, &mut stdout),
        "tournament" => commands::cmd_tournament(&args, &mut stdout),
        "trace" => commands::cmd_trace(&args, &mut stdout),
        "serve" => serve::cmd_serve(&args, &mut stdout),
        "client" => serve::cmd_client(&args, &mut stdout),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return;
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
