//! Library surface of the `sompi` CLI (see `main.rs` for the binary):
//! argument parsing, market/app construction from flags, and the
//! subcommand implementations, exposed for integration testing.

pub mod args;
pub mod build;
pub mod commands;
pub mod serve;
