//! The CLI subcommands: `plan`, `replay`, `sweep`, `tournament`,
//! `trace`.
//!
//! `plan`, `replay` and `sweep` are thin clients of the
//! `sompi-server::service` entry points — the same code the planner
//! daemon runs per request — so CLI answers and server answers are
//! bit-identical by construction. The subcommands here only translate
//! flags into `PlanRequest`/`ReplayRequest` structs and render the
//! returned reports; `serve`/`client` live in `crate::serve`.
//!
//! Every command writes a human-readable report to the given writer;
//! `--json` switches to a machine-readable JSON document instead.

use crate::args::Args;
use crate::build::{market_from, CliError};
use ec2_market::market::SpotMarket;
use sompi_core::model::Plan;
use sompi_core::pool::SearchPool;
use sompi_obs::{parse_jsonl, JsonlRecorder, NullRecorder, Recorder, RunReport, TraceLevel};
use sompi_server::proto::{PlanRequest, ReplayRequest};
use sompi_server::service::{self, ServiceError};
use sompi_server::tournament::{self, TournamentConfig};
use std::io::Write;

pub(crate) const PLAN_FLAGS: &[&str] = &[
    "feed",
    "seed",
    "hours",
    "step",
    "app",
    "class",
    "procs",
    "repeats",
    "deadline",
    "kappa",
    "levels",
    "slack",
    "strategy",
    "json",
    "history",
    "threads",
    "trace-out",
    "trace-level",
    "no-prune-dominance",
    "no-prune-bound",
    "no-shared-incumbent",
    "no-kernel-caps",
    "no-trace-index",
];

pub(crate) fn svc(e: ServiceError) -> CliError {
    CliError::Other(e.to_string())
}

/// Translate the planning flags into the wire-protocol request struct.
/// Defaults here and in the serde schema are the same, so a bare
/// `sompi plan` and a `{"Plan": {}}` request describe the same problem.
pub(crate) fn plan_request_from(args: &Args) -> Result<PlanRequest, CliError> {
    Ok(PlanRequest {
        tenant: args.str_or("tenant", "anon"),
        app: args.str_or("app", "BT"),
        class: args.str_or("class", "B"),
        procs: args.u64_or("procs", 128)? as u32,
        repeats: args.u64_or("repeats", 200)? as u32,
        deadline_factor: args.f64_or("deadline", 1.5)?,
        strategy: args.str_or("strategy", "sompi"),
        kappa: args.u64_or("kappa", 4)? as u32,
        bid_levels: args.u64_or("levels", 12)? as u32,
        slack: args.f64_or("slack", 0.2)?,
        threads: args.u64_or("threads", 0)? as u32,
        // Pruning ablation switches; all stages preserve the exact
        // optimum, so disabling them only changes planner wall-clock.
        prune_dominance: !args.flag("no-prune-dominance"),
        prune_bound: !args.flag("no-prune-bound"),
        shared_incumbent: !args.flag("no-shared-incumbent"),
        kernel_caps: !args.flag("no-kernel-caps"),
        history_hours: args.f64_or("history", 48.0)?,
        view_start_hours: 0.0,
    })
}

/// Translate the replay flags (planning flags included) into the wire
/// request. `default_replicas` differs per command: 100 for `replay`,
/// 50 for `sweep`.
pub(crate) fn replay_request_from(
    args: &Args,
    default_replicas: u64,
) -> Result<ReplayRequest, CliError> {
    Ok(ReplayRequest {
        plan: plan_request_from(args)?,
        replicas: args.u64_or("replicas", default_replicas)? as u32,
        mc_seed: args.u64_or("mc-seed", 1)?,
        adaptive: args.flag("adaptive"),
        window_hours: args.f64_or("window", 15.0)?,
        warmstart: !args.flag("no-warmstart"),
        bucket_reuse: !args.flag("no-bucket-reuse"),
        faults: args.get("faults").map(str::to_string),
        fault_seed: args.u64_or("fault-seed", 42)?,
        batch_replay: !args.flag("no-batch-replay"),
    })
}

/// Build the optional JSONL trace sink from `--trace-out` /
/// `--trace-level` (default level `summary` once a path is given).
pub(crate) fn trace_sink_from(args: &Args) -> Result<Option<JsonlRecorder>, CliError> {
    let level = match args.get("trace-level") {
        None => TraceLevel::Summary,
        Some(v) => v.parse().map_err(CliError::Other)?,
    };
    match args.get("trace-out") {
        None => Ok(None),
        Some(path) => JsonlRecorder::create(std::path::Path::new(path), level)
            .map(Some)
            .map_err(|e| CliError::Other(format!("--trace-out {path}: {e}"))),
    }
}

/// Flush a trace sink and surface any events lost to I/O errors.
pub(crate) fn finish_trace(sink: &JsonlRecorder, path: &str) -> Result<(), CliError> {
    sink.flush()
        .map_err(|e| CliError::Other(format!("--trace-out {path}: {e}")))?;
    if sink.write_errors() > 0 {
        return Err(CliError::Other(format!(
            "--trace-out {path}: {} event(s) lost to write errors",
            sink.write_errors()
        )));
    }
    Ok(())
}

/// Render a plan for humans.
fn describe_plan(out: &mut dyn Write, market: &SpotMarket, plan: &Plan) -> std::io::Result<()> {
    writeln!(out, "plan ({} circle groups):", plan.replication_degree())?;
    for (g, d) in &plan.groups {
        let ty = market.instance_type(g.id);
        writeln!(
            out,
            "  {:<12} {} x{:<4} bid ${:.4}/h  F = {:.2} h  (T_i = {:.2} h, O_i = {:.0} s)",
            ty.name,
            g.id.zone,
            g.instances,
            d.bid,
            d.ckpt_interval,
            g.exec_hours,
            g.ckpt_overhead_hours * 3600.0
        )?;
    }
    let od = market.catalog().get(plan.on_demand.instance_type);
    writeln!(
        out,
        "  fallback: {} x{} on-demand (T_d = {:.2} h, ${:.3}/h)",
        od.name, plan.on_demand.instances, plan.on_demand.exec_hours, plan.on_demand.unit_price
    )?;
    Ok(())
}

/// `sompi plan` — optimize and print the plan plus its model evaluation.
pub fn cmd_plan(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(PLAN_FLAGS)?;
    let market = market_from(args)?;
    let req = plan_request_from(args)?;
    let sink = trace_sink_from(args)?;
    let recorder: &dyn Recorder = match &sink {
        Some(s) => s,
        None => &NullRecorder,
    };
    let report = service::plan(&market, &req, recorder, None).map_err(svc)?;
    if let Some(s) = &sink {
        finish_trace(s, args.get("trace-out").unwrap_or(""))?;
    }

    if args.flag("json") {
        writeln!(
            out,
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        )
        .map_err(|e| CliError::Other(e.to_string()))?;
        return Ok(());
    }

    writeln!(
        out,
        "{} — baseline {:.2} h (${:.2} billed), deadline {:.2} h, strategy {}",
        report.app,
        report.baseline_hours,
        report.baseline_cost_billed,
        report.deadline_hours,
        report.strategy
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    describe_plan(out, &market, &report.plan).map_err(|e| CliError::Other(e.to_string()))?;
    writeln!(
        out,
        "model: E[cost] ${:.2}  E[time] {:.2} h  P[all replicas fail] {:.3}",
        report.expected_cost, report.expected_time, report.p_all_fail
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    Ok(())
}

/// `sompi replay` — plan, then Monte-Carlo replay over the market.
/// `--adaptive` switches to the windowed Algorithm-1 runner;
/// `--no-warmstart` / `--no-bucket-reuse` ablate its exactness-
/// preserving warm-start layers (plans and replayed outcomes are
/// bit-identical either way, only re-plan wall-clock changes).
pub fn cmd_replay(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut flags = PLAN_FLAGS.to_vec();
    flags.extend([
        "replicas",
        "mc-seed",
        "timeline",
        "faults",
        "fault-seed",
        "adaptive",
        "window",
        "no-warmstart",
        "no-bucket-reuse",
        "no-batch-replay",
    ]);
    args.check_known(&flags)?;
    if !args.flag("adaptive") && (args.flag("no-warmstart") || args.flag("no-bucket-reuse")) {
        return Err(CliError::Other(
            "--no-warmstart/--no-bucket-reuse only apply to --adaptive replays".into(),
        ));
    }
    let market = market_from(args)?;
    let req = replay_request_from(args, 100)?;
    let sink = trace_sink_from(args)?;
    let recorder: &dyn Recorder = match &sink {
        Some(s) => s,
        None => &NullRecorder,
    };
    let report = service::replay(&market, &req, recorder).map_err(svc)?;

    // Tracing records one deterministic replay (the Monte-Carlo sweep
    // would interleave replica timelines into an unreadable stream).
    if let Some(s) = &sink {
        service::traced_replay(&market, &req, report.plan.as_ref(), s).map_err(svc)?;
        finish_trace(s, args.get("trace-out").unwrap_or(""))?;
    }

    if args.flag("json") {
        writeln!(
            out,
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        )
        .map_err(|e| CliError::Other(e.to_string()))?;
        return Ok(());
    }

    if req.adaptive {
        writeln!(
            out,
            "{} via adaptive sompi (T_m = {} h{}{}): {} replicas",
            report.app,
            req.window_hours,
            if req.warmstart { "" } else { ", no-warmstart" },
            if req.bucket_reuse {
                ""
            } else {
                ", no-bucket-reuse"
            },
            report.replicas
        )
        .map_err(|e| CliError::Other(e.to_string()))?;
    } else {
        writeln!(
            out,
            "{} via {}: {} replicas",
            report.app, report.strategy, report.replicas
        )
        .map_err(|e| CliError::Other(e.to_string()))?;
    }
    writeln!(
        out,
        "  cost: mean ${:.2} (std {:.2}, p95 {:.2})  = {:.3} x baseline",
        report.cost.mean, report.cost.std_dev, report.cost.p95, report.normalized_cost
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    writeln!(
        out,
        "  time: mean {:.2} h (deadline {:.2} h, met {:.0}%)  finished on spot {:.0}%",
        report.time.mean,
        report.deadline_hours,
        report.deadline_rate * 100.0,
        report.spot_finish_rate * 100.0
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    if let (Some(w), Some(c)) = (report.mean_windows, report.mean_plan_changes) {
        writeln!(out, "  windows: {w:.1} per run, {c:.1} plan change(s)")
            .map_err(|e| CliError::Other(e.to_string()))?;
    }

    if args.flag("timeline") {
        let Some(plan) = &report.plan else {
            return Err(CliError::Other(
                "--timeline applies to fixed-plan replays only".into(),
            ));
        };
        let start = req.plan.history_hours + 1.0;
        let events = replay::timeline::timeline(&market, plan, start, report.deadline_hours);
        writeln!(out, "\ntimeline of one replay (start offset {start:.1} h):")
            .map_err(|e| CliError::Other(e.to_string()))?;
        write!(out, "{}", replay::timeline::render(&events, start))
            .map_err(|e| CliError::Other(e.to_string()))?;
    }
    Ok(())
}

/// `sompi sweep` — cost vs deadline factor. Each point is one
/// fixed-plan replay request with a scaled deadline factor.
pub fn cmd_sweep(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut flags = PLAN_FLAGS.to_vec();
    flags.extend([
        "replicas",
        "mc-seed",
        "from",
        "to",
        "points",
        "no-batch-replay",
    ]);
    args.check_known(&flags)?;
    let market = market_from(args)?;
    let from = args.f64_or("from", 1.05)?;
    let to = args.f64_or("to", 2.0)?;
    let points = args.u64_or("points", 6)?.max(2);

    writeln!(out, "{:<10} {:>12} {:>8}", "deadline", "norm. cost", "met")
        .map_err(|e| CliError::Other(e.to_string()))?;
    for i in 0..points {
        let factor = from + (to - from) * i as f64 / (points - 1) as f64;
        let mut req = replay_request_from(args, 50)?;
        req.plan.deadline_factor = factor;
        let r = service::replay(&market, &req, &NullRecorder).map_err(svc)?;
        writeln!(
            out,
            "{:<10.2} {:>12.3} {:>7.0}%",
            factor,
            r.normalized_cost,
            r.deadline_rate * 100.0
        )
        .map_err(|e| CliError::Other(e.to_string()))?;
    }
    Ok(())
}

/// `sompi tournament` — plan and Monte-Carlo-execute a roster of
/// policies over a grid of markets × fault plans, head to head. The
/// whole sweep shares one resident [`SearchPool`], and the report
/// (including `--json`) is byte-identical across runs and `--threads`
/// settings — the determinism contract CI enforces.
pub fn cmd_tournament(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut flags = PLAN_FLAGS.to_vec();
    flags.extend([
        "policies",
        "seeds",
        "replicas",
        "mc-seed",
        "fault-grid",
        "fault-seed",
        "smoke",
        "no-batch-replay",
        "no-replay-memo",
    ]);
    args.check_known(&flags)?;
    let mut cfg = TournamentConfig {
        plan: plan_request_from(args)?,
        batch_replay: !args.flag("no-batch-replay"),
        replay_memo: !args.flag("no-replay-memo"),
        ..Default::default()
    };
    if let Some(list) = args.get("policies") {
        cfg.policies = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
    }
    if let Some(list) = args.get("seeds") {
        cfg.market_seeds = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| CliError::Other(format!("--seeds: {s:?} is not an integer")))
            })
            .collect::<Result<_, _>>()?;
    } else if let Some(seed) = args.get("seed") {
        // Single-market shorthand, matching the other subcommands.
        cfg.market_seeds = vec![seed
            .parse::<u64>()
            .map_err(|_| CliError::Other(format!("--seed: {seed:?} is not an integer")))?];
    }
    cfg.market_hours = args.f64_or("hours", cfg.market_hours)?;
    cfg.market_step_hours = args.f64_or("step", cfg.market_step_hours)?;
    cfg.replicas = args.u64_or("replicas", u64::from(cfg.replicas))? as u32;
    cfg.mc_seed = args.u64_or("mc-seed", cfg.mc_seed)?;
    cfg.fault_seed = args.u64_or("fault-seed", cfg.fault_seed)?;
    if let Some(grid) = args.get("fault-grid") {
        cfg.fault_specs = grid
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                if s.eq_ignore_ascii_case("none") {
                    None
                } else {
                    Some(s.to_string())
                }
            })
            .collect();
    }
    if args.flag("smoke") {
        // Seconds-fast CI configuration; everything else stays as given.
        cfg.plan.repeats = 50;
        cfg.plan.kappa = 1;
        cfg.plan.bid_levels = 2;
        cfg.market_hours = 120.0;
        cfg.replicas = 3;
    }

    let sink = trace_sink_from(args)?;
    let recorder: &dyn Recorder = match &sink {
        Some(s) => s,
        None => &NullRecorder,
    };
    let pool = SearchPool::new(cfg.plan.threads as usize);
    let report = tournament::run_tournament(&cfg, recorder, Some(&pool)).map_err(svc)?;
    if let Some(s) = &sink {
        finish_trace(s, args.get("trace-out").unwrap_or(""))?;
    }

    if args.flag("json") {
        writeln!(out, "{}", report.to_json()).map_err(|e| CliError::Other(e.to_string()))?;
    } else {
        write!(out, "{}", report.render()).map_err(|e| CliError::Other(e.to_string()))?;
    }
    Ok(())
}

/// `sompi trace summarize <file.jsonl>` — render a recorded execution
/// trace as a human-readable run report.
fn cmd_trace_summarize(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(&[])?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| CliError::Other("usage: sompi trace summarize <file.jsonl>".into()))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Other(format!("{path}: {e}")))?;
    let events = parse_jsonl(&text).map_err(CliError::Other)?;
    write!(out, "{}", RunReport::from_events(&events).render())
        .map_err(|e| CliError::Other(e.to_string()))?;
    Ok(())
}

/// `sompi trace` — summarize (and optionally calibrate against) a market's
/// traces; `sompi trace summarize <file.jsonl>` renders a recorded
/// execution trace instead.
pub fn cmd_trace(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.positional().first().map(String::as_str) == Some("summarize") {
        return cmd_trace_summarize(args, out);
    }
    args.check_known(&["feed", "seed", "hours", "step", "calibrate", "json"])?;
    let market = market_from(args)?;
    let do_cal = args.flag("calibrate");
    writeln!(
        out,
        "{:<28} {:>9} {:>9} {:>9} {:>8}{}",
        "circle group",
        "min $",
        "mean $",
        "max $",
        "samples",
        if do_cal { "   calibration" } else { "" }
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    for id in market.groups().collect::<Vec<_>>() {
        let t = market.trace(id).expect("listed");
        let mut line = format!(
            "{:<28} {:>9.4} {:>9.4} {:>9.4} {:>8}",
            format!("{}@{}", market.instance_type(id).name, id.zone),
            t.min_price(),
            t.mean_price(),
            t.max_price(),
            t.len()
        );
        if do_cal {
            let cal = ec2_market::calibrate::calibrate(t.window(0.0, f64::INFINITY), 4.0);
            line.push_str(&format!(
                "   base ${:.4}, sigma {:.2}, spikes {:.3}/h x{:.1}h",
                cal.config.base_price,
                cal.config.calm_sigma,
                cal.config.spike_rate_per_hour,
                cal.config.spike_duration_mean_hours
            ));
        }
        writeln!(out, "{line}").map_err(|e| CliError::Other(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    fn run(cmd: fn(&Args, &mut dyn Write) -> Result<(), CliError>, a: &[&str]) -> String {
        let mut buf = Vec::new();
        cmd(&args(a), &mut buf).expect("command succeeds");
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn plan_prints_groups_and_model() {
        let out = run(
            cmd_plan,
            &[
                "--hours",
                "100",
                "--repeats",
                "50",
                "--kappa",
                "2",
                "--levels",
                "3",
            ],
        );
        assert!(out.contains("plan ("), "{out}");
        assert!(out.contains("E[cost]"), "{out}");
        assert!(out.contains("fallback"), "{out}");
    }

    #[test]
    fn plan_json_is_valid() {
        let out = run(
            cmd_plan,
            &[
                "--hours",
                "100",
                "--repeats",
                "50",
                "--kappa",
                "1",
                "--levels",
                "2",
                "--json",
            ],
        );
        let doc: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert!(doc["expected_cost"].as_f64().unwrap() > 0.0);
        assert!(doc["plan"]["groups"].is_array());
    }

    #[test]
    fn replay_reports_rates() {
        let out = run(
            cmd_replay,
            &[
                "--hours",
                "200",
                "--repeats",
                "50",
                "--kappa",
                "1",
                "--levels",
                "2",
                "--replicas",
                "8",
            ],
        );
        assert!(out.contains("met"), "{out}");
        assert!(out.contains("x baseline"), "{out}");
    }

    #[test]
    fn replay_with_faults_is_deterministic() {
        let flags = [
            "--hours",
            "200",
            "--repeats",
            "50",
            "--kappa",
            "1",
            "--levels",
            "2",
            "--replicas",
            "4",
            "--faults",
            "storm=0.02x0.5,ckpt-fail=0.05",
            "--fault-seed",
            "7",
        ];
        let first = run(cmd_replay, &flags);
        let second = run(cmd_replay, &flags);
        assert_eq!(first, second);
        assert!(first.contains("met"), "{first}");
    }

    #[test]
    fn adaptive_replay_reports_windows() {
        let out = run(
            cmd_replay,
            &[
                "--adaptive",
                "--hours",
                "200",
                "--repeats",
                "50",
                "--kappa",
                "1",
                "--levels",
                "2",
                "--replicas",
                "4",
                "--window",
                "2",
            ],
        );
        assert!(out.contains("adaptive sompi"), "{out}");
        assert!(out.contains("windows:"), "{out}");
    }

    #[test]
    fn warmstart_ablation_flags_do_not_change_adaptive_results() {
        // The warm-start layers are exactness-preserving: the full
        // Monte-Carlo report must be bit-identical with them ablated.
        let base = [
            "--adaptive",
            "--hours",
            "200",
            "--repeats",
            "50",
            "--kappa",
            "1",
            "--levels",
            "2",
            "--replicas",
            "3",
            "--window",
            "2",
            "--json",
        ];
        let warm = run(cmd_replay, &base);
        let mut flags = base.to_vec();
        flags.extend(["--no-warmstart", "--no-bucket-reuse"]);
        let cold = run(cmd_replay, &flags);
        let wdoc: serde_json::Value = serde_json::from_str(&warm).unwrap();
        let cdoc: serde_json::Value = serde_json::from_str(&cold).unwrap();
        assert_eq!(wdoc["cost"], cdoc["cost"]);
        assert_eq!(wdoc["time"], cdoc["time"]);
        assert_eq!(wdoc["mean_windows"], cdoc["mean_windows"]);
        assert_eq!(wdoc["warmstart"], serde_json::json!(true));
        assert_eq!(cdoc["warmstart"], serde_json::json!(false));
    }

    #[test]
    fn kernel_caps_ablation_does_not_change_the_plan() {
        // The caps-memoized SoA kernel is exactness-preserving: the full
        // plan report must be bit-identical with it ablated.
        let base = [
            "--hours",
            "200",
            "--repeats",
            "50",
            "--kappa",
            "2",
            "--levels",
            "3",
            "--json",
        ];
        let fast = run(cmd_plan, &base);
        let mut flags = base.to_vec();
        flags.push("--no-kernel-caps");
        let scalar = run(cmd_plan, &flags);
        assert_eq!(fast, scalar, "--no-kernel-caps changed the plan report");
    }

    #[test]
    fn warmstart_flags_require_adaptive_mode() {
        let mut buf = Vec::new();
        let err = cmd_replay(&args(&["--hours", "100", "--no-warmstart"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("--adaptive"), "{err}");
    }

    #[test]
    fn bad_fault_spec_is_rejected() {
        let mut buf = Vec::new();
        let err = cmd_replay(
            &args(&["--hours", "100", "--faults", "gremlins=1.0"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--faults"), "{err}");
    }

    #[test]
    fn sweep_prints_requested_points() {
        let out = run(
            cmd_sweep,
            &[
                "--hours",
                "200",
                "--repeats",
                "50",
                "--kappa",
                "1",
                "--levels",
                "2",
                "--replicas",
                "4",
                "--points",
                "3",
            ],
        );
        // Header + 3 data lines.
        assert_eq!(out.lines().count(), 4, "{out}");
    }

    #[test]
    fn trace_lists_groups_and_calibrates() {
        let out = run(cmd_trace, &["--hours", "100", "--calibrate"]);
        assert!(out.contains("m1.small@us-east-1a"), "{out}");
        assert!(out.contains("base $"), "{out}");
        assert_eq!(out.lines().count(), 16); // header + 15 groups
    }

    #[test]
    fn replay_trace_out_writes_jsonl_and_summarize_renders_it() {
        let dir = std::env::temp_dir().join(format!("sompi-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let p = path.to_str().unwrap();
        run(
            cmd_replay,
            &[
                "--hours",
                "200",
                "--repeats",
                "50",
                "--kappa",
                "1",
                "--levels",
                "2",
                "--replicas",
                "4",
                "--trace-out",
                p,
                "--trace-level",
                "detail",
            ],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let events = parse_jsonl(&text).expect("schema-valid trace");
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"PlanSearchStarted"), "{kinds:?}");
        assert!(kinds.contains(&"PlanSelected"), "{kinds:?}");
        assert!(kinds.contains(&"RunCompleted"), "{kinds:?}");

        let report = run(cmd_trace, &["summarize", p]);
        assert!(report.contains("plan search"), "{report}");
        assert!(report.contains("outcome"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_trace_level_is_rejected() {
        let mut buf = Vec::new();
        let err = cmd_plan(
            &args(&[
                "--hours",
                "60",
                "--trace-out",
                "/tmp/x.jsonl",
                "--trace-level",
                "loud",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown trace level"), "{err}");
    }

    #[test]
    fn summarize_requires_a_path() {
        let mut buf = Vec::new();
        let err = cmd_trace(&args(&["summarize"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("usage"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let mut buf = Vec::new();
        let err = cmd_plan(&args(&["--nope", "1"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("unknown flag"));
    }

    #[test]
    fn unknown_strategy_is_rejected() {
        let mut buf = Vec::new();
        let err = cmd_plan(&args(&["--strategy", "magic", "--hours", "60"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("unknown strategy"));
    }

    #[test]
    fn timeline_is_rejected_for_adaptive_replays() {
        let mut buf = Vec::new();
        let err = cmd_replay(
            &args(&[
                "--adaptive",
                "--timeline",
                "--hours",
                "200",
                "--repeats",
                "50",
                "--kappa",
                "1",
                "--levels",
                "2",
                "--replicas",
                "2",
                "--window",
                "2",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--timeline"), "{err}");
    }
}
