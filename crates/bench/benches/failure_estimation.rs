//! Failure-rate estimation cost: the exhaustive first-passage estimator
//! and the paper's G-sample Monte-Carlo variant over varying history
//! lengths, plus the launch-delay precomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec2_market::failure::FailureEstimator;
use ec2_market::tracegen::{TraceGenConfig, ZoneVolatility};

fn bench_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("failure_rate_exact");
    for hours in [24.0, 48.0, 96.0] {
        let trace =
            TraceGenConfig::preset(0.03, ZoneVolatility::Volatile).generate(hours, 1.0 / 12.0, 7);
        let est = FailureEstimator::from_window(trace.window(0.0, f64::INFINITY));
        g.bench_with_input(BenchmarkId::from_parameter(hours as u32), &est, |b, est| {
            b.iter(|| est.failure_rate_exact(std::hint::black_box(0.05), 24))
        });
    }
    g.finish();

    let trace =
        TraceGenConfig::preset(0.03, ZoneVolatility::Volatile).generate(48.0, 1.0 / 12.0, 7);
    let est = FailureEstimator::from_window(trace.window(0.0, f64::INFINITY));

    let mut g = c.benchmark_group("failure_rate_sampled");
    for samples in [100usize, 1000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            b.iter(|| est.failure_rate_sampled(std::hint::black_box(0.05), 24, n, 1))
        });
    }
    g.finish();

    c.bench_function("expected_launch_delay", |b| {
        b.iter(|| est.expected_launch_delay(std::hint::black_box(0.028)))
    });
    c.bench_function("expected_spot_price_table_build", |b| {
        b.iter(|| {
            ec2_market::failure::ExpectedSpotPrice::from_window(trace.window(0.0, f64::INFINITY))
        })
    });
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
