//! Trace-replay throughput: single-plan replays and the parallel
//! Monte-Carlo driver (the paper repeats its simulation one million times;
//! this measures what a million costs us).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use replay::montecarlo::MonteCarlo;
use replay::PlanRunner;
use sompi_bench::{build_problem, npb_workload, paper_market, planning_view, LOOSE};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn bench_replay(c: &mut Criterion) {
    let market = paper_market(27182, 300.0);
    let profile = npb_workload(mpi_sim::npb::NpbKernel::Bt);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);
    let plan = Sompi {
        config: OptimizerConfig {
            kappa: 3,
            bid_levels: 4,
            ..Default::default()
        },
    }
    .plan(&problem, &view, &mut PlanContext::new())
    .expect("plan succeeds");
    let runner = PlanRunner::new(&market, problem.deadline);

    let ctx = replay::ExecContext::new();
    c.bench_function("single_replay", |b| {
        let mut offset = 50.0;
        b.iter(|| {
            offset = if offset > 230.0 { 50.0 } else { offset + 1.7 };
            runner.run(std::hint::black_box(&plan), offset, &ctx)
        })
    });

    let mut g = c.benchmark_group("monte_carlo_batch");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mc = MonteCarlo {
                    replicas: 256,
                    seed: 11,
                    offset_min: 48.0,
                    offset_max: 260.0,
                    threads,
                };
                b.iter(|| mc.run_plan(&market, &plan, problem.deadline, &ctx))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
