//! Expected-cost evaluator throughput: the `O(2^K · K · T)` decomposition
//! versus group count and horizon length. This is the optimizer's inner
//! loop, executed ~10^4–10^6 times per planning decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec2_market::instance::InstanceTypeId;
use ec2_market::market::CircleGroupId;
use ec2_market::zone::AvailabilityZone;
use sompi_core::cost::{evaluate, GroupAssessment};
use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

fn assessment(exec: f64, survival: f64, horizon: usize) -> GroupAssessment {
    let group = CircleGroup {
        id: CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a),
        instances: 32,
        exec_hours: exec,
        ckpt_overhead_hours: 0.02,
        recovery_hours: 0.1,
    };
    GroupAssessment::from_parts(
        group,
        GroupDecision {
            bid: 0.1,
            ckpt_interval: exec / 8.0,
        },
        0.03,
        survival,
        vec![(1.0 - survival) / horizon as f64; horizon],
        0.2,
    )
}

fn od() -> OnDemandOption {
    OnDemandOption {
        instance_type: InstanceTypeId(4),
        instances: 4,
        exec_hours: 2.0,
        unit_price: 2.0,
        recovery_hours: 0.1,
    }
}

fn bench_evaluate(c: &mut Criterion) {
    let odo = od();
    let mut g = c.benchmark_group("evaluate_by_group_count");
    for k in [1usize, 2, 3, 4, 6] {
        let groups: Vec<_> = (0..k)
            .map(|i| assessment(3.0 + i as f64 * 0.5, 0.6, 8))
            .collect();
        let refs: Vec<&GroupAssessment> = groups.iter().collect();
        g.bench_with_input(BenchmarkId::from_parameter(k), &refs, |b, refs| {
            b.iter(|| evaluate(std::hint::black_box(refs), &odo))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("evaluate_by_horizon");
    for t in [4usize, 16, 48, 96] {
        let groups: Vec<_> = (0..3).map(|_| assessment(t as f64, 0.6, t)).collect();
        let refs: Vec<&GroupAssessment> = groups.iter().collect();
        g.bench_with_input(BenchmarkId::from_parameter(t), &refs, |b, refs| {
            b.iter(|| evaluate(std::hint::black_box(refs), &odo))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_evaluate);
criterion_main!(benches);
