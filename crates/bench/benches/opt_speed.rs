//! Optimizer search-cost benchmarks — the Section 4.2.2 claims.
//!
//! The paper's example: a naive search over (bids × intervals)^K would be
//! ~10^16 evaluations; dimension reduction (F = φ(P)) brings it to
//! (bids)^K per subset and the logarithmic grid to (log₂ H)^K ≈ 2000.
//! These benchmarks measure the real cost of each level on the same
//! problem, plus the κ scaling and the parallel-search speedup.
//!
//! The search-level and κ groups pin `threads: 1` so they keep measuring
//! the algorithmic cost of each ablation; `parallel_scaling` varies the
//! worker count on the paper-scale configuration (κ = 4, 12 bid levels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sompi_bench::{build_problem, npb_workload, paper_market, planning_view, LOOSE};
use sompi_core::twolevel::{GridKind, OptimizerConfig, TwoLevelOptimizer};

fn bench_search_levels(c: &mut Criterion) {
    let market = paper_market(31415, 160.0);
    let profile = npb_workload(mpi_sim::npb::NpbKernel::Bt);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);

    let mut g = c.benchmark_group("two_level_search");
    g.sample_size(10);

    // Full method: φ(P) + logarithmic grid.
    g.bench_function("phi_log_grid", |b| {
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 5,
            threads: 1,
            ..Default::default()
        };
        b.iter(|| TwoLevelOptimizer::new(&problem, &view, cfg).optimize())
    });
    // Ablation 1: drop Theorem 1, search intervals on a grid too.
    g.bench_function("interval_grid_5", |b| {
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 5,
            interval_grid: Some(5),
            threads: 1,
            ..Default::default()
        };
        b.iter(|| TwoLevelOptimizer::new(&problem, &view, cfg).optimize())
    });
    // Ablation 2: uniform bid grid of the same size.
    g.bench_function("phi_uniform_grid", |b| {
        let cfg = OptimizerConfig {
            kappa: 2,
            bid_levels: 5,
            grid: GridKind::Uniform,
            threads: 1,
            ..Default::default()
        };
        b.iter(|| TwoLevelOptimizer::new(&problem, &view, cfg).optimize())
    });
    g.finish();

    let mut g = c.benchmark_group("kappa_scaling");
    g.sample_size(10);
    for kappa in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(kappa), &kappa, |b, &kappa| {
            let cfg = OptimizerConfig {
                kappa,
                bid_levels: 3,
                threads: 1,
                ..Default::default()
            };
            b.iter(|| TwoLevelOptimizer::new(&problem, &view, cfg).optimize())
        });
    }
    g.finish();

    // Paper-scale search (κ = 4, 12 bid levels) at increasing worker
    // counts. The result is bit-identical at every setting; only the
    // wall clock should move.
    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = OptimizerConfig {
                    kappa: 4,
                    bid_levels: 12,
                    threads,
                    ..Default::default()
                };
                b.iter(|| TwoLevelOptimizer::new(&problem, &view, cfg).optimize())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_search_levels);
criterion_main!(benches);
