//! Discrete-event MPI simulator throughput: event-queue operations and
//! full program executions at increasing rank counts and superstep
//! resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec2_market::instance::InstanceCatalog;
use mpi_sim::checkpoint::CheckpointSpec;
use mpi_sim::cluster::ClusterSpec;
use mpi_sim::engine::EventQueue;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::program::Program;
use mpi_sim::sim::Simulation;
use mpi_sim::storage::S3Store;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                // Scatter times deterministically.
                let t = ((i.wrapping_mul(2654435761)) % 10_000) as f64;
                q.schedule(t, i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e as u64);
            }
            acc
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let catalog = InstanceCatalog::paper_2014();

    let mut g = c.benchmark_group("des_full_run");
    g.sample_size(10);
    for (procs, steps) in [(64u32, 100u32), (128, 100), (128, 400)] {
        let ty = catalog.by_name("m1.medium").unwrap();
        let profile = NpbKernel::Bt.profile(NpbClass::B, procs).repeated(10);
        let cluster = ClusterSpec::for_processes(&catalog, ty, procs);
        let ckpt = CheckpointSpec::for_app(&catalog, &cluster, &profile, S3Store::paper_2014());
        let program = Program::from_profile(&profile, steps);
        let sim = Simulation::new(&catalog, cluster, ckpt);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}r_{steps}s")),
            &(program, sim),
            |b, (program, sim)| b.iter(|| sim.run(std::hint::black_box(program), Some(0.05), None)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_simulation);
criterion_main!(benches);
