//! Evaluation-kernel + search-pool ablation (DESIGN.md §14).
//!
//! Two studies:
//!
//! * **kernel** — single-candidate microbenchmark of
//!   [`evaluate_with_scratch`] at k ∈ {4, 8, 12} assessed groups, across
//!   the three kernel modes:
//!   1. `scalar`    — the original per-mask loop (`--no-kernel-caps`),
//!      O(2^k · k · T) bucket scans per evaluation,
//!   2. `caps-memo` — the k×k caps table memoizes
//!      `expected_billed_capped(w*)` per (group, winner-wall) pair,
//!      O(k² · T + 2^k · k),
//!   3. `caps+SoA`  — the same table plus contiguous struct-of-arrays
//!      packing of the per-mask scalars (the default).
//!
//!   Every mode must return bit-identical `Evaluation`s; only nanoseconds
//!   per evaluation may change. Timings are best-of-5.
//!
//! * **replan** — per-window re-plan wall-clock over sliding views of the
//!   drifting stress market at `threads = 4`, with the work dispatched
//!   onto scoped threads (spawned per search, the old path) versus the
//!   persistent [`SearchPool`] (spawned once, the server/adaptive path).
//!   The pool never decides the work split, so plans are bit-identical;
//!   only the per-replan thread-spawn overhead disappears.
//!
//! `--smoke` shrinks both studies for a fast CI sanity check of the same
//! identity assertions. The full run asserts the ≥5× kernel speedup at
//! k = 8 and writes the measured baseline to `BENCH_kernel.json`.

use mpi_sim::npb::{NpbClass, NpbKernel};
use sompi_bench::{
    build_problem, npb_workload, repeat_to_hours, stress_market, Table, HISTORY_HOURS, PROCESSES,
    TIGHT,
};
use sompi_core::adaptive::PlanContext;
use sompi_core::cost::{
    evaluate_with_scratch, EvalScratch, Evaluation, GroupAssessment, KernelMode,
};
use sompi_core::model::GroupDecision;
use sompi_core::pool::SearchPool;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::view::MarketView;
use sompi_core::Problem;
use std::time::Instant;

/// Candidate sizes for the kernel microbenchmark (the optimizer's κ caps
/// real candidates well below 12; the top end stresses the 2^k walk).
const KS: [usize; 3] = [4, 8, 12];

/// Window stride of the replan study, hours.
const WINDOW_STEP_HOURS: f64 = 2.0;

/// Build `k` distinct assessed groups against `view`. Candidates are
/// cycled with laddered bids and checkpoint intervals so every slot is a
/// genuine, distinct assessment (different walls, different bucket
/// tables) — the caps table gets no accidental dedup help. Bids span the
/// historical price range: low rungs carry dense failure mass (the
/// scalar kernel's per-mask bucket scans actually run), high rungs
/// mostly survive — the mix a real candidate carries.
fn assessments(problem: &Problem, view: &MarketView, k: usize) -> Vec<GroupAssessment> {
    (0..k)
        .map(|i| {
            let group = problem.candidates[i % problem.candidates.len()];
            let lo = view.min_price(group.id).expect("known group");
            let hi = view.max_bid(group.id).expect("known group");
            let frac = 0.05 + 0.90 * i as f64 / (k - 1) as f64;
            let decision = GroupDecision {
                bid: lo + (hi - lo) * frac,
                ckpt_interval: 0.5 + 0.25 * i as f64,
            };
            GroupAssessment::assess(group, decision, view)
                .expect("candidate groups are drawn from the view's market")
                .expect("bids at or above the historical minimum always launch")
        })
        .collect()
}

/// Best-of-`trials` nanoseconds per call of `evaluate_with_scratch` on a
/// warmed scratch, plus the (trial-invariant) evaluation itself.
fn bench_mode(
    refs: &[&GroupAssessment],
    od: &sompi_core::model::OnDemandOption,
    mode: KernelMode,
    repeats: u32,
    trials: u32,
) -> (Evaluation, f64) {
    let mut scratch = EvalScratch::with_mode(mode);
    let eval = evaluate_with_scratch(refs, od, &mut scratch); // warm the buffers
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let started = Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(evaluate_with_scratch(
                std::hint::black_box(refs),
                od,
                &mut scratch,
            ));
        }
        let nanos = started.elapsed().as_nanos() as f64 / f64::from(repeats);
        best = best.min(nanos);
    }
    (eval, best)
}

fn assert_eval_bits(a: &Evaluation, b: &Evaluation, label: &str) {
    let pairs = [
        (a.expected_cost, b.expected_cost),
        (a.expected_time, b.expected_time),
        (a.p_all_fail, b.p_all_fail),
        (a.expected_spot_cost, b.expected_spot_cost),
        (a.expected_od_cost, b.expected_od_cost),
    ];
    for (i, (x, y)) in pairs.iter().enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: evaluation field {i} diverged ({x} vs {y}) — kernel exactness violated"
        );
    }
}

/// One k-row of the kernel study.
struct KernelRow {
    k: usize,
    buckets: usize,
    scalar_ns: f64,
    memo_ns: f64,
    soa_ns: f64,
}

impl KernelRow {
    fn memo_speedup(&self) -> f64 {
        self.scalar_ns / self.memo_ns
    }
    fn soa_speedup(&self) -> f64 {
        self.scalar_ns / self.soa_ns
    }
}

fn run_kernel_study(smoke: bool) -> Vec<KernelRow> {
    // A long workload (≈24 h of productive execution) so the failure
    // function spans a realistic bucket horizon T — that is the axis the
    // caps table collapses from 2^k·k scans to k².
    let market = stress_market(20140816, 200.0);
    let profile = repeat_to_hours(NpbKernel::Bt.profile(NpbClass::B, PROCESSES), 24.0);
    let problem = build_problem(&market, &profile, TIGHT);
    let view = MarketView::from_market(&market, 0.0, HISTORY_HOURS);
    let od = *problem.baseline();

    println!("kernel study: single-candidate evaluate_with_scratch, best-of-5");
    let mut t = Table::new([
        "k",
        "masks",
        "T (buckets)",
        "scalar (ns)",
        "caps-memo (ns)",
        "caps+SoA (ns)",
        "memo speedup",
        "SoA speedup",
    ]);
    let mut rows = Vec::new();
    for &k in &KS {
        let assessed = assessments(&problem, &view, k);
        let refs: Vec<&GroupAssessment> = assessed.iter().collect();
        let buckets = assessed.iter().map(|a| a.fail_buckets.len()).max().unwrap();
        // Scalar at k = 12 walks 4096 masks × 12 bucket scans per call;
        // scale repeats so every arm's trial stays in tens of milliseconds.
        let repeats = match (smoke, k) {
            (true, _) => 3,
            (false, 4) => 2_000,
            (false, 8) => 300,
            _ => 20,
        };
        let (scalar_eval, scalar_ns) = bench_mode(&refs, &od, KernelMode::Scalar, repeats, 5);
        let (memo_eval, memo_ns) = bench_mode(&refs, &od, KernelMode::CapsMemo, repeats, 5);
        let (soa_eval, soa_ns) = bench_mode(&refs, &od, KernelMode::CapsSoa, repeats, 5);
        assert_eval_bits(&scalar_eval, &memo_eval, &format!("k={k} caps-memo"));
        assert_eval_bits(&scalar_eval, &soa_eval, &format!("k={k} caps+SoA"));

        let row = KernelRow {
            k,
            buckets,
            scalar_ns,
            memo_ns,
            soa_ns,
        };
        t.row([
            format!("{k}"),
            format!("{}", 1u64 << k),
            format!("{buckets}"),
            format!("{scalar_ns:.0}"),
            format!("{memo_ns:.0}"),
            format!("{soa_ns:.0}"),
            format!("{:.2}x", row.memo_speedup()),
            format!("{:.2}x", row.soa_speedup()),
        ]);
        rows.push(row);
    }
    t.print();
    println!();
    rows
}

/// One replan arm: mean per-window re-plan seconds (best mean of
/// `passes`) and the per-window plans of the last pass.
struct ReplanArm {
    name: &'static str,
    mean_secs: f64,
    plans: Vec<sompi_core::model::Plan>,
}

fn run_replan_arm(
    name: &'static str,
    problem: &Problem,
    views: &[MarketView],
    cfg: OptimizerConfig,
    pool: Option<&SearchPool>,
    passes: u32,
) -> ReplanArm {
    let mut best = f64::INFINITY;
    let mut plans = Vec::new();
    for _ in 0..passes {
        plans.clear();
        let started = Instant::now();
        for view in views {
            let mut ctx = PlanContext::new();
            if let Some(pool) = pool {
                ctx = ctx.with_pool(pool);
            }
            let opt = TwoLevelOptimizer::new(problem, view, cfg)
                .optimize_with(&mut ctx)
                .expect("stress-market candidates are drawn from the view's market");
            plans.push(opt.plan);
        }
        best = best.min(started.elapsed().as_secs_f64() / views.len() as f64);
    }
    ReplanArm {
        name,
        mean_secs: best,
        plans,
    }
}

fn run_replan_study(smoke: bool) -> Vec<ReplanArm> {
    let windows = if smoke { 4 } else { 40 };
    let passes = if smoke { 1 } else { 5 };
    // A deliberately light search (the adaptive loop's per-window shape):
    // here the fixed per-replan cost — thread spawn included — is a
    // visible fraction of the wall, which is exactly what the pool removes.
    let cfg = OptimizerConfig {
        kappa: 1,
        bid_levels: 2,
        threads: 4,
        ..Default::default()
    };
    let horizon = HISTORY_HOURS + 2.0 + windows as f64 * WINDOW_STEP_HOURS;
    let market = stress_market(20140815, horizon + 10.0);
    let problem = build_problem(&market, &npb_workload(NpbKernel::Bt), TIGHT);
    let views: Vec<MarketView> = (0..windows)
        .map(|i| {
            let now = HISTORY_HOURS + 1.0 + i as f64 * WINDOW_STEP_HOURS;
            MarketView::from_market(&market, now - HISTORY_HOURS, HISTORY_HOURS)
        })
        .collect();

    println!(
        "replan study: {windows} sliding windows, threads = {}, best mean of {passes} pass(es)",
        cfg.threads
    );
    let pool = SearchPool::new(cfg.threads);
    let scoped = run_replan_arm("scoped", &problem, &views, cfg, None, passes);
    let pooled = run_replan_arm("pooled", &problem, &views, cfg, Some(&pool), passes);
    assert_eq!(
        scoped.plans, pooled.plans,
        "the pool changed a selected plan — exactness violated"
    );

    let mut t = Table::new(["dispatch", "replan (ms/window)", "identical"]);
    for arm in [&scoped, &pooled] {
        t.row([
            arm.name.into(),
            format!("{:.3}", arm.mean_secs * 1e3),
            "yes".into(),
        ]);
    }
    t.print();
    println!(
        "pool removes {:.3} ms of per-replan dispatch overhead ({:.1}%)",
        (scoped.mean_secs - pooled.mean_secs) * 1e3,
        100.0 * (scoped.mean_secs - pooled.mean_secs) / scoped.mean_secs
    );
    println!();
    vec![scoped, pooled]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Kernel + pool ablation ({} cores){}",
        cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!();

    let kernel_rows = run_kernel_study(smoke);
    let replan_arms = run_replan_study(smoke);

    println!("(Every arm must match its reference bit-identically: the caps");
    println!(" table keeps the scalar kernel's summation order, the SoA pack");
    println!(" only relocates reads, and the pool never splits the work.)");

    if !smoke {
        let k8 = kernel_rows.iter().find(|r| r.k == 8).expect("k=8 row");
        assert!(
            k8.soa_speedup() >= 5.0,
            "caps+SoA kernel speedup at k=8 is {:.2}x — below the 5x acceptance bar",
            k8.soa_speedup()
        );
        let scoped = &replan_arms[0];
        let pooled = &replan_arms[1];
        let kernel_docs: Vec<serde_json::Value> = kernel_rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "k": r.k,
                    "masks": (1u64 << r.k),
                    "buckets": r.buckets,
                    "scalar_ns_per_eval": r.scalar_ns,
                    "caps_memo_ns_per_eval": r.memo_ns,
                    "caps_soa_ns_per_eval": r.soa_ns,
                    "caps_memo_speedup": r.memo_speedup(),
                    "caps_soa_speedup": r.soa_speedup(),
                })
            })
            .collect();
        let replan_doc = serde_json::json!({
            "windows": 40,
            "threads": 4,
            "scoped_ms_per_window": scoped.mean_secs * 1e3,
            "pooled_ms_per_window": pooled.mean_secs * 1e3,
            "latency_drop_ms": (scoped.mean_secs - pooled.mean_secs) * 1e3,
            "latency_drop_pct": 100.0 * (scoped.mean_secs - pooled.mean_secs) / scoped.mean_secs,
        });
        let doc = serde_json::json!({
            "bench": "ablation_kernel",
            "cores": cores,
            "kernel": kernel_docs,
            "replan": replan_doc,
        });
        let json = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write("BENCH_kernel.json", json + "\n").expect("write BENCH_kernel.json");
        println!("\nwrote BENCH_kernel.json");
    }
}
