//! Extension experiment — how much of the 2014 cost structure is an
//! artifact of hourly billing?
//!
//! AWS moved to per-second billing in 2017. We replay the same plans under
//! both billing models: whole-instance-hours with free provider-terminated
//! partial hours (2014) versus exact-duration charging (modern). The
//! out-of-bid "free partial hour" was a famous spot-market subsidy —
//! bidding low and getting reclaimed before the hour boundary could make
//! compute nearly free, and the optimizer's checkpoint/bid choices
//! implicitly leaned on it.

use ec2_market::billing::BillingModel;
use mpi_sim::npb::NpbKernel;
use replay::PlanRunner;
use sompi_bench::{
    build_problem, monte_carlo, npb_workload, paper_market, planning_view, Table, LOOSE, TIGHT,
};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{MaratheOpt, OnDemandOnly, Sompi, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = paper_market(20140816, 400.0);
    let sompi = Sompi {
        config: OptimizerConfig {
            kappa: 3,
            bid_levels: 10,
            ..Default::default()
        },
    };
    let strategies: Vec<(&str, &dyn Strategy)> = vec![
        ("On-demand", &OnDemandOnly),
        ("Marathe-Opt", &MaratheOpt),
        ("SOMPI", &sompi),
    ];

    println!("Billing-model ablation: 2014 hourly vs modern per-second\n");
    for (dl_name, headroom) in [("loose", LOOSE), ("tight", TIGHT)] {
        let mut t = Table::new([
            "strategy",
            "app",
            "hourly $",
            "per-second $",
            "hourly premium",
        ]);
        for kernel in [NpbKernel::Bt, NpbKernel::Ft] {
            let profile = npb_workload(kernel);
            let problem = build_problem(&market, &profile, headroom);
            let view = planning_view(&market);
            for (name, strat) in &strategies {
                let plan = strat
                    .plan(&problem, &view, &mut PlanContext::new())
                    .expect("plan succeeds");
                let mc = monte_carlo(&market, problem.deadline + 6.0, 4321);
                let ctx = replay::ExecContext::new();
                let hourly = {
                    let runner = PlanRunner::new(&market, problem.deadline);
                    mc.evaluate(|s| runner.run(&plan, s, &ctx))
                        .expect("replay succeeds")
                };
                let exact = {
                    let runner = PlanRunner::new(&market, problem.deadline)
                        .with_billing(BillingModel::per_second());
                    mc.evaluate(|s| runner.run(&plan, s, &ctx))
                        .expect("replay succeeds")
                };
                t.row([
                    name.to_string(),
                    format!("{kernel}"),
                    format!("{:.2}", hourly.cost.mean),
                    format!("{:.2}", exact.cost.mean),
                    format!(
                        "{:+.0}%",
                        (hourly.cost.mean / exact.cost.mean - 1.0) * 100.0
                    ),
                ]);
            }
        }
        println!("{dl_name} deadline:");
        t.print();
        println!();
    }
    println!("Short executions are quantized up by hourly billing (positive premium);");
    println!("plans that die out-of-bid mid-hour enjoy the 2014 free-partial-hour");
    println!("subsidy (negative premium). Per-second billing removes both effects.");
}
