//! Table 2 — normalized execution time comparison for Marathe-Opt and
//! SOMPI under loose and tight deadlines (1.0 = Baseline Time, the fastest
//! on-demand execution).
//!
//! Expected shape (paper): both methods sit well above 1.0 under the loose
//! deadline (they trade time for money, up to ≈1.4×) and hug the deadline
//! (≈1.04–1.05×) under the tight one; the two methods are similar.

use mpi_sim::npb::NpbKernel;
use sompi_bench::{
    build_problem, evaluate_strategy, normalized, npb_workload, paper_market, Table, LOOSE, TIGHT,
};
use sompi_core::baselines::{MaratheOpt, Sompi, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = paper_market(20140806, 400.0);
    let sompi = Sompi {
        config: OptimizerConfig {
            kappa: 4,
            bid_levels: 10,
            ..Default::default()
        },
    };

    println!("Table 2 — normalized execution time (1.0 = Baseline Time)\n");
    let mut t = Table::new(["deadline", "method", "BT", "SP", "LU", "FT", "IS", "BTIO"]);
    for (dl_name, headroom) in [("Loose", LOOSE), ("Tight", TIGHT)] {
        for (mname, strat) in [
            ("Marathe-Opt", &MaratheOpt as &dyn Strategy),
            ("SOMPI", &sompi as &dyn Strategy),
        ] {
            let mut cells = vec![dl_name.to_string(), mname.to_string()];
            for kernel in NpbKernel::ALL {
                let profile = npb_workload(kernel);
                let problem = build_problem(&market, &profile, headroom);
                let r = evaluate_strategy(strat, &problem, &market, 2000);
                let (_, nt) = normalized(&r, &problem);
                cells.push(format!("{nt:.2}"));
            }
            t.row(cells);
        }
    }
    t.print();
    println!("\nDeadline bounds: loose = 1.50, tight = 1.05 × Baseline Time.");
    println!("(Normalized times at or below the bound mean the deadline was met on average.)");
}
