//! Trace-index ablation — the replay hot path with the sparse-table
//! `TraceIndex` on (default) vs off (`--no-trace-index` semantics), plus
//! the raw query layer in isolation.
//!
//! Three studies, each asserting bit-identical answers before reporting
//! wall-clock:
//!
//! 1. `queries` — `first_passage_above` + `launch_time` microbenchmark on
//!    one long trace: O(n) scans vs O(log n) descent over the sparse
//!    table.
//! 2. `histograms` — window→`PriceHistogram` construction: per-sample
//!    binning vs the `PrefixHistogram` merge-tree ranks.
//! 3. `mc-replay` — the paper's Section 5 experiment shape (Monte-Carlo
//!    replay of a planned execution from random start offsets), scaled
//!    toward the paper's one-million replicas. The speedup ratio is
//!    per-replica and therefore scale-invariant; the table also reports
//!    both configurations extrapolated to 1M replicas.
//!
//! Timing is best-of-5 (`--smoke`: best-of-1 with shrunk sizes for CI).
//! The full run writes the measured baseline to `BENCH_replay.json`.

use ec2_market::index::{TraceIndex, TraceQuery};
use ec2_market::market::CircleGroupId;
use ec2_market::trace::SpotTrace;
use ec2_market::zone::AvailabilityZone;
use mpi_sim::npb::{NpbClass, NpbKernel};
use replay::{ExecContext, MonteCarlo};
use sompi_bench::{build_problem, paper_market, planning_view, repeat_to_hours, Table, LOOSE};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{SpotInf, Strategy};
use std::time::Instant;

/// Best-of-N wall-clock of `f`, returning the last value for identity
/// checks.
fn time_best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        let v = f();
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("at least one iteration ran"))
}

struct Study {
    name: &'static str,
    work: String,
    naive_secs: f64,
    indexed_secs: f64,
}

impl Study {
    fn speedup(&self) -> f64 {
        self.naive_secs / self.indexed_secs
    }
}

/// Study 1: the two O(log n) query families against their O(n) scans.
fn query_study(trace: &SpotTrace, queries: usize, iters: usize) -> (Study, f64) {
    let (build_secs, ix) = time_best_of(iters, || TraceIndex::build(trace));
    let duration = trace.duration();
    let max_price = trace.max_price();
    // Deterministic low-discrepancy grid of (start, bid) pairs; the bid
    // range deliberately includes never-crossed and never-launchable
    // levels so both descent directions hit their worst cases.
    let run = |q: TraceQuery<'_>| {
        let mut deaths = 0u64;
        let mut launches = 0u64;
        for i in 0..queries {
            let start = (i as f64 * 0.618_033_988_75 * duration) % duration;
            let bid = max_price * (0.05 + 1.05 * ((i % 97) as f64 / 97.0));
            if let Some(t) = q.first_passage_above(start, bid) {
                deaths = deaths.wrapping_add(t.to_bits());
            }
            if let Some(t) = q.launch_time(start, bid, duration) {
                launches = launches.wrapping_add(t.to_bits());
            }
        }
        (deaths, launches)
    };
    let (naive_secs, naive_sum) = time_best_of(iters, || run(TraceQuery::new(trace, None)));
    let (indexed_secs, indexed_sum) =
        time_best_of(iters, || run(TraceQuery::new(trace, Some(&ix))));
    assert_eq!(
        naive_sum, indexed_sum,
        "indexed queries diverged from the naive scans"
    );
    (
        Study {
            name: "queries",
            work: format!("{queries} query pairs, {} samples", trace.len()),
            naive_secs,
            indexed_secs,
        },
        build_secs,
    )
}

/// Study 2: window histograms from the merge tree vs per-sample binning.
fn histogram_study(trace: &SpotTrace, windows: usize, window_hours: f64, iters: usize) -> Study {
    let ix = TraceIndex::build(trace);
    let q = TraceQuery::new(trace, Some(&ix));
    let hi = trace.max_price() * 1.01;
    let duration = trace.duration();
    let naive = || {
        let mut total = 0u64;
        for w in 0..windows {
            let start = (w as f64 * 7.31) % (duration * 0.5);
            let h = ec2_market::histogram::PriceHistogram::from_window(
                trace.window(start, window_hours),
                0.0,
                hi,
                16,
            );
            total = total.wrapping_add(h.total());
        }
        total
    };
    let fast = || {
        let mut total = 0u64;
        for w in 0..windows {
            let start = (w as f64 * 7.31) % (duration * 0.5);
            let h = q.histogram(start, window_hours, 0.0, hi, 16);
            total = total.wrapping_add(h.total());
        }
        total
    };
    let (naive_secs, a) = time_best_of(iters, naive);
    let (indexed_secs, b) = time_best_of(iters, fast);
    assert_eq!(a, b, "indexed histograms diverged from per-sample binning");
    Study {
        name: "histograms",
        work: format!("{windows} windows x {window_hours:.0} h x 16 bins"),
        naive_secs,
        indexed_secs,
    }
}

/// Study 3: end-to-end Monte-Carlo replay, index on vs off. The scenario
/// is deliberately the scan-heavy regime the one-million-replica
/// experiment lives in: a long production run (the workload is repeated
/// to `exec_hours` of baseline execution) under the paper's bid-infinity
/// baseline, whose uncrossable bid lets the group ride out the whole
/// window — so proving "the price never crossed the bid" forces the
/// naive path to walk every sample of a minute-resolution trace. (A plan
/// that dies within a few samples answers the same query trivially with
/// or without the index.)
fn mc_study(replicas: usize, hours: f64, step_hours: f64, exec_hours: f64, iters: usize) -> Study {
    let catalog = ec2_market::instance::InstanceCatalog::paper_2014();
    let profile = ec2_market::tracegen::MarketProfile::paper_2014(&catalog);
    let generator = ec2_market::tracegen::TraceGenerator::new(profile, 20140806);
    let indexed = ec2_market::market::SpotMarket::generate(catalog, &generator, hours, step_hours);
    let naive = indexed.clone().without_trace_index();
    let workload = repeat_to_hours(NpbKernel::Bt.profile(NpbClass::B, 128), exec_hours);
    let view = planning_view(&indexed);
    let problem = build_problem(&indexed, &workload, LOOSE);
    let plan = SpotInf
        .plan(&problem, &view, &mut PlanContext::new())
        .expect("plan succeeds");
    let mc = MonteCarlo::builder()
        .replicas(replicas)
        .seed(7)
        .offsets(48.0, (hours - problem.deadline - 2.0).max(49.0))
        .threads(0)
        .build();
    let ctx = ExecContext::new();
    // The index is built once per market and shared across replicas and
    // worker threads; pre-building keeps the timed region to pure replay
    // (build cost is reported by the query study).
    indexed.build_indexes();
    let (indexed_secs, r_ix) = time_best_of(iters, || {
        mc.run_plan(&indexed, &plan, problem.deadline, &ctx)
            .unwrap()
    });
    let (naive_secs, r_nv) = time_best_of(iters, || {
        mc.run_plan(&naive, &plan, problem.deadline, &ctx).unwrap()
    });
    assert_eq!(
        r_ix, r_nv,
        "Monte-Carlo aggregates diverged between index on/off"
    );
    assert!(
        r_ix.spot_finish_rate > 0.5,
        "the study must exercise the surviving-group scan path"
    );
    Study {
        name: "mc-replay",
        work: format!(
            "{replicas} replicas, {:.0} h run, {:.0}k samples/trace",
            problem.deadline,
            hours / step_hours / 1000.0
        ),
        naive_secs,
        indexed_secs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let iters = if smoke { 1 } else { 5 };
    let (queries, windows, window_hours, replicas, mc_hours, mc_step, exec_hours) = if smoke {
        (20_000, 2_000, 48.0, 500, 300.0, 1.0 / 12.0, 12.0)
    } else {
        (500_000, 20_000, 480.0, 20_000, 1000.0, 1.0 / 60.0, 240.0)
    };
    println!(
        "Trace-index ablation ({} cores, best-of-{iters}){}",
        cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!();

    let query_hours = if smoke { 300.0 } else { 1200.0 };
    let market = paper_market(20140806, query_hours);
    let trace = market
        .trace(CircleGroupId::new(
            market.catalog().by_name("m1.medium").unwrap(),
            AvailabilityZone::UsEast1a,
        ))
        .unwrap();

    let (q_study, build_secs) = query_study(trace, queries, iters);
    let h_study = histogram_study(trace, windows, window_hours, iters);
    let m_study = mc_study(replicas, mc_hours, mc_step, exec_hours, iters);

    let mut t = Table::new(["study", "work", "naive (s)", "indexed (s)", "speedup"]);
    for s in [&q_study, &h_study, &m_study] {
        t.row([
            s.name.into(),
            s.work.clone(),
            format!("{:.4}", s.naive_secs),
            format!("{:.4}", s.indexed_secs),
            format!("{:.1}x", s.speedup()),
        ]);
    }
    t.print();
    println!();
    println!("index build (one-time, per trace): {build_secs:.5} s");
    let per_replica_ix = m_study.indexed_secs / replicas as f64;
    let per_replica_nv = m_study.naive_secs / replicas as f64;
    println!(
        "mc-replay extrapolated to the paper's 1M replicas: naive {:.1} s, indexed {:.1} s",
        per_replica_nv * 1e6,
        per_replica_ix * 1e6
    );
    println!(
        "(Aggregation streams through at most {} chunk partials, so peak",
        replay::montecarlo::MAX_CHUNKS
    );
    println!(" memory is independent of the replica count.)");

    if !smoke {
        let study_doc = |s: &Study| {
            serde_json::json!({
                "name": s.name,
                "work": s.work.as_str(),
                "naive_secs": s.naive_secs,
                "indexed_secs": s.indexed_secs,
                "speedup": s.speedup(),
            })
        };
        let mc_doc = serde_json::json!({
            "name": m_study.name,
            "work": m_study.work.as_str(),
            "naive_secs": m_study.naive_secs,
            "indexed_secs": m_study.indexed_secs,
            "speedup": m_study.speedup(),
            "extrapolated_1m_naive_secs": per_replica_nv * 1e6,
            "extrapolated_1m_indexed_secs": per_replica_ix * 1e6,
        });
        let doc = serde_json::json!({
            "bench": "ablation_replay_index",
            "cores": cores,
            "best_of": iters,
            "index_build_secs": build_secs,
            "studies": [study_doc(&q_study), study_doc(&h_study), mc_doc],
        });
        let json = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write("BENCH_replay.json", json + "\n").expect("write BENCH_replay.json");
        println!("\nwrote BENCH_replay.json");
    }
}
