//! Figure 2 — spot price histograms of m1.medium in us-east-1a over four
//! consecutive days, demonstrating the short-horizon stability of the
//! price *distribution* that the whole estimation pipeline relies on.

use ec2_market::histogram::PriceHistogram;
use ec2_market::market::CircleGroupId;
use ec2_market::zone::AvailabilityZone;
use sompi_bench::{paper_market, Table};

fn main() {
    let market = paper_market(20140802, 96.0);
    let ty = market.catalog().by_name("m1.medium").unwrap();
    let query = market
        .query(CircleGroupId::new(ty, AvailabilityZone::UsEast1a))
        .unwrap();

    let hi = query.max_price() * 1.01;
    let bins = 16;
    // Served from the trace's PrefixHistogram — bit-identical to
    // PriceHistogram::from_window over the same windows.
    let days: Vec<PriceHistogram> = (0..4)
        .map(|d| query.histogram(d as f64 * 24.0, 24.0, 0.0, hi, bins))
        .collect();

    println!("Figure 2: m1.medium us-east-1a price histograms, 4 consecutive days\n");
    let mut t = Table::new(["bin center ($)", "day 1", "day 2", "day 3", "day 4"]);
    let series: Vec<Vec<(f64, f64)>> = days.iter().map(|h| h.series()).collect();
    #[allow(clippy::needless_range_loop)] // four parallel series share the index
    for b in 0..bins {
        t.row([
            format!("{:.4}", series[0][b].0),
            format!("{:.3}", series[0][b].1),
            format!("{:.3}", series[1][b].1),
            format!("{:.3}", series[2][b].1),
            format!("{:.3}", series[3][b].1),
        ]);
    }
    t.print();

    println!("\nTotal-variation distance between consecutive days (0 = identical):");
    let mut stable = true;
    for d in 0..3 {
        let tv = days[d].total_variation(&days[d + 1]);
        println!("  day {} vs day {}: {:.3}", d + 1, d + 2, tv);
        stable &= tv < 0.35;
    }
    println!("\nDistribution stable across days (all TV < 0.35): {stable}");
    println!(
        "(The paper uses this stability to justify estimating failure rates from recent history.)"
    );
}
