//! Policy arena — every strategy from the paper and the related
//! literature, head to head on equal terms.
//!
//! One deterministic pass over a grid of synthetic markets × fault
//! plans: each [`Policy`](sompi_core::policy::Policy) plans against the
//! same 48-hour view and is Monte-Carlo-replayed from the same replica
//! offsets. The roster pits SOMPI against On-demand, No-FT (no fault
//! tolerance, Alourani-style), Ckpt-Only (Spot-on-style checkpointing),
//! App-Centric (availability-targeted bidding) and Deadline-Hedge
//! (deadline-tightened re-planning).
//!
//! Expected shape (paper §5): SOMPI and the bid-aware rivals beat
//! On-demand by 60%+ in calm markets; under injected storms the
//! single-mechanism policies lose their lead to deadline misses and
//! re-run costs while SOMPI's replication + fallback holds.
//!
//! `--smoke` runs a seconds-fast configuration for CI.

use sompi_core::pool::SearchPool;
use sompi_obs::NullRecorder;
use sompi_server::proto::PlanRequest;
use sompi_server::tournament::{run_tournament, TournamentConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        TournamentConfig {
            market_hours: 120.0,
            replicas: 3,
            plan: PlanRequest {
                repeats: 50,
                kappa: 1,
                bid_levels: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    } else {
        TournamentConfig {
            market_seeds: vec![21, 22, 23],
            market_hours: 400.0,
            replicas: sompi_bench::replicas() as u32,
            fault_specs: vec![None, Some("storm=0.02x0.5,ckpt-fail=0.05".into())],
            plan: PlanRequest {
                kappa: 2,
                bid_levels: 8,
                ..Default::default()
            },
            ..Default::default()
        }
    };

    // One resident worker pool serves every policy's search.
    let pool = SearchPool::new(0);
    let report = run_tournament(&cfg, &NullRecorder, Some(&pool)).expect("tournament runs");
    println!(
        "Policy arena — {} policies x {} markets x {} fault plans{}",
        cfg.policies.len(),
        cfg.market_seeds.len(),
        cfg.fault_specs.len(),
        if smoke { " (smoke)" } else { "" }
    );
    print!("{}", report.render());
}
