//! Section 5.2 parameter study — κ, the number of circle groups used
//! simultaneously.
//!
//! Expected shape (paper): beyond κ = 4 the monetary cost barely improves
//! while optimization overhead explodes (κ = 10 cost them 2× Baseline
//! Time in overhead; κ = 4 kept it under 1%).

use mpi_sim::npb::NpbKernel;
use replay::PlanRunner;
use sompi_bench::{
    build_problem, monte_carlo, npb_workload, planning_view, stress_market, Table, LOOSE,
};
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use std::time::Instant;

fn main() {
    let market = stress_market(20140811, 400.0);
    let profile = npb_workload(NpbKernel::Bt);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);

    println!("Kappa study (BT, loose deadline)\n");
    let mut t = Table::new([
        "kappa",
        "norm. cost",
        "plan evals",
        "opt time (s)",
        "overhead %BT",
    ]);
    for kappa in 1..=6 {
        // Small grid: the study isolates the C(K,k)·L^k growth in κ;
        // deep grids at κ = 6 would take hours.
        let cfg = OptimizerConfig {
            kappa,
            bid_levels: 4,
            ..Default::default()
        };
        let started = Instant::now();
        let opt = TwoLevelOptimizer::new(&problem, &view, cfg)
            .optimize()
            .expect("problem candidates come from the same market");
        let elapsed = started.elapsed().as_secs_f64();
        let mc = monte_carlo(&market, problem.deadline + 6.0, 7000);
        let runner = PlanRunner::new(&market, problem.deadline);
        let ctx = replay::ExecContext::new();
        let r = mc
            .evaluate(|start| runner.run(&opt.plan, start, &ctx))
            .expect("replay succeeds");
        t.row([
            format!("{kappa}"),
            format!("{:.3}", r.cost.mean / problem.baseline_cost_billed()),
            format!("{}", opt.evaluations_performed),
            format!("{elapsed:.2}"),
            format!("{:.2}%", elapsed / 3600.0 / problem.baseline_time() * 100.0),
        ]);
    }
    t.print();
    println!("\n(Paper default: kappa = 4 — past it, cost improvement is marginal");
    println!(" while the search space grows by C(K,k) * levels^k.)");
}
