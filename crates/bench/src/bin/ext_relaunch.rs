//! Extension experiment — persistent spot requests vs the paper's model.
//!
//! The paper's execution model ends a circle group at its first out-of-bid
//! event; recovery goes to on-demand. A *persistent* request instead waits
//! out the price excursion and resumes from the latest checkpoint. This
//! experiment replays the same single-group decisions both ways on the
//! volatile stress market and reports cost, completion venue and deadline
//! behaviour — quantifying how much the 2015 model leaves on the table
//! against what later became standard spot practice.

use mpi_sim::npb::{NpbClass, NpbKernel};
use replay::relaunch::run_persistent;
use replay::{Finisher, PlanRunner};
use sompi_bench::{
    build_problem, planning_view, repeat_to_hours, replicas, stress_market, Table, LOOSE, PROCESSES,
};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{SompiNoReplication, Strategy};
use sompi_core::model::Plan;
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = stress_market(20140817, 500.0);
    let profile = repeat_to_hours(NpbKernel::Bt.profile(NpbClass::B, PROCESSES), 8.0);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);

    // A single-group plan (the relaunch policy is per-group).
    let strat = SompiNoReplication {
        config: OptimizerConfig {
            kappa: 1,
            bid_levels: 10,
            ..Default::default()
        },
    };
    let plan = strat
        .plan(&problem, &view, &mut PlanContext::new())
        .expect("plan succeeds");
    let Some((group, decision)) = plan.groups.first().copied() else {
        println!("optimizer chose pure on-demand; nothing to compare");
        return;
    };
    let ty = market.instance_type(group.id);
    println!(
        "group: {} @ {} x{}, bid ${:.4}, F = {:.2} h, T_i = {:.2} h, deadline {:.2} h\n",
        ty.name,
        group.id.zone,
        group.instances,
        decision.bid,
        decision.ckpt_interval,
        group.exec_hours,
        problem.deadline
    );

    let n = replicas().min(64);
    let runner = PlanRunner::new(&market, problem.deadline);
    let single_plan = Plan {
        groups: vec![(group, decision)],
        on_demand: plan.on_demand,
    };

    let mut rows: Vec<(&str, Vec<f64>, usize, usize, f64)> = Vec::new();
    for mode in ["paper (die once)", "persistent relaunch"] {
        let mut costs = Vec::new();
        let mut spot_finishes = 0usize;
        let mut met = 0usize;
        let mut incarnations = 0.0;
        for i in 0..n {
            let start = 50.0 + i as f64 * (400.0 / n as f64);
            if mode.starts_with("paper") {
                let o = runner
                    .run(&single_plan, start, &replay::ExecContext::new())
                    .expect("replay succeeds");
                costs.push(o.total_cost);
                spot_finishes += matches!(o.finisher, Finisher::Spot(_)) as usize;
                met += o.met_deadline as usize;
                incarnations += 1.0;
            } else {
                let o = run_persistent(
                    &market,
                    &group,
                    &decision,
                    &single_plan.on_demand,
                    start,
                    problem.deadline,
                    &replay::ExecContext::new(),
                )
                .expect("relaunch succeeds");
                costs.push(o.total_cost);
                spot_finishes += matches!(o.finisher, Finisher::Spot(_)) as usize;
                met += o.met_deadline as usize;
                incarnations += o.incarnations as f64;
            }
        }
        rows.push((mode, costs, spot_finishes, met, incarnations / n as f64));
    }

    let mut t = Table::new([
        "policy",
        "mean cost $",
        "norm.",
        "spot-finish",
        "dl met",
        "avg lives",
    ]);
    for (mode, costs, spot, met, lives) in &rows {
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        t.row([
            mode.to_string(),
            format!("{mean:.2}"),
            format!("{:.3}", mean / problem.baseline_cost_billed()),
            format!("{:.0}%", *spot as f64 / n as f64 * 100.0),
            format!("{:.0}%", *met as f64 / n as f64 * 100.0),
            format!("{lives:.1}"),
        ]);
    }
    t.print();
    println!("\nRelaunching turns on-demand recoveries back into cheap spot time at");
    println!("the price of waiting out excursions — an extension the paper's");
    println!("adaptive algorithm approximates with fresh circle groups per window.");
}
