//! Figure 7 — monetary cost vs deadline requirement for BT, FT and BTIO.
//!
//! The x-axis is the deadline headroom over Baseline Time (the paper plots
//! `Deadline − Baseline Time`); loose/tight of the other experiments are
//! 0.50/0.05. Expected shape: cost staircases downward as the deadline
//! loosens, with jumps where the optimizer switches to a cheaper (slower)
//! instance type — the arrows in the paper's figure. BT reaches ≈70% off,
//! FT saturates around +10% headroom at ≈50% off (cc2.8xlarge is optimal
//! for communication-bound codes regardless), BTIO saturates by +20%.

use mpi_sim::npb::NpbKernel;
use sompi_bench::{
    build_problem, evaluate_strategy, npb_workload, paper_market, planning_view, Table,
};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = paper_market(20140808, 400.0);
    let sompi = Sompi {
        config: OptimizerConfig {
            kappa: 4,
            bid_levels: 10,
            ..Default::default()
        },
    };

    for kernel in [NpbKernel::Bt, NpbKernel::Ft, NpbKernel::Btio] {
        let profile = npb_workload(kernel);
        println!("\nFigure 7 — {kernel}: normalized cost vs deadline headroom\n");
        let mut t = Table::new(["headroom", "norm. cost", "dl met", "plan (types used)"]);
        let mut prev_types = String::new();
        for pct in [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50] {
            let problem = build_problem(&market, &profile, pct);
            let r = evaluate_strategy(&sompi, &problem, &market, 4000);
            // Re-derive the plan to describe the chosen types.
            let view = planning_view(&market);
            let plan = sompi
                .plan(&problem, &view, &mut PlanContext::new())
                .expect("plan succeeds");
            let mut types: Vec<String> = plan
                .groups
                .iter()
                .map(|(g, _)| market.instance_type(g.id).name.clone())
                .collect();
            types.sort();
            types.dedup();
            let od_name = market
                .catalog()
                .get(plan.on_demand.instance_type)
                .name
                .clone();
            let desc = format!("spot[{}] od[{}]", types.join(","), od_name);
            let marker = if desc != prev_types {
                "  <- switch"
            } else {
                ""
            };
            prev_types = desc.clone();
            t.row([
                format!("+{:.0}%", pct * 100.0),
                format!("{:.3}", r.cost.mean / problem.baseline_cost_billed()),
                format!("{:.0}%", r.deadline_rate * 100.0),
                format!("{desc}{marker}"),
            ]);
        }
        t.print();
    }
    println!("\n(The '<- switch' markers are the paper's arrows: points where the");
    println!(" optimizer changes the instance type mix as the deadline loosens.)");
}
