//! Section 5.2 parameter study — `T_m`, the adaptive optimization window.
//!
//! Uses the long (~12 h) BT workload on the drifting stress market so
//! several windows fit into one execution and the estimated distribution
//! actually goes stale. Expected shape (paper): cost is minimized around
//! `T_m ≈ 15 h`; much smaller windows pay re-planning churn, much larger
//! ones chase stale price distributions.

use mpi_sim::npb::{NpbClass, NpbKernel};
use replay::adaptive_exec::AdaptiveRunner;
use sompi_bench::{
    build_problem, monte_carlo, repeat_to_hours, stress_market, Table, LOOSE, PROCESSES,
};
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = stress_market(20140812, 600.0);
    let profile = repeat_to_hours(NpbKernel::Bt.profile(NpbClass::B, PROCESSES), 12.0);
    let problem = build_problem(&market, &profile, LOOSE);
    println!(
        "Optimization-window study (BT x long, baseline {:.1} h, loose deadline)\n",
        problem.baseline_time()
    );

    let mut t = Table::new(["T_m (h)", "norm. cost", "cost CV", "windows", "dl met"]);
    for window in [2.0, 5.0, 10.0, 15.0, 20.0, 30.0] {
        let cfg = AdaptiveConfig {
            window_hours: window,
            history_hours: 48.0,
            optimizer: OptimizerConfig {
                kappa: 2,
                bid_levels: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let runner = AdaptiveRunner::new(&market, cfg);
        let mc = monte_carlo(&market, problem.deadline + 10.0, 8000);
        let mut windows_total = 0u64;
        let windows_cell = std::sync::atomic::AtomicU64::new(0);
        let ctx = replay::ExecContext::new();
        let r = mc
            .evaluate(|start| {
                let out = runner.run(&problem, start, &ctx)?;
                windows_cell.fetch_add(out.windows as u64, std::sync::atomic::Ordering::Relaxed);
                Ok(out.run)
            })
            .expect("replay succeeds");
        windows_total += windows_cell.load(std::sync::atomic::Ordering::Relaxed);
        t.row([
            format!("{window:.0}"),
            format!("{:.3}", r.cost.mean / problem.baseline_cost_billed()),
            format!("{:.2}", r.cost.cv()),
            format!("{:.1}", windows_total as f64 / r.cost.n as f64),
            format!("{:.0}%", r.deadline_rate * 100.0),
        ]);
    }
    t.print();
    println!("\n(Paper: T_m ~= 15 h is the sweet spot.)");
}
