//! Figure 4 — changing trends of the failure-rate function `f_i(P, t)` and
//! the expected spot price `S_i(P)` with the bid price, for m1.small and
//! c3.xlarge in us-east-1a.
//!
//! The paper's takeaways, which the logarithmic bid search exploits: both
//! functions are sensitive to the bid but not uniformly — the failure rate
//! falls steeply at low bids and saturates, while `S_i(P)` rises slowly.

use ec2_market::market::CircleGroupId;
use ec2_market::zone::AvailabilityZone;
use sompi_bench::{paper_market, Table, HISTORY_HOURS};

fn main() {
    let market = paper_market(20140803, 200.0);
    println!("Figure 4: failure rate f(P, t<=12h) and expected spot price S(P) vs bid\n");

    for name in ["m1.small", "c3.xlarge"] {
        let ty = market.catalog().by_name(name).unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let est = market
            .try_estimator(id, 0.0, HISTORY_HOURS)
            .expect("group generated above");
        let h = est.max_price();

        println!("{name}@us-east-1a (H = {h:.4}):");
        let mut t = Table::new([
            "bid/H",
            "bid ($)",
            "P[fail<=12h]",
            "S(P) ($)",
            "launch frac",
        ]);
        let mut prev_fail = 1.0f64;
        let mut monotone = true;
        for i in 1..=10 {
            let bid = h * i as f64 / 10.0;
            let f = est.failure_rate_exact(bid, 12);
            let s = est.expected_spot_price().mean_below(bid);
            let lf = est.expected_spot_price().launch_fraction(bid);
            monotone &= f.prob_fail() <= prev_fail + 1e-9;
            prev_fail = f.prob_fail();
            t.row([
                format!("{:.1}", i as f64 / 10.0),
                format!("{bid:.4}"),
                format!("{:.3}", f.prob_fail()),
                s.map(|v| format!("{v:.4}")).unwrap_or_else(|| "n/a".into()),
                format!("{lf:.3}"),
            ]);
        }
        t.print();
        println!("  failure rate monotone non-increasing in bid: {monotone}");

        // Resolution argument for the logarithmic grid: the failure rate
        // changes fastest near the plateau price, far below H (the spike
        // peak) — halving steps put their resolution exactly there.
        let q = |frac: f64| est.failure_rate_exact(h * frac, 12).prob_fail();
        println!(
            "  P[fail] at H/64, H/16, H/4, H: {:.2}, {:.2}, {:.2}, {:.2}\n",
            q(1.0 / 64.0),
            q(1.0 / 16.0),
            q(0.25),
            q(1.0)
        );
    }
}
