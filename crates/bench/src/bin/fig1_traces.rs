//! Figure 1 — spot price variation of m1.medium and m1.large in
//! us-east-1a / us-east-1b over three days.
//!
//! Prints an hourly-downsampled series per (type, zone) plus the summary
//! statistics behind the paper's qualitative observations: huge temporal
//! spikes in us-east-1a, a flat us-east-1b, and type-dependent volatility.

use ec2_market::market::CircleGroupId;
use ec2_market::zone::AvailabilityZone;
use sompi_bench::{paper_market, Table};

fn main() {
    let market = paper_market(20140801, 72.0);
    let cat = market.catalog();
    let pairs = [
        ("m1.medium", AvailabilityZone::UsEast1a),
        ("m1.medium", AvailabilityZone::UsEast1b),
        ("m1.large", AvailabilityZone::UsEast1a),
        ("m1.large", AvailabilityZone::UsEast1b),
    ];

    println!("Figure 1: spot price variation over 72 hours (USD/hour)\n");
    let mut summary = Table::new(["type@zone", "min", "mean", "max", "max/min", "od price"]);
    for (name, zone) in pairs {
        let ty = cat.by_name(name).unwrap();
        let tr = market.trace(CircleGroupId::new(ty, zone)).unwrap();
        summary.row([
            format!("{name}@{zone}"),
            format!("{:.4}", tr.min_price()),
            format!("{:.4}", tr.mean_price()),
            format!("{:.4}", tr.max_price()),
            format!("{:.1}x", tr.max_price() / tr.min_price()),
            format!("{:.3}", cat.get(ty).on_demand_price),
        ]);
    }
    summary.print();

    println!("\nHourly series (first 72 samples):");
    for (name, zone) in pairs {
        let ty = cat.by_name(name).unwrap();
        let tr = market.trace(CircleGroupId::new(ty, zone)).unwrap();
        let series: Vec<String> = (0..72)
            .map(|h| format!("{:.3}", tr.price_at(h as f64)))
            .collect();
        println!("\n{name}@{zone}:");
        for chunk in series.chunks(12) {
            println!("  {}", chunk.join(" "));
        }
    }

    // The qualitative claims of Section 2, checked mechanically.
    let medium = cat.by_name("m1.medium").unwrap();
    let large = cat.by_name("m1.large").unwrap();
    let m1a = market
        .trace(CircleGroupId::new(medium, AvailabilityZone::UsEast1a))
        .unwrap();
    let m1b = market
        .trace(CircleGroupId::new(medium, AvailabilityZone::UsEast1b))
        .unwrap();
    let l1a = market
        .trace(CircleGroupId::new(large, AvailabilityZone::UsEast1a))
        .unwrap();
    println!("\nPaper observations reproduced:");
    println!(
        "  m1.medium@us-east-1a spikes to {:.2} (>= 8x base): {}",
        m1a.max_price(),
        m1a.max_price() >= 8.0 * m1a.min_price()
    );
    println!(
        "  m1.medium@us-east-1b stays flat (max/min < 2): {}",
        m1b.max_price() / m1b.min_price() < 2.0
    );
    println!(
        "  m1.large@us-east-1a calmer than m1.medium@us-east-1a: {}",
        l1a.max_price() / l1a.min_price() < m1a.max_price() / m1a.min_price()
    );
}
