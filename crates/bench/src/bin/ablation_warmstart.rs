//! Warm-start ablation — per-window re-plan wall-clock across a
//! many-window adaptive study on the drifting stress market (DESIGN.md
//! §12).
//!
//! Two studies, four configurations each:
//!
//! * **windows** — a sliding 48 h view stepped every 2 h across the
//!   non-stationary stress market (the adaptive loop's steady state,
//!   where every window really re-searches a drifted view),
//! * **replan storm** — repeated re-plans against the *same* view (what
//!   failure-triggered replans inside one window do); this is where the
//!   bucket-table layer pays, since the history digest is unchanged.
//!
//! The configurations ablate the warm-start layers independently:
//!
//! 1. `cold`    — no carried state (every search from scratch),
//! 2. `+tables` — per-`(group, bid)` bucket tables reused across searches,
//! 3. `+seed`   — previous plan seeds the incumbent bound and the
//!    hot-first subset order,
//! 4. `warm`    — both layers (the adaptive loop's default).
//!
//! Every configuration must select a plan bit-identical to the cold
//! reference in **every** window — the layers are exactness-preserving,
//! only re-plan wall-clock may change. The per-search warm telemetry
//! (seeded incumbents, table reuse counters) is read back from the
//! optimizer's own `WarmStartApplied` trace events.
//!
//! `--smoke` shrinks the study (fewer windows, smaller search) for a fast
//! CI sanity check of the same identity assertions. The full run writes
//! the measured baseline to `BENCH_warmstart.json`.

use mpi_sim::npb::NpbKernel;
use sompi_bench::{build_problem, npb_workload, stress_market, Table, HISTORY_HOURS};
use sompi_core::adaptive::PlanContext;
use sompi_core::model::Plan;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::view::MarketView;
use sompi_core::warmstart::WarmStart;
use sompi_core::Problem;
use sompi_obs::{Event, RingRecorder, TraceLevel};
use std::time::Instant;

/// Window stride of the sliding-view study, hours (a small `T_m`, so the
/// market drifts a little — but measurably — between re-plans).
const WINDOW_STEP_HOURS: f64 = 2.0;

/// The warm-start ablation ladder, cold first.
fn ladder() -> Vec<(&'static str, Option<WarmStart>)> {
    vec![
        ("cold", None),
        ("+tables", Some(WarmStart::new().with_plan_carryover(false))),
        ("+seed", Some(WarmStart::new().with_table_reuse(false))),
        ("warm", Some(WarmStart::new())),
    ]
}

/// One arm's measurements over a window sequence.
struct ArmResult {
    name: &'static str,
    /// Wall-clock of every re-plan, in window order.
    window_secs: Vec<f64>,
    /// Windows whose search started from a projected incumbent seed.
    seeded: u64,
    /// Bucket-table entries served from / missing the warm cache.
    tables_reused: u64,
    tables_rebuilt: u64,
    /// The selected plan per window (for the bit-identity assertion).
    plans: Vec<Plan>,
}

impl ArmResult {
    fn total_secs(&self) -> f64 {
        self.window_secs.iter().sum()
    }

    /// Mean re-plan seconds once the warm state exists (window 0 is cold
    /// in every arm — there is nothing to carry yet).
    fn steady_secs(&self) -> f64 {
        let tail = &self.window_secs[1..];
        tail.iter().sum::<f64>() / tail.len().max(1) as f64
    }
}

/// Replay one arm over the given views, carrying its warm state across
/// searches exactly like the adaptive loop does.
fn run_arm(
    name: &'static str,
    problem: &Problem,
    views: &[MarketView],
    cfg: OptimizerConfig,
    mut warm: Option<WarmStart>,
) -> ArmResult {
    let mut out = ArmResult {
        name,
        window_secs: Vec::with_capacity(views.len()),
        seeded: 0,
        tables_reused: 0,
        tables_rebuilt: 0,
        plans: Vec::with_capacity(views.len()),
    };
    for view in views {
        let r = RingRecorder::new(TraceLevel::Summary, 64);
        let started = Instant::now();
        let mut ctx = PlanContext::new().with_recorder(&r);
        if let Some(w) = warm.as_mut() {
            ctx = ctx.with_warm(w);
        }
        let opt = TwoLevelOptimizer::new(problem, view, cfg)
            .optimize_with(&mut ctx)
            .expect("stress-market candidates are drawn from the view's market");
        out.window_secs.push(started.elapsed().as_secs_f64());
        for ev in r.take() {
            if let Event::WarmStartApplied {
                seeded,
                tables_reused,
                tables_rebuilt,
                ..
            } = ev
            {
                out.seeded += seeded as u64;
                out.tables_reused += tables_reused;
                out.tables_rebuilt += tables_rebuilt;
            }
        }
        out.plans.push(opt.plan);
    }
    out
}

/// Run all four arms over `views`, assert per-window bit-identity against
/// the cold reference, print the table, and return the arm results.
fn run_study(
    label: &str,
    problem: &Problem,
    views: &[MarketView],
    cfg: OptimizerConfig,
) -> Vec<ArmResult> {
    println!("{label}");
    let mut t = Table::new([
        "config",
        "total (s)",
        "steady/window (s)",
        "speedup",
        "seeded",
        "tbl reused",
        "tbl rebuilt",
        "identical",
    ]);
    let mut arms = Vec::new();
    for (name, warm) in ladder() {
        let arm = run_arm(name, problem, views, cfg, warm);
        arms.push(arm);
    }
    let cold_steady = arms[0].steady_secs();
    for arm in &arms {
        let identical = arm.plans == arms[0].plans;
        t.row([
            arm.name.into(),
            format!("{:.3}", arm.total_secs()),
            format!("{:.4}", arm.steady_secs()),
            format!("{:.2}x", cold_steady / arm.steady_secs()),
            format!("{}/{}", arm.seeded, views.len()),
            format!("{}", arm.tables_reused),
            format!("{}", arm.tables_rebuilt),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(
            identical,
            "warm-start arm {:?} changed a selected plan — exactness violated",
            arm.name
        );
    }
    t.print();
    println!();
    arms
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let windows = if smoke { 8 } else { 50 };
    // Search-dominated configuration: the Theorem 1 interval-grid
    // ablation multiplies per-candidate work so the odometer walk (what
    // the seed bound prunes) dominates fixed setup, as in the heavy
    // `ablation_prune` study. Smoke keeps the search small.
    let cfg = if smoke {
        OptimizerConfig {
            kappa: 2,
            bid_levels: 5,
            ..Default::default()
        }
    } else {
        OptimizerConfig {
            interval_grid: Some(12),
            ..Default::default()
        }
    };
    println!(
        "Warm-start ablation (kappa = {}, {} bid levels, {} windows, {} cores){}",
        cfg.kappa,
        cfg.bid_levels,
        windows,
        cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!();

    // The drifting stress market: base price levels re-roll every ~50 h,
    // so consecutive windows see genuinely different markets — the warm
    // seed must stay exact under drift, not just under repetition.
    let horizon = HISTORY_HOURS + 2.0 + windows as f64 * WINDOW_STEP_HOURS;
    let market = stress_market(20140815, horizon + 10.0);
    let profile = npb_workload(NpbKernel::Bt);
    let problem = build_problem(&market, &profile, sompi_bench::TIGHT);

    // Sliding views, one per window, exactly as the adaptive loop builds
    // them: the most recent HISTORY_HOURS ending at each window boundary.
    let sliding: Vec<MarketView> = (0..windows)
        .map(|i| {
            let now = HISTORY_HOURS + 1.0 + i as f64 * WINDOW_STEP_HOURS;
            MarketView::from_market(&market, now - HISTORY_HOURS, HISTORY_HOURS)
        })
        .collect();
    let window_arms = run_study(
        "windows study: sliding 48 h views over the drifting market",
        &problem,
        &sliding,
        cfg,
    );

    // Replan storm: the same view re-searched repeatedly, as happens when
    // out-of-bid kills force several re-plans inside one window. The
    // history digest never drifts here, so the bucket tables hit on every
    // search after the first.
    let storm_views: Vec<MarketView> = (0..windows.min(12))
        .map(|_| MarketView::from_market(&market, 1.0, HISTORY_HOURS))
        .collect();
    let storm_arms = run_study(
        "replan storm: repeated re-plans against one unchanged view",
        &problem,
        &storm_views,
        cfg,
    );

    println!("(Every row must match the cold reference bit-identically: the");
    println!(" incumbent seed, hot-first order, and bucket-table reuse are");
    println!(" exactness-preserving; only re-plan wall-clock changes.)");

    if !smoke {
        let warm = &window_arms[3];
        let cold = &window_arms[0];
        let arm_doc = |a: &ArmResult, reference: f64| {
            serde_json::json!({
                "name": a.name,
                "total_secs": a.total_secs(),
                "steady_per_window_secs": a.steady_secs(),
                "speedup": reference / a.steady_secs(),
                "seeded_windows": a.seeded,
                "tables_reused": a.tables_reused,
                "tables_rebuilt": a.tables_rebuilt,
            })
        };
        let study_doc = |name: &str, work: String, arms: &[ArmResult]| {
            let reference = arms[0].steady_secs();
            serde_json::json!({
                "name": name,
                "work": work,
                "arms": arms.iter().map(|a| arm_doc(a, reference)).collect::<Vec<_>>(),
            })
        };
        let windows_doc = study_doc(
            "windows",
            format!("{windows} sliding 48 h views, drifting stress market"),
            &window_arms,
        );
        let storm_doc = study_doc(
            "replan-storm",
            format!("{} re-plans, one unchanged view", storm_views.len()),
            &storm_arms,
        );
        let doc = serde_json::json!({
            "bench": "ablation_warmstart",
            "cores": cores,
            "windows": windows,
            "window_step_hours": WINDOW_STEP_HOURS,
            "studies": [windows_doc, storm_doc],
            "warm_speedup": cold.steady_secs() / warm.steady_secs(),
        });
        let json = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write("BENCH_warmstart.json", json + "\n").expect("write BENCH_warmstart.json");
        println!("\nwrote BENCH_warmstart.json");
    }
}
