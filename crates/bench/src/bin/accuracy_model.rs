//! Section 5.4.1 — accuracy of the cost model (Formula 1) against
//! Monte-Carlo trace replay.
//!
//! For a spread of plans (different strategies and deadlines) we compare
//! the model's `E[Cost]` with the replayed mean cost. The paper reports
//! 20% of relative differences under 5%, 40% between 5% and 10%, and a
//! maximum of ~15%; the model is useful for *ranking* plans, not for
//! dollar-exact prediction.

use mpi_sim::npb::NpbKernel;
use replay::PlanRunner;
use sompi_bench::{
    build_problem, monte_carlo, npb_workload, paper_market, planning_view, Table, LOOSE, TIGHT,
};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Marathe, MaratheOpt, Sompi, SpotAvg, Strategy};
use sompi_core::cost::evaluate_plan;
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = paper_market(20140814, 400.0);
    let view = planning_view(&market);
    let sompi = Sompi {
        config: OptimizerConfig {
            kappa: 3,
            bid_levels: 10,
            ..Default::default()
        },
    };
    let strategies: Vec<(&str, &dyn Strategy)> = vec![
        ("Marathe", &Marathe),
        ("Marathe-Opt", &MaratheOpt),
        ("Spot-Avg", &SpotAvg),
        ("SOMPI", &sompi),
    ];

    println!("Cost-model accuracy: Formula 1 vs Monte-Carlo replay\n");
    let mut t = Table::new([
        "app", "deadline", "strategy", "model $", "replay $", "rel diff",
    ]);
    let mut diffs = Vec::new();
    for kernel in [NpbKernel::Bt, NpbKernel::Ft, NpbKernel::Btio] {
        let profile = npb_workload(kernel);
        for (dname, headroom) in [("loose", LOOSE), ("tight", TIGHT)] {
            let problem = build_problem(&market, &profile, headroom);
            for (sname, strat) in &strategies {
                let plan = strat
                    .plan(&problem, &view, &mut PlanContext::new())
                    .expect("plan succeeds");
                let Ok(Some(eval)) = evaluate_plan(&plan, &view) else {
                    continue;
                };
                // Replay close to the training window: the paper's premise
                // is that the price distribution is stable over a *short*
                // horizon, so the model is only claimed valid there.
                let mut mc = monte_carlo(&market, problem.deadline + 6.0, 9000);
                mc.offset_max = mc.offset_min + 72.0;
                let runner = PlanRunner::new(&market, problem.deadline);
                let ctx = replay::ExecContext::new();
                let r = mc
                    .evaluate(|start| runner.run(&plan, start, &ctx))
                    .expect("replay succeeds");
                let rel = (eval.expected_cost - r.cost.mean).abs() / r.cost.mean.max(1e-9);
                diffs.push(rel);
                t.row([
                    format!("{kernel}"),
                    dname.to_string(),
                    sname.to_string(),
                    format!("{:.2}", eval.expected_cost),
                    format!("{:.2}", r.cost.mean),
                    format!("{:.0}%", rel * 100.0),
                ]);
            }
        }
    }
    t.print();
    diffs.sort_by(|a, b| a.total_cmp(b));
    let below = |x: f64| diffs.iter().filter(|d| **d < x).count() as f64 / diffs.len() as f64;
    println!(
        "\nrelative differences: <5%: {:.0}%   5-10%: {:.0}%   max: {:.0}%",
        below(0.05) * 100.0,
        (below(0.10) - below(0.05)) * 100.0,
        diffs.last().unwrap() * 100.0
    );
    println!("(Paper: 20% below 5%, 40% in 5-10%, max ~15%. Differences come from");
    println!(" hourly billing granularity, launch waits, and window-vs-future drift.)");
}
