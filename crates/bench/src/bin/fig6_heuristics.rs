//! Figure 6 — comparison with simple spot heuristics: On-demand, Spot-Inf
//! (infinite bid, no fault tolerance), Spot-Avg (bid = average historical
//! price, no fault tolerance) and SOMPI, averaged per application class.
//!
//! Expected shape (paper): both Spot heuristics beat On-demand; SOMPI
//! beats both (28%/38% under loose, 20%/22% under tight); Spot-Inf has
//! much higher cost *variance* than SOMPI because infinite bids ride
//! through price spikes at full market price.

use mpi_sim::npb::NpbKernel;
use replay::montecarlo::McResult;
use sompi_bench::{
    build_problem, evaluate_strategy, npb_workload, paper_market, Table, LOOSE, TIGHT,
};
use sompi_core::baselines::{OnDemandOnly, Sompi, SpotAvg, SpotInf, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = paper_market(20140807, 400.0);
    let sompi = Sompi {
        config: OptimizerConfig {
            kappa: 4,
            bid_levels: 10,
            ..Default::default()
        },
    };
    let strategies: Vec<(&str, &dyn Strategy)> = vec![
        ("On-demand", &OnDemandOnly),
        ("Spot-Inf", &SpotInf),
        ("Spot-Avg", &SpotAvg),
        ("SOMPI", &sompi),
    ];
    let classes: [(&str, &[NpbKernel]); 3] = [
        (
            "Computation",
            &[NpbKernel::Bt, NpbKernel::Sp, NpbKernel::Lu],
        ),
        ("Communication", &[NpbKernel::Ft, NpbKernel::Is]),
        ("IO", &[NpbKernel::Btio]),
    ];

    for (dl_name, headroom) in [("loose (+50%)", LOOSE), ("tight (+5%)", TIGHT)] {
        println!("\nFigure 6 — normalized cost vs heuristics, {dl_name} deadline\n");
        let mut t = Table::new(["class", "strategy", "norm. cost", "cost CV", "dl met"]);
        let mut class_means: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
        for (cname, kernels) in classes {
            for (si, (sname, strat)) in strategies.iter().enumerate() {
                let mut norm = 0.0;
                let mut cv = 0.0;
                let mut dl = 0.0;
                for kernel in kernels.iter() {
                    let profile = npb_workload(*kernel);
                    let problem = build_problem(&market, &profile, headroom);
                    let r: McResult =
                        evaluate_strategy(*strat, &problem, &market, 3000 + si as u64);
                    norm += r.cost.mean / problem.baseline_cost_billed();
                    cv += r.cost.cv();
                    dl += r.deadline_rate;
                }
                let n = kernels.len() as f64;
                class_means[si].push(norm / n);
                t.row([
                    cname.to_string(),
                    sname.to_string(),
                    format!("{:.3}", norm / n),
                    format!("{:.2}", cv / n),
                    format!("{:.0}%", dl / n * 100.0),
                ]);
            }
        }
        t.print();
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let s = avg(&class_means[3]);
        println!(
            "\nSOMPI vs Spot-Inf: {:.0}% cheaper; vs Spot-Avg: {:.0}% cheaper",
            (1.0 - s / avg(&class_means[1])) * 100.0,
            (1.0 - s / avg(&class_means[2])) * 100.0,
        );
        println!("(Paper: 28%/38% loose, 20%/22% tight; also expect Spot-Inf CV >> SOMPI CV.)");
    }
}
