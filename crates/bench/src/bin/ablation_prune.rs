//! Search-pruning ablation — exhaustive odometer walk vs the
//! exactness-preserving pruning stages, on the stock Figure 5 / Figure 7
//! planner scenarios.
//!
//! Four configurations are timed against the same markets:
//!
//! 1. `exhaustive`    — every pruning stage off (the pre-pruning planner),
//! 2. `+dominance`    — bid-collapse dominance filter only,
//! 3. `+bound(local)` — dominance + branch-and-bound with worker-local
//!    incumbents,
//! 4. `full`          — dominance + branch-and-bound + the shared
//!    incumbent bound (the default configuration).
//!
//! Every configuration must return a plan and evaluation identical to the
//! exhaustive reference — the whole point of the pruning design is that it
//! changes wall-clock, never the optimum. The prune rate is read from the
//! optimizer's own trace events: `PlanSearchStarted.options_dominated`
//! (grid points removed before enumeration) and
//! `PlanSelected.evals_skipped` (odometer positions skipped in-walk).
//!
//! `--smoke` shrinks the search (κ = 2, 5 bid levels, one scenario) for a
//! fast CI sanity check of the same identity assertions.

use mpi_sim::npb::NpbKernel;
use sompi_bench::{build_problem, npb_workload, paper_market, planning_view, Table, LOOSE, TIGHT};
use sompi_core::adaptive::PlanContext;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::{MarketView, Problem};
use sompi_obs::{Event, RingRecorder, TraceLevel};
use std::time::Instant;

/// The pruning-stage ablation ladder, exhaustive first.
fn ladder(base: OptimizerConfig) -> Vec<(&'static str, OptimizerConfig)> {
    vec![
        (
            "exhaustive",
            OptimizerConfig {
                prune_dominance: false,
                prune_bound: false,
                shared_incumbent: false,
                ..base
            },
        ),
        (
            "+dominance",
            OptimizerConfig {
                prune_dominance: true,
                prune_bound: false,
                shared_incumbent: false,
                ..base
            },
        ),
        (
            "+bound(local)",
            OptimizerConfig {
                prune_dominance: true,
                prune_bound: true,
                shared_incumbent: false,
                ..base
            },
        ),
        (
            "full",
            OptimizerConfig {
                prune_dominance: true,
                prune_bound: true,
                shared_incumbent: true,
                ..base
            },
        ),
    ]
}

/// Pruning counters recovered from the optimizer's trace events.
fn prune_counters(recorder: &RingRecorder) -> (u64, u64, u64) {
    let mut dominated = 0;
    let mut skipped = 0;
    let mut evaluations = 0;
    for ev in recorder.take() {
        match ev {
            Event::PlanSearchStarted {
                options_dominated, ..
            } => dominated = options_dominated,
            Event::PlanSelected {
                evaluations: evals,
                evals_skipped,
                ..
            } => {
                evaluations = evals;
                skipped = evals_skipped;
            }
            _ => {}
        }
    }
    (dominated, skipped, evaluations)
}

fn run_study(
    label: &str,
    problem: &Problem,
    view: &MarketView,
    base: OptimizerConfig,
    iters: usize,
) {
    println!("{label}");
    let mut t = Table::new([
        "config",
        "opt time (s)",
        "speedup",
        "plan evals",
        "dominated",
        "skipped",
        "prune rate",
        "identical",
    ]);

    let mut reference = None;
    let mut reference_secs = 0.0;
    for (name, cfg) in ladder(base) {
        // Best-of-N so millisecond-scale searches are not drowned in
        // scheduler noise; every iteration returns the same plan.
        let mut elapsed = f64::INFINITY;
        let mut opt = None;
        let mut recorder = RingRecorder::new(TraceLevel::Summary, 64);
        for _ in 0..iters.max(1) {
            let r = RingRecorder::new(TraceLevel::Summary, 64);
            let started = Instant::now();
            let o = TwoLevelOptimizer::new(problem, view, cfg)
                .optimize_with(&mut PlanContext::new().with_recorder(&r))
                .unwrap();
            elapsed = elapsed.min(started.elapsed().as_secs_f64());
            opt = Some(o);
            recorder = r;
        }
        let opt = opt.expect("at least one iteration ran");
        let (dominated, skipped, evaluations) = prune_counters(&recorder);
        // Fraction of the enumerated space never cost-evaluated: odometer
        // positions skipped by the bound, relative to the walked space.
        let prune_rate = if evaluations > 0 {
            skipped as f64 / evaluations as f64
        } else {
            0.0
        };
        let identical = match &reference {
            None => {
                reference = Some((opt.plan.clone(), opt.evaluation));
                reference_secs = elapsed;
                true
            }
            Some((plan, eval)) => opt.plan == *plan && opt.evaluation == *eval,
        };
        t.row([
            name.into(),
            format!("{elapsed:.3}"),
            format!("{:.2}x", reference_secs / elapsed),
            format!("{evaluations}"),
            format!("{dominated}"),
            format!("{skipped}"),
            format!("{:.1}%", prune_rate * 100.0),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(
            identical,
            "pruning config {name:?} changed the optimum — exactness violated"
        );
    }
    t.print();
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base = if smoke {
        OptimizerConfig {
            kappa: 2,
            bid_levels: 5,
            ..Default::default()
        }
    } else {
        OptimizerConfig::default()
    };
    println!(
        "Search-pruning ablation (kappa = {}, {} bid levels, {} cores){}",
        base.kappa,
        base.bid_levels,
        cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!();

    let iters = if smoke { 1 } else { 5 };

    // The Figure 5 planner scenario: BT on the stock paper market, both
    // deadline regimes (tight deadlines reshape the incumbent trajectory
    // and therefore the bound's leverage).
    let market = paper_market(20140805, 400.0);
    let profile = npb_workload(NpbKernel::Bt);
    let view = planning_view(&market);
    let problem = build_problem(&market, &profile, LOOSE);
    run_study(
        "fig5 scenario: BT, loose (+50%) deadline",
        &problem,
        &view,
        base,
        iters,
    );

    if !smoke {
        let tight = build_problem(&market, &profile, TIGHT);
        run_study(
            "fig5 scenario: BT, tight (+5%) deadline",
            &tight,
            &view,
            base,
            iters,
        );

        // The Figure 7 sweep market with a heavier workload (FT) — a
        // different seed, so the incumbent ordering is independent of the
        // fig5 trajectory.
        let market7 = paper_market(20140808, 400.0);
        let profile7 = npb_workload(NpbKernel::Ft);
        let view7 = planning_view(&market7);
        let problem7 = build_problem(&market7, &profile7, LOOSE);
        run_study(
            "fig7 scenario: FT, loose (+50%) deadline",
            &problem7,
            &view7,
            base,
            iters,
        );

        // The searches above finish in milliseconds, so fixed setup cost
        // (option assessment, on-demand selection) caps the end-to-end
        // speedup. The Theorem 1 ablation multiplies per-subset work
        // ~256x, making the odometer walk dominate — this is where the
        // pruning pays at scale.
        let heavy = OptimizerConfig {
            interval_grid: Some(4),
            ..base
        };
        run_study(
            "fig5 scenario + interval-grid ablation (search-dominated)",
            &problem,
            &view,
            heavy,
            iters,
        );
    }

    println!("(Every row must be identical to the exhaustive reference: the");
    println!(" dominance filter, branch-and-bound, and shared incumbent are");
    println!(" exactness-preserving; only planner wall-clock changes.)");
}
