//! Figure 8 — comparison with individual fault-tolerance mechanisms:
//! All-Unable (no fault tolerance), w/o-RP (checkpointing only), w/o-CK
//! (replication only), w/o-MT (both, but no adaptive update maintenance)
//! and full SOMPI.
//!
//! This experiment uses a *long* workload (≈24 h baseline) so that the
//! optimization window `T_m = 15 h` and distribution drift actually
//! matter. Expected shape (paper): single mechanisms gain <5% over
//! All-Unable; SOMPI gains >25% over either single mechanism; w/o-MT
//! costs ≈15% more than SOMPI and has much higher variance.

use mpi_sim::npb::{NpbClass, NpbKernel};
use replay::adaptive_exec::AdaptiveRunner;
use replay::montecarlo::McResult;
use replay::PlanRunner;
use sompi_bench::{
    build_problem, monte_carlo, planning_view, repeat_to_hours, stress_market, Table, LOOSE,
    PROCESSES, TIGHT,
};
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{AllUnable, Sompi, SompiNoCheckpoint, SompiNoReplication, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    // Long *stress* market (every zone volatile — no free rides) and a
    // ~12-hour workload, so fault tolerance and the 15-hour optimization
    // window are genuinely exercised.
    let market = stress_market(20140809, 700.0);
    let profile = repeat_to_hours(NpbKernel::Bt.profile(NpbClass::B, PROCESSES), 24.0);
    let cfg = OptimizerConfig {
        kappa: 2,
        bid_levels: 8,
        ..Default::default()
    };
    let adaptive_cfg = AdaptiveConfig {
        window_hours: 15.0,
        history_hours: 48.0,
        optimizer: cfg,
        ..Default::default()
    };

    for (dl_name, headroom) in [("loose (+50%)", LOOSE), ("tight (+5%)", TIGHT)] {
        let problem = build_problem(&market, &profile, headroom);
        let margin = problem.deadline + 8.0;
        println!(
            "\nFigure 8 — fault-tolerance ablations, {dl_name} deadline (baseline {:.1} h)\n",
            problem.baseline_time()
        );
        let mut t = Table::new(["method", "norm. cost", "cost CV", "dl met"]);
        let mut rows: Vec<(String, McResult)> = Vec::new();

        // Static-plan ablations.
        let statics: Vec<(&str, Box<dyn Strategy>)> = vec![
            ("All-Unable", Box::new(AllUnable { config: cfg })),
            ("w/o-RP", Box::new(SompiNoReplication { config: cfg })),
            ("w/o-CK", Box::new(SompiNoCheckpoint { config: cfg })),
        ];
        let view = planning_view(&market);
        let ctx = replay::ExecContext::new();
        for (name, strat) in &statics {
            let plan = strat
                .plan(&problem, &view, &mut PlanContext::new())
                .expect("plan succeeds");
            let mc = monte_carlo(&market, margin, 5000);
            let runner = PlanRunner::new(&market, problem.deadline);
            let r = mc
                .evaluate(|start| runner.run(&plan, start, &ctx))
                .expect("replay succeeds");
            rows.push((name.to_string(), r));
        }

        // w/o-MT: adaptive machinery, but the first window's plan is frozen.
        {
            let runner = AdaptiveRunner::new(&market, adaptive_cfg).without_maintenance();
            let mc = monte_carlo(&market, margin, 5001);
            let r = mc
                .evaluate(|start| Ok(runner.run(&problem, start, &ctx)?.run))
                .expect("replay succeeds");
            rows.push(("w/o-MT".to_string(), r));
        }
        // Full SOMPI with update maintenance.
        {
            let _ = Sompi { config: cfg }; // the adaptive runner embeds the optimizer
            let runner = AdaptiveRunner::new(&market, adaptive_cfg);
            let mc = monte_carlo(&market, margin, 5001);
            let r = mc
                .evaluate(|start| Ok(runner.run(&problem, start, &ctx)?.run))
                .expect("replay succeeds");
            rows.push(("SOMPI".to_string(), r));
        }

        let base = problem.baseline_cost_billed();
        for (name, r) in &rows {
            t.row([
                name.clone(),
                format!("{:.3}", r.cost.mean / base),
                format!("{:.2}", r.cost.cv()),
                format!("{:.0}%", r.deadline_rate * 100.0),
            ]);
        }
        t.print();

        let cost = |n: &str| {
            rows.iter()
                .find(|(name, _)| name == n)
                .map(|(_, r)| r.cost.mean)
                .expect("row exists")
        };
        println!(
            "\n  SOMPI vs w/o-RP: {:.0}% cheaper (paper: >25%)",
            (1.0 - cost("SOMPI") / cost("w/o-RP")) * 100.0
        );
        println!(
            "  SOMPI vs w/o-CK: {:.0}% cheaper (paper: >25%)",
            (1.0 - cost("SOMPI") / cost("w/o-CK")) * 100.0
        );
        println!(
            "  SOMPI vs w/o-MT: {:.0}% cheaper (paper: ~15%)",
            (1.0 - cost("SOMPI") / cost("w/o-MT")) * 100.0
        );
    }
}
