//! Sensitivity to inaccurate execution-time profiling (the paper's
//! Section 5.3.1 remark / technical-report Appendix B study).
//!
//! The paper: *"Marathe, Marathe-Opt and SOMPI are all sensitive to the
//! accuracy of estimated execution time … our proposed method can still
//! outperform other algorithms when the estimated execution time is
//! inaccurate."*
//!
//! Protocol: perturb every `T_i`/`T_d` the planner sees by a relative
//! error ε (the market and the *actual* replayed execution stay truthful),
//! and measure the replayed cost of each strategy's plan.

use mpi_sim::npb::NpbKernel;
use replay::PlanRunner;
use sompi_bench::{
    build_problem, monte_carlo, npb_workload, paper_market, planning_view, Table, LOOSE,
};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{MaratheOpt, Sompi, Strategy};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;

/// The planner believes execution times are `(1 + eps) ×` reality.
fn misprofiled(problem: &Problem, eps: f64) -> Problem {
    let mut p = problem.clone();
    for c in &mut p.candidates {
        c.exec_hours *= 1.0 + eps;
    }
    for od in &mut p.on_demand {
        od.exec_hours *= 1.0 + eps;
    }
    p
}

fn main() {
    let market = paper_market(20140818, 400.0);
    let profile = npb_workload(NpbKernel::Bt);
    let truth = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);
    let sompi = Sompi {
        config: OptimizerConfig {
            kappa: 3,
            bid_levels: 10,
            ..Default::default()
        },
    };

    println!("Profiling-error sensitivity (BT, loose deadline)\n");
    println!("The planner sees T_i x (1+eps); replay uses the true times.\n");
    let mut t = Table::new([
        "profiling error",
        "Marathe-Opt norm.",
        "SOMPI norm.",
        "SOMPI dl met",
    ]);
    for eps in [-0.3, -0.15, 0.0, 0.15, 0.3] {
        let believed = misprofiled(&truth, eps);
        let mut cells = vec![format!("{:+.0}%", eps * 100.0)];
        let mut sompi_dl = 0.0;
        for (i, strat) in [&MaratheOpt as &dyn Strategy, &sompi as &dyn Strategy]
            .iter()
            .enumerate()
        {
            // Plan against the *misprofiled* problem…
            let plan = strat
                .plan(&believed, &view, &mut PlanContext::new())
                .expect("plan succeeds");
            // …but replay against reality: rebuild the plan's groups with
            // true execution times (the bids/intervals are the decisions).
            let mut real_plan = plan.clone();
            for (g, _) in &mut real_plan.groups {
                if let Some(truth_g) = truth.candidate(g.id) {
                    g.exec_hours = truth_g.exec_hours;
                }
            }
            if let Some(od) = truth
                .on_demand
                .iter()
                .find(|o| o.instance_type == real_plan.on_demand.instance_type)
            {
                real_plan.on_demand = *od;
            }
            let mc = monte_carlo(&market, truth.deadline + 6.0, 7777);
            let runner = PlanRunner::new(&market, truth.deadline);
            let ctx = replay::ExecContext::new();
            let r = mc
                .evaluate(|s| runner.run(&real_plan, s, &ctx))
                .expect("replay succeeds");
            cells.push(format!("{:.3}", r.cost.mean / truth.baseline_cost_billed()));
            if i == 1 {
                sompi_dl = r.deadline_rate;
            }
        }
        cells.push(format!("{:.0}%", sompi_dl * 100.0));
        t.row(cells);
    }
    t.print();
    println!("\n(Paper: all methods are sensitive to profiling accuracy, but SOMPI");
    println!(" keeps its lead under misestimation — check that the SOMPI column");
    println!(" stays below Marathe-Opt across the error range.)");
}
