//! Parallel-search ablation — serial vs multi-threaded subset search at
//! the paper's default scale (κ = 4, 12 bid levels).
//!
//! The two-level search is embarrassingly parallel across the C(K,k)
//! circle-group subsets; workers keep local incumbents and the merge uses
//! a total order (cost, then bid vector, then enumeration ordinal), so the
//! resulting plan must be identical at every thread count. This ablation
//! verifies that identity while measuring the wall-clock speedup.

use mpi_sim::npb::NpbKernel;
use sompi_bench::{build_problem, npb_workload, paper_market, planning_view, Table, LOOSE};
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::{MarketView, Problem};
use std::time::Instant;

fn run_study(label: &str, problem: &Problem, view: &MarketView, interval_grid: Option<u32>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("{label}");

    let cfg = |threads| OptimizerConfig {
        kappa: 4,
        bid_levels: 12,
        interval_grid,
        threads,
        ..Default::default()
    };

    // Serial reference: the plan every other run must reproduce exactly.
    let started = Instant::now();
    let serial = TwoLevelOptimizer::new(problem, view, cfg(1))
        .optimize()
        .unwrap();
    let serial_secs = started.elapsed().as_secs_f64();

    let mut t = Table::new([
        "threads",
        "opt time (s)",
        "speedup",
        "plan evals",
        "identical",
    ]);
    t.row([
        "1".into(),
        format!("{serial_secs:.3}"),
        "1.00x".into(),
        format!("{}", serial.evaluations_performed),
        "ref".into(),
    ]);
    for threads in [2usize, 4, 8, 0] {
        let started = Instant::now();
        let opt = TwoLevelOptimizer::new(problem, view, cfg(threads))
            .optimize()
            .unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        let identical = opt == serial;
        t.row([
            if threads == 0 {
                format!("auto ({cores})")
            } else {
                format!("{threads}")
            },
            format!("{elapsed:.3}"),
            format!("{:.2}x", serial_secs / elapsed),
            format!("{}", opt.evaluations_performed),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(
            identical,
            "parallel search diverged from serial at threads = {threads}"
        );
    }
    t.print();
    println!();
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("Parallel search ablation (BT, loose deadline, kappa = 4, 12 bid levels)");
    println!("host cores: {cores}\n");

    let market = paper_market(31415, 160.0);
    let profile = npb_workload(NpbKernel::Bt);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);
    run_study("paper market (5 types x 3 zones)", &problem, &view, None);

    // A heavier instance of the same search: the Theorem 1 ablation
    // (4-point interval grid) multiplies per-subset work ~256x, so
    // per-chunk compute dominates thread start-up and the scaling is
    // measurable.
    run_study(
        "paper market + interval-grid ablation (heavier per-subset work)",
        &problem,
        &view,
        Some(4),
    );

    println!("(Workers search disjoint subset chunks with local incumbents; the");
    println!(" deterministic merge makes the plan invariant to the thread count.)");
}
