//! Section 5.4.1 — accuracy of the failure-rate function.
//!
//! The paper trains `f(P, t)` on three days of history, re-estimates it on
//! the held-out fourth day, and reports the distribution of relative
//! differences (their finding: ~90% under 3%, ~98% under 5%). We repeat
//! the protocol across circle groups, bids and horizons.

use ec2_market::zone::AvailabilityZone;
use sompi_bench::{paper_market, Table, STEP_HOURS};

fn main() {
    let market = paper_market(20140813, 400.0);
    let mut diffs: Vec<f64> = Vec::new();
    // Per-zone breakdown: us-east-1b hosts the calm/flat regimes, 1a the
    // violent ones — the paper's real traces sat between the two.
    let mut by_zone: std::collections::BTreeMap<AvailabilityZone, Vec<f64>> = Default::default();

    for id in market.groups().collect::<Vec<_>>() {
        let trace = market.trace(id).expect("generated");
        // Repeat the paper's protocol at several positions in the trace.
        for block in 0..4 {
            let start = block as f64 * 96.0;
            if start + 96.0 > trace.duration() {
                continue;
            }
            let train = market
                .try_estimator(id, start, 72.0)
                .expect("group listed by the market");
            let test = market
                .try_estimator(id, start + 72.0, 24.0)
                .expect("group listed by the market");
            let h = train.max_price();
            for frac in [0.3, 0.5, 0.8] {
                let bid = h * frac;
                for horizon in [6usize, 12, 24] {
                    let a = train.failure_rate_exact(bid, horizon).prob_fail();
                    let b = test.failure_rate_exact(bid, horizon).prob_fail();
                    // Relative difference |A - A'| / A with the paper's
                    // convention; skip degenerate zero-failure cells where
                    // both agree exactly.
                    let d = if a == 0.0 && b == 0.0 {
                        0.0
                    } else {
                        (a - b).abs() / a.max(b).max(1e-9)
                    };
                    diffs.push(d);
                    by_zone.entry(id.zone).or_default().push(d);
                }
            }
        }
    }

    let frac_below = |x: f64| diffs.iter().filter(|d| **d < x).count() as f64 / diffs.len() as f64;
    println!("Failure-rate function accuracy (train 72 h / test 24 h)\n");
    let mut t = Table::new(["threshold", "fraction of cells below"]);
    for thr in [0.03, 0.05, 0.10, 0.20, 0.50] {
        t.row([
            format!("{:.0}%", thr * 100.0),
            format!("{:.1}%", frac_below(thr) * 100.0),
        ]);
    }
    t.print();
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    println!(
        "\ncells: {}   mean relative difference: {:.1}%",
        diffs.len(),
        mean * 100.0
    );

    println!("\nBy zone (volatility regime):");
    for (zone, ds) in &by_zone {
        let below3 = ds.iter().filter(|d| **d < 0.03).count() as f64 / ds.len() as f64;
        let m = ds.iter().sum::<f64>() / ds.len() as f64;
        println!(
            "  {zone}: {:.0}% of cells below 3%, mean diff {:.1}%",
            below3 * 100.0,
            m * 100.0
        );
    }
    println!("(Paper on real 2014 traces: ~90% below 3%, ~98% below 5%. Our synthetic");
    println!(
        " market is sparser per window — {:.0} samples/day at {:.0}-minute steps —",
        24.0 / STEP_HOURS,
        STEP_HOURS * 60.0
    );
    println!(" so day-to-day estimates are noisier; the stationarity claim is what matters.)");
}
