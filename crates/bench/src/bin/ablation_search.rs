//! Section 4.2.2 ablation — the search-space reductions, measured.
//!
//! The paper's example: naive search `(P × T)^K ≈ 10^16`; dimension
//! reduction (`F = φ(P)`, Theorem 1) removes the interval axis; the
//! logarithmic grid shrinks bids to `(log₂ H)^K ≈ 2000`. Here we measure
//! actual evaluation counts, wall time, *and solution quality* (model
//! expected cost and replayed cost) so the "reduction preserves
//! optimality" claim is tested, not assumed.

use mpi_sim::npb::NpbKernel;
use replay::PlanRunner;
use sompi_bench::{
    build_problem, monte_carlo, npb_workload, paper_market, planning_view, Table, LOOSE,
};
use sompi_core::twolevel::{GridKind, OptimizerConfig, TwoLevelOptimizer};
use std::time::Instant;

fn main() {
    let market = paper_market(20140815, 400.0);
    let profile = npb_workload(NpbKernel::Bt);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);

    let variants: Vec<(&str, OptimizerConfig)> = vec![
        (
            "exhaustive-ish (interval grid 8, uniform bids)",
            OptimizerConfig {
                kappa: 2,
                bid_levels: 8,
                grid: GridKind::Uniform,
                interval_grid: Some(8),
                top_margin: None,
                ..Default::default()
            },
        ),
        (
            "+ Theorem 1 (F = phi(P), uniform bids)",
            OptimizerConfig {
                kappa: 2,
                bid_levels: 8,
                grid: GridKind::Uniform,
                top_margin: None,
                ..Default::default()
            },
        ),
        (
            "+ logarithmic bid grid (full SOMPI)",
            OptimizerConfig {
                kappa: 2,
                bid_levels: 8,
                grid: GridKind::Logarithmic,
                top_margin: None,
                ..Default::default()
            },
        ),
    ];

    println!("Search-space ablation (BT, loose deadline, kappa = 2)\n");
    let mut t = Table::new([
        "configuration",
        "plan evals",
        "opt time",
        "E[cost] $",
        "replayed $",
    ]);
    for (name, cfg) in variants {
        let started = Instant::now();
        let opt = TwoLevelOptimizer::new(&problem, &view, cfg)
            .optimize()
            .unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        let mc = monte_carlo(&market, problem.deadline + 6.0, 1234);
        let runner = PlanRunner::new(&market, problem.deadline);
        let ctx = replay::ExecContext::new();
        let r = mc
            .evaluate(|start| runner.run(&opt.plan, start, &ctx))
            .expect("replay succeeds");
        t.row([
            name.to_string(),
            format!("{}", opt.evaluations_performed),
            format!("{elapsed:.2}s"),
            format!("{:.2}", opt.evaluation.expected_cost),
            format!("{:.2}", r.cost.mean),
        ]);
    }
    t.print();
    println!("\nTheorem 1 and the logarithmic grid should cut evaluations by ~an order");
    println!("of magnitude each while losing little or no replayed-cost quality —");
    println!("that is the paper's 10^16 -> 10^8 -> ~2000 narrative in miniature.");
}
