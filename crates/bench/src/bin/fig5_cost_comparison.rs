//! Figure 5 — monetary cost comparison against the state of the art:
//! On-demand, Marathe \[30\], Marathe-Opt and SOMPI across computation-,
//! communication- and IO-intensive NPB kernels plus LAMMPS at 32 and 128
//! processes, under loose (+50%) and tight (+5%) deadlines. Costs are
//! normalized to Baseline Cost (fastest on-demand execution).

use mpi_sim::npb::NpbKernel;
use sompi_bench::{
    build_problem, evaluate_strategy, lammps_workload, normalized, npb_workload, paper_market,
    Table, LOOSE, TIGHT,
};
use sompi_core::baselines::{Marathe, MaratheOpt, OnDemandOnly, Sompi, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = paper_market(20140805, 400.0);
    let sompi = Sompi {
        config: OptimizerConfig {
            kappa: 4,
            bid_levels: 10,
            ..Default::default()
        },
    };
    let strategies: Vec<&dyn Strategy> = vec![&OnDemandOnly, &Marathe, &MaratheOpt, &sompi];

    let apps: Vec<(String, mpi_sim::profile::AppProfile)> = NpbKernel::ALL
        .iter()
        .map(|k| (format!("{k} ({})", k.class_label()), npb_workload(*k)))
        .chain([
            ("LAMMPS-32p".to_string(), lammps_workload(32)),
            ("LAMMPS-128p".to_string(), lammps_workload(128)),
        ])
        .collect();

    for (dl_name, headroom) in [("loose (+50%)", LOOSE), ("tight (+5%)", TIGHT)] {
        println!("\nFigure 5 — normalized monetary cost, {dl_name} deadline");
        println!("(1.0 = Baseline Cost: fastest on-demand execution)\n");
        let mut t = Table::new([
            "application",
            "On-demand",
            "Marathe",
            "Marathe-Opt",
            "SOMPI",
            "SOMPI dl-met",
        ]);
        let mut sums = [0.0f64; 4];
        for (name, profile) in &apps {
            let problem = build_problem(&market, profile, headroom);
            let mut cells = vec![name.clone()];
            let mut dl_rate = 0.0;
            for (si, strat) in strategies.iter().enumerate() {
                let r = evaluate_strategy(*strat, &problem, &market, 1000 + si as u64);
                let (nc, _) = normalized(&r, &problem);
                sums[si] += nc;
                cells.push(format!("{nc:.3}"));
                if si == 3 {
                    dl_rate = r.deadline_rate;
                }
            }
            cells.push(format!("{:.0}%", dl_rate * 100.0));
            t.row(cells);
        }
        let n = apps.len() as f64;
        t.row([
            "AVERAGE".to_string(),
            format!("{:.3}", sums[0] / n),
            format!("{:.3}", sums[1] / n),
            format!("{:.3}", sums[2] / n),
            format!("{:.3}", sums[3] / n),
            String::new(),
        ]);
        t.print();

        println!("\nReductions vs each comparison (paper: 70% / 48% / 20% on average):");
        for (si, label) in [(0, "On-demand"), (1, "Marathe"), (2, "Marathe-Opt")] {
            let red = 1.0 - (sums[3] / sums[si]);
            println!("  SOMPI vs {label}: {:.0}% cheaper", red * 100.0);
        }
    }
}
