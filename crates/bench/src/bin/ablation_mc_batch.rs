//! Batched-replay / replay-memo ablation — the Monte-Carlo hot path with
//! the scenario-major batched executor on (default) vs off
//! (`--no-batch-replay` semantics), and the tournament with cross-cell
//! replay memoization on (default) vs off (`--no-replay-memo`).
//!
//! Three studies, each asserting bit-identical answers before reporting
//! wall-clock:
//!
//! 1. `death-tables` — `first_passage_above` + `launch_time` on one long
//!    trace: the per-(group, bid) `DeathTimeTable`'s O(1) lookups vs the
//!    sparse-table `TraceIndex`'s O(log n) descents. The table is the
//!    batched executor's building block; its build cost is amortized over
//!    every replica and every tournament cell sharing the market.
//! 2. `mc-replay` — Monte-Carlo replay of one planned execution,
//!    `ExecMode::Batched` vs `ExecMode::Scalar` on the same indexed
//!    market (so the ratio isolates the batch layer, not the trace
//!    index).
//! 3. `tournament-grid` — a duplication-heavy tournament (the paper's
//!    six-policy roster submitted by several tenants, the same shape the
//!    server's shared plan cache serves) with {batch+memo} vs
//!    {scalar, no memo}. Duplicate (plan, market, fault-spec) cells
//!    collapse onto one search and one replay; the committed baseline
//!    must show at least [`TOURNAMENT_SPEEDUP_FLOOR`]x.
//!
//! Timing is best-of-5 (`--smoke`: best-of-1 with shrunk sizes for CI).
//! `--smoke` additionally asserts the tournament speedup floor
//! [`SMOKE_SPEEDUP_FLOOR`] and byte-identical tournament JSON across
//! optimizer thread counts. The full run writes the measured baseline to
//! `BENCH_mc_batch.json`.

use ec2_market::death::DeathTimeTable;
use ec2_market::index::{TraceIndex, TraceQuery};
use ec2_market::market::CircleGroupId;
use ec2_market::trace::SpotTrace;
use ec2_market::zone::AvailabilityZone;
use mpi_sim::npb::{NpbClass, NpbKernel};
use replay::{ExecContext, ExecMode, MonteCarlo};
use sompi_bench::{build_problem, paper_market, planning_view, repeat_to_hours, Table, LOOSE};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::pool::SearchPool;
use sompi_core::twolevel::OptimizerConfig;
use sompi_obs::NullRecorder;
use sompi_server::proto::PlanRequest;
use sompi_server::tournament::{run_tournament, TournamentConfig, TournamentReport};
use std::time::Instant;

/// The committed full-run baseline must clear this on the tournament
/// grid (the PR's acceptance floor).
const TOURNAMENT_SPEEDUP_FLOOR: f64 = 5.0;
/// The CI smoke assertion: deliberately below the structural dedup
/// factor of the smoke grid (~6x fewer replays with the memo on), so a
/// noisy shared runner cannot flake it.
const SMOKE_SPEEDUP_FLOOR: f64 = 2.0;

/// Best-of-N wall-clock of `f`, returning the last value for identity
/// checks.
fn time_best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        let v = f();
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("at least one iteration ran"))
}

struct Study {
    name: &'static str,
    work: String,
    scalar_secs: f64,
    batched_secs: f64,
}

impl Study {
    fn speedup(&self) -> f64 {
        self.scalar_secs / self.batched_secs
    }
}

/// Study 1: the death-time table's O(1) answers against the trace
/// index's O(log n) descents, over a (start, bid) grid that reuses each
/// bid across many starts — the batched executor's access pattern (one
/// table per (group, bid), thousands of replica start offsets).
fn table_study(trace: &SpotTrace, bids: usize, starts: usize, iters: usize) -> (Study, f64) {
    let ix = TraceIndex::build(trace);
    let q = TraceQuery::new(trace, Some(&ix));
    let duration = trace.duration();
    let max_price = trace.max_price();
    let bid_at = |b: usize| max_price * (0.05 + 1.05 * (b as f64 / bids as f64));
    let start_at = |s: usize| (s as f64 * 0.618_033_988_75 * duration) % duration;
    let (build_secs, tables) = time_best_of(iters, || {
        (0..bids)
            .map(|b| DeathTimeTable::build(trace, bid_at(b)))
            .collect::<Vec<_>>()
    });
    let run_indexed = || {
        let mut acc = 0u64;
        for b in 0..bids {
            let bid = bid_at(b);
            for s in 0..starts {
                let start = start_at(s);
                if let Some(t) = q.first_passage_above(start, bid) {
                    acc = acc.wrapping_add(t.to_bits());
                }
                if let Some(t) = q.launch_time(start, bid, duration) {
                    acc = acc.wrapping_add(t.to_bits());
                }
            }
        }
        acc
    };
    let run_tables = || {
        let mut acc = 0u64;
        for (b, table) in tables.iter().enumerate() {
            debug_assert_eq!(table.bid().to_bits(), bid_at(b).to_bits());
            for s in 0..starts {
                let start = start_at(s);
                if let Some(t) = table.first_passage_above(start) {
                    acc = acc.wrapping_add(t.to_bits());
                }
                if let Some(t) = table.launch_time(start, duration) {
                    acc = acc.wrapping_add(t.to_bits());
                }
            }
        }
        acc
    };
    let (scalar_secs, indexed_sum) = time_best_of(iters, run_indexed);
    let (batched_secs, table_sum) = time_best_of(iters, run_tables);
    assert_eq!(
        indexed_sum, table_sum,
        "death-table answers diverged from the indexed queries"
    );
    (
        Study {
            name: "death-tables",
            work: format!("{bids} bids x {starts} starts, {} samples", trace.len()),
            scalar_secs,
            batched_secs,
        },
        build_secs,
    )
}

/// Study 2: end-to-end Monte-Carlo replay, batched vs scalar, on the
/// same trace-indexed market — isolating the batch layer's contribution
/// on top of the (already committed) index speedup.
fn mc_study(replicas: usize, hours: f64, exec_hours: f64, iters: usize) -> Study {
    let market = paper_market(20140806, hours);
    market.build_indexes();
    let workload = repeat_to_hours(NpbKernel::Bt.profile(NpbClass::B, 128), exec_hours);
    let view = planning_view(&market);
    let problem = build_problem(&market, &workload, LOOSE);
    let plan = Sompi {
        config: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..Default::default()
        },
    }
    .plan(&problem, &view, &mut PlanContext::new())
    .expect("plan succeeds");
    let mc = MonteCarlo::builder()
        .replicas(replicas)
        .seed(7)
        .offsets(48.0, (hours - problem.deadline - 2.0).max(49.0))
        .threads(0)
        .build();
    let scalar_ctx = ExecContext::new().with_mode(ExecMode::Scalar);
    let batched_ctx = ExecContext::new().with_mode(ExecMode::Batched);
    let (scalar_secs, a) = time_best_of(iters, || {
        mc.run_plan(&market, &plan, problem.deadline, &scalar_ctx)
            .unwrap()
    });
    let (batched_secs, b) = time_best_of(iters, || {
        mc.run_plan(&market, &plan, problem.deadline, &batched_ctx)
            .unwrap()
    });
    assert_eq!(a, b, "Monte-Carlo aggregates diverged between batch on/off");
    Study {
        name: "mc-replay",
        work: format!("{replicas} replicas, {} groups", plan.groups.len()),
        scalar_secs,
        batched_secs,
    }
}

/// The duplication-heavy tournament grid: the paper's six-policy roster
/// submitted by `tenants` tenants over `seeds` markets and a two-point
/// fault grid.
fn grid_config(tenants: usize, seeds: &[u64], replicas: u32, threads: u32) -> TournamentConfig {
    let base = [
        "ondemand",
        "no-ft",
        "ckpt-only",
        "app-centric",
        "deadline-hedge",
        "sompi",
    ];
    let mut policies = Vec::new();
    for _ in 0..tenants {
        policies.extend(base.iter().map(|s| s.to_string()));
    }
    TournamentConfig {
        policies,
        market_seeds: seeds.to_vec(),
        market_hours: 400.0,
        replicas,
        fault_specs: vec![None, Some("storm=0.02x0.5".into())],
        plan: PlanRequest {
            repeats: 200,
            kappa: 1,
            bid_levels: 2,
            threads,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Study 3: the tournament with both layers on vs both off. Cells must
/// be byte-identical (serialized floats distinguish `-0.0` from `0.0`,
/// so byte equality is bit equality).
fn tournament_study(
    tenants: usize,
    seeds: &[u64],
    replicas: u32,
    iters: usize,
) -> (Study, TournamentReport) {
    let cfg_on = grid_config(tenants, seeds, replicas, 0);
    let mut cfg_off = cfg_on.clone();
    cfg_off.batch_replay = false;
    cfg_off.replay_memo = false;
    let (batched_secs, on) = time_best_of(iters, || {
        run_tournament(&cfg_on, &NullRecorder, None).unwrap()
    });
    let (scalar_secs, off) = time_best_of(iters, || {
        run_tournament(&cfg_off, &NullRecorder, None).unwrap()
    });
    assert_eq!(
        serde_json::to_string(&on.cells).expect("serializable"),
        serde_json::to_string(&off.cells).expect("serializable"),
        "tournament cells diverged between {{batch, memo}} on/off"
    );
    assert_eq!(off.replay_memo_hits, 0, "memo off must not count hits");
    let study = Study {
        name: "tournament-grid",
        work: format!(
            "{} cells ({} tenants x 6 policies x {} markets x 2 faults), {replicas} replicas",
            on.cells.len(),
            tenants,
            seeds.len()
        ),
        scalar_secs,
        batched_secs,
    };
    (study, on)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let iters = if smoke { 1 } else { 5 };
    println!(
        "Batched-replay / replay-memo ablation ({} cores, best-of-{iters}){}",
        cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!();

    let (bids, starts, mc_replicas, mc_hours, exec_hours) = if smoke {
        (32, 2_000, 2_000, 300.0, 12.0)
    } else {
        (64, 40_000, 20_000, 1000.0, 240.0)
    };
    let (tenants, seeds, t_replicas): (usize, &[u64], u32) = if smoke {
        (6, &[21], 300)
    } else {
        (6, &[21, 22, 23], 4_000)
    };

    let query_hours = if smoke { 300.0 } else { 1200.0 };
    let market = paper_market(20140806, query_hours);
    let trace = market
        .trace(CircleGroupId::new(
            market.catalog().by_name("m1.medium").unwrap(),
            AvailabilityZone::UsEast1a,
        ))
        .unwrap();

    let (d_study, build_secs) = table_study(trace, bids, starts, iters);
    let m_study = mc_study(mc_replicas, mc_hours, exec_hours, iters);
    let (t_study, report) = tournament_study(tenants, seeds, t_replicas, iters);

    let mut t = Table::new(["study", "work", "scalar (s)", "batched (s)", "speedup"]);
    for s in [&d_study, &m_study, &t_study] {
        t.row([
            s.name.into(),
            s.work.clone(),
            format!("{:.4}", s.scalar_secs),
            format!("{:.4}", s.batched_secs),
            format!("{:.1}x", s.speedup()),
        ]);
    }
    t.print();
    println!();
    println!(
        "death-table build (one-time, per (group, bid), amortized by the \
         market cache): {:.5} s for {bids} tables",
        build_secs
    );
    println!(
        "tournament memo: {} hits / {} misses over {} cells",
        report.replay_memo_hits,
        report.replay_memo_misses,
        report.cells.len()
    );

    if smoke {
        assert!(
            t_study.speedup() >= SMOKE_SPEEDUP_FLOOR,
            "smoke tournament speedup {:.2}x under the {SMOKE_SPEEDUP_FLOOR}x floor",
            t_study.speedup()
        );
        // Determinism contract, extended to the new layers: the full
        // report JSON — counters included — is byte-identical across
        // optimizer thread counts and pool residency.
        let single = run_tournament(
            &grid_config(tenants, seeds, t_replicas, 1),
            &NullRecorder,
            None,
        )
        .expect("single-thread tournament runs")
        .to_json();
        let pool = SearchPool::new(4);
        let pooled = run_tournament(
            &grid_config(tenants, seeds, t_replicas, 4),
            &NullRecorder,
            Some(&pool),
        )
        .expect("pooled tournament runs")
        .to_json();
        assert_eq!(single, pooled, "thread count leaked into the report");
        println!("\nsmoke checks passed: speedup floor + cross-thread JSON identity");
        return;
    }

    assert!(
        t_study.speedup() >= TOURNAMENT_SPEEDUP_FLOOR,
        "tournament-grid speedup {:.2}x under the committed {TOURNAMENT_SPEEDUP_FLOOR}x floor",
        t_study.speedup()
    );
    let study_doc = |s: &Study| {
        serde_json::json!({
            "name": s.name,
            "work": s.work.as_str(),
            "scalar_secs": s.scalar_secs,
            "batched_secs": s.batched_secs,
            "speedup": s.speedup(),
        })
    };
    let memo_doc = serde_json::json!({
        "hits": report.replay_memo_hits,
        "misses": report.replay_memo_misses,
        "cells": report.cells.len(),
    });
    let doc = serde_json::json!({
        "bench": "ablation_mc_batch",
        "cores": cores,
        "best_of": iters,
        "table_build_secs": build_secs,
        "tournament_memo": memo_doc,
        "studies": [study_doc(&d_study), study_doc(&m_study), study_doc(&t_study)],
    });
    let json = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write("BENCH_mc_batch.json", json + "\n").expect("write BENCH_mc_batch.json");
    println!("\nwrote BENCH_mc_batch.json");
}
