//! Section 5.2 parameter study — Slack.
//!
//! The deadline is fixed at Baseline Time (the paper fixes "the deadline
//! for the on-demand execution as Baseline Time") and the slack reserved
//! for checkpoint/recovery in on-demand selection is swept. Expected
//! shape: cost falls as slack rises toward ~20%, then plateaus; execution
//! time grows and saturates around 1.16× Baseline Time.

use mpi_sim::npb::NpbKernel;
use replay::PlanRunner;
use sompi_bench::{build_problem, monte_carlo, npb_workload, planning_view, stress_market, Table};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::twolevel::OptimizerConfig;

fn main() {
    let market = stress_market(20140810, 400.0);
    let profile = npb_workload(NpbKernel::Bt);
    // Deadline 1.3x Baseline Time, chosen so the sweep straddles the
    // c3.xlarge/cc2.8xlarge on-demand boundary (T_c3 = 1.18x baseline):
    // small slacks admit the cheaper-but-slower c3 fallback, larger
    // slacks force the fast cc2 fallback and reserve real recovery
    // headroom.
    let problem = build_problem(&market, &profile, 0.30);
    let view = planning_view(&market);

    println!("Slack study (BT on the stress market, deadline = 1.3 x Baseline Time)\n");
    let mut t = Table::new(["slack", "norm. cost", "norm. time", "dl met"]);
    for slack in [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40] {
        let sompi = Sompi {
            config: OptimizerConfig {
                kappa: 3,
                bid_levels: 10,
                slack,
                ..Default::default()
            },
        };
        let plan = sompi
            .plan(&problem, &view, &mut PlanContext::new())
            .expect("plan succeeds");
        let mc = monte_carlo(&market, problem.deadline + 6.0, 6000);
        let runner = PlanRunner::new(&market, problem.deadline);
        let ctx = replay::ExecContext::new();
        let r = mc
            .evaluate(|start| runner.run(&plan, start, &ctx))
            .expect("replay succeeds");
        t.row([
            format!("{:.0}%", slack * 100.0),
            format!("{:.3}", r.cost.mean / problem.baseline_cost_billed()),
            format!("{:.3}", r.time.mean / problem.baseline_time()),
            format!("{:.0}%", r.deadline_rate * 100.0),
        ]);
    }
    t.print();
    println!("\n(Paper: cost stops improving past slack = 20%, time saturates ~1.16x.)");
}
