//! Minimal fixed-width table printer for experiment outputs.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["app", "cost"]);
        t.row(["BT", "1.00"]).row(["LAMMPS-128p", "0.43"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("BT "));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.256), "25.6%");
    }
}
