//! Standard experiment setup: markets, workloads, problems, strategies.

use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::lammps::Lammps;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::profile::AppProfile;
use mpi_sim::storage::S3Store;
use replay::montecarlo::{McResult, MonteCarlo};
use replay::PlanRunner;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::Strategy;
use sompi_core::problem::Problem;
use sompi_core::view::MarketView;

/// Trace sampling step: 5 minutes.
pub const STEP_HOURS: f64 = 1.0 / 12.0;
/// History window used by offline planning (the paper's "previous two
/// days").
pub const HISTORY_HOURS: f64 = 48.0;
/// The paper's default process count.
pub const PROCESSES: u32 = 128;
/// Target baseline (fastest on-demand) execution time, hours. The paper
/// repeats each application "100 to 200 times" to reach large-scale runs;
/// we scale repeat counts so every workload's baseline lands near this,
/// keeping hourly billing and hourly failure buckets meaningful across
/// kernels of very different unit durations.
pub const TARGET_BASELINE_HOURS: f64 = 1.2;
/// Tight deadline: 5% above Baseline Time.
pub const TIGHT: f64 = 0.05;
/// Loose deadline: 50% above Baseline Time.
pub const LOOSE: f64 = 0.50;

/// Build the calibrated 2014 market: 5 types × 3 zones over
/// `duration_hours` of synthetic history.
pub fn paper_market(seed: u64, duration_hours: f64) -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    SpotMarket::generate(
        catalog,
        &TraceGenerator::new(profile, seed),
        duration_hours,
        STEP_HOURS,
    )
}

/// A *stress* market for the fault-tolerance ablation (Figure 8): every
/// (type, zone) pair is volatile, so no circle group offers a free ride
/// and the value of checkpointing + replication is actually exercised.
/// The paper's 2014 us-east traces were in this regime for most types.
///
/// Unlike [`paper_market`], the stress market is also **non-stationary**:
/// every ~50 hours each (type, zone) pair re-rolls its base price level
/// (supply/demand shifts). That drift is exactly what the paper's update
/// maintenance (Algorithm 1) exists for, and what the w/o-MT ablation
/// suffers from.
pub fn stress_market(seed: u64, duration_hours: f64) -> SpotMarket {
    use ec2_market::trace::SpotTrace;
    use ec2_market::tracegen::{TraceGenConfig, ZoneVolatility};
    use ec2_market::zone::AvailabilityZone;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SEGMENT_HOURS: f64 = 50.0;
    let catalog = InstanceCatalog::paper_2014();
    let mut market = SpotMarket::new(catalog.clone());
    let segments = (duration_hours / SEGMENT_HOURS).ceil() as usize;

    for (id, ty) in catalog.iter() {
        let discount = match ty.name.as_str() {
            "m1.small" => 0.080,
            "m1.medium" => 0.085,
            "m1.large" => 0.120,
            "c3.xlarge" => 0.200,
            _ => 0.220,
        };
        for (zone, vol) in [
            (AvailabilityZone::UsEast1a, ZoneVolatility::Extreme),
            (AvailabilityZone::UsEast1b, ZoneVolatility::Volatile),
            (AvailabilityZone::UsEast1c, ZoneVolatility::Volatile),
        ] {
            let pair_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((id.0 as u64) << 8)
                .wrapping_add(zone.index() as u64);
            let mut level_rng = StdRng::seed_from_u64(pair_seed ^ 0xDEAD_BEEF);
            let mut trace: Option<SpotTrace> = None;
            for seg in 0..segments {
                // Base level wanders x[0.6, 2.2] across segments; the
                // preset volatility (10-100x on-demand spikes) supplies
                // the out-of-bid risk.
                let level: f64 = level_rng.gen_range(0.6..2.2);
                let cfg = TraceGenConfig::preset(ty.on_demand_price * discount * level, vol);
                let piece = cfg.generate(
                    SEGMENT_HOURS,
                    STEP_HOURS,
                    pair_seed.wrapping_add(seg as u64 * 7919),
                );
                match &mut trace {
                    None => trace = Some(piece),
                    Some(t) => t.extend_from(&piece),
                }
            }
            market.insert(
                ec2_market::market::CircleGroupId::new(id, zone),
                trace.expect("at least one segment"),
            );
        }
    }
    market
}

/// The four candidate instance types of the paper's evaluation.
pub fn paper_types(market: &SpotMarket) -> Vec<InstanceTypeId> {
    ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).expect("paper catalog"))
        .collect()
}

/// Repeat `profile` until its fastest-type execution reaches
/// `target_hours`.
pub fn repeat_to_hours(profile: AppProfile, target_hours: f64) -> AppProfile {
    let catalog = InstanceCatalog::paper_2014();
    let per_run = catalog
        .iter()
        .map(|(id, _)| {
            mpi_sim::cluster::ClusterSpec::for_processes(&catalog, id, profile.processes)
                .estimate(&catalog, &profile)
                .total_hours()
        })
        .fold(f64::INFINITY, f64::min);
    let repeats = (target_hours / per_run).ceil().clamp(1.0, 200_000.0) as u32;
    profile.repeated(repeats)
}

fn repeat_to_scale(profile: AppProfile) -> AppProfile {
    repeat_to_hours(profile, TARGET_BASELINE_HOURS)
}

/// NPB workload at the paper's defaults (CLASS B, 128 processes), repeated
/// to experiment scale.
pub fn npb_workload(kernel: NpbKernel) -> AppProfile {
    repeat_to_scale(kernel.profile(NpbClass::B, PROCESSES))
}

/// LAMMPS workload at a given process count, repeated to experiment scale.
pub fn lammps_workload(processes: u32) -> AppProfile {
    repeat_to_scale(Lammps::paper().profile(processes))
}

/// Build the optimization problem for `profile` with a deadline
/// `(1 + headroom) × Baseline Time`.
pub fn build_problem(market: &SpotMarket, profile: &AppProfile, headroom: f64) -> Problem {
    let types = paper_types(market);
    // Two-pass: build once to learn the baseline, then set the deadline.
    let mut p = Problem::build(
        market,
        profile,
        f64::MAX,
        Some(&types),
        S3Store::paper_2014(),
    );
    p.deadline = p.baseline_time() * (1.0 + headroom);
    p
}

/// The planning view every offline strategy uses: the first
/// [`HISTORY_HOURS`] of the market.
pub fn planning_view(market: &SpotMarket) -> MarketView {
    MarketView::from_market(market, 0.0, HISTORY_HOURS)
}

/// Monte-Carlo replica count: `SOMPI_REPLICAS` env var, default 200.
pub fn replicas() -> usize {
    std::env::var("SOMPI_REPLICAS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// Standard Monte-Carlo driver over a market: offsets start after the
/// planning history and leave `margin_hours` of trace for execution.
pub fn monte_carlo(market: &SpotMarket, margin_hours: f64, seed: u64) -> MonteCarlo {
    let max = (market.horizon() - margin_hours).max(HISTORY_HOURS + 1.0);
    MonteCarlo::builder()
        .replicas(replicas())
        .seed(seed)
        .offsets(HISTORY_HOURS, max)
        .build()
}

/// Plan with `strategy` once (offline, against the planning view) and
/// Monte-Carlo replay the plan over the market.
pub fn evaluate_strategy(
    strategy: &dyn Strategy,
    problem: &Problem,
    market: &SpotMarket,
    mc_seed: u64,
) -> McResult {
    let view = planning_view(market);
    let plan = strategy
        .plan(problem, &view, &mut PlanContext::new())
        .expect("plan succeeds");
    let margin = problem.baseline_time() * 4.0 + 4.0;
    let mc = monte_carlo(market, margin, mc_seed);
    let runner = PlanRunner::new(market, problem.deadline);
    let ctx = replay::ExecContext::new();
    mc.evaluate(|start| runner.run(&plan, start, &ctx))
        .expect("replay succeeds on generated markets")
}

/// Normalized (cost, time) pair against the problem's baseline. Cost is
/// normalized to the *billed* baseline (whole instance-hours) since replay
/// outcomes are billed the same way.
pub fn normalized(result: &McResult, problem: &Problem) -> (f64, f64) {
    (
        result.cost.mean / problem.baseline_cost_billed(),
        result.time.mean / problem.baseline_time(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_and_problem_scaffold() {
        let market = paper_market(1, 120.0);
        assert_eq!(market.len(), 15);
        let profile = npb_workload(NpbKernel::Bt);
        let problem = build_problem(&market, &profile, LOOSE);
        assert!((problem.deadline / problem.baseline_time() - 1.5).abs() < 1e-9);
        assert_eq!(problem.candidates.len(), 12);
    }

    #[test]
    fn replicas_env_default() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path yields a positive count.
        assert!(replicas() > 0);
    }

    #[test]
    fn end_to_end_strategy_evaluation_smoke() {
        // Tiny smoke test of the full pipeline with few replicas.
        std::env::set_var("SOMPI_REPLICAS", "8");
        let market = paper_market(3, 160.0);
        let profile = npb_workload(NpbKernel::Bt);
        let problem = build_problem(&market, &profile, LOOSE);
        let od = sompi_core::baselines::OnDemandOnly;
        let r = evaluate_strategy(&od, &problem, &market, 11);
        std::env::remove_var("SOMPI_REPLICAS");
        assert!(r.cost.mean > 0.0);
        let (nc, nt) = normalized(&r, &problem);
        assert!(nc > 0.0 && nt > 0.0);
    }
}
