//! Shared scaffolding for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md for the index).
//!
//! All experiments draw from the same calibrated synthetic market
//! ([`setup::paper_market`]) and the same workload constructors, so results
//! are comparable across binaries and reproducible (fixed seeds; override
//! replica counts with the `SOMPI_REPLICAS` environment variable).

pub mod setup;
pub mod table;

pub use setup::*;
pub use table::Table;
