//! Trace-replay execution of SOMPI plans and Monte-Carlo evaluation.
//!
//! The paper's simulation methodology (Section 5.1): *"we use the method of
//! replaying the trace from the spot market … We randomly choose a start
//! point in the trace and compare our bid price with the spot price along
//! the time. If our bid price is lower than the spot price at that point,
//! we treat the application as terminated … We repeat the simulation for
//! one million times and calculate the expected cost."*
//!
//! * [`exec`] — replay one static plan against the realized traces from a
//!   start offset: launch delays, out-of-bid terminations, checkpoint
//!   schedules, the winner-takes-all replica rule, the on-demand fallback,
//!   and 2014 hourly billing,
//! * [`adaptive_exec`] — the windowed Algorithm-1 runner: re-estimates and
//!   re-plans every `T_m` hours against fresh history (SOMPI) or never
//!   (the w/o-MT ablation),
//! * [`montecarlo`] — repeat either runner from seeded random start points,
//!   in parallel across threads (crossbeam scoped threads; results are
//!   deterministic for a given seed and replica count),
//! * [`stats`] — summary statistics for experiment tables.
//!
//! ```
//! use ec2_market::instance::InstanceCatalog;
//! use ec2_market::market::SpotMarket;
//! use ec2_market::tracegen::{MarketProfile, TraceGenerator};
//! use mpi_sim::npb::{NpbClass, NpbKernel};
//! use mpi_sim::storage::S3Store;
//! use replay::PlanRunner;
//! use sompi_core::adaptive::PlanContext;
//! use sompi_core::baselines::{Sompi, Strategy};
//! use sompi_core::problem::Problem;
//! use sompi_core::twolevel::OptimizerConfig;
//! use sompi_core::view::MarketView;
//!
//! let catalog = InstanceCatalog::paper_2014();
//! let profile = MarketProfile::paper_2014(&catalog);
//! let market =
//!     SpotMarket::generate(catalog, &TraceGenerator::new(profile, 7), 120.0, 1.0 / 12.0);
//! let app = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(100);
//! let mut problem = Problem::build(&market, &app, f64::MAX, None, S3Store::paper_2014());
//! problem.deadline = problem.baseline_time() * 1.5;
//!
//! let view = MarketView::from_market(&market, 0.0, 48.0);
//! let cfg = OptimizerConfig { kappa: 1, bid_levels: 3, ..Default::default() };
//! let plan = Sompi { config: cfg }
//!     .plan(&problem, &view, &mut PlanContext::new())
//!     .unwrap();
//! let outcome = PlanRunner::new(&market, problem.deadline)
//!     .run(&plan, 60.0, &replay::ExecContext::new())
//!     .unwrap();
//! assert!(outcome.total_cost > 0.0);
//! ```

pub mod adaptive_exec;
pub mod batch;
pub mod exec;
pub mod montecarlo;
pub mod relaunch;
pub mod stats;
pub mod timeline;

pub use adaptive_exec::{AdaptiveOutcome, AdaptiveRunner};
pub use batch::{BatchEntry, BatchTables};
pub use exec::{ExecContext, ExecMode, Finisher, PlanRunner, RunOutcome, WindowOutcome};
pub use montecarlo::{McResult, MonteCarlo, MonteCarloBuilder};
pub use relaunch::{run_persistent, RelaunchOutcome};
pub use stats::Summary;
pub use timeline::{timeline, timeline_checked, Event};

/// Hours, matching the substrate crates.
pub type Hours = f64;
/// US dollars.
pub type Usd = f64;
