//! Parallel Monte-Carlo evaluation over random trace start points.
//!
//! The paper repeats the trace-replay simulation "one million times" from
//! random start points. [`MonteCarlo`] distributes seeded replicas across
//! threads with crossbeam's scoped threads; results are deterministic for
//! a (seed, replica-count) pair regardless of thread count, because each
//! replica's start offset derives only from the seed and its index.

use crate::exec::{Finisher, PlanRunner, RunOutcome};
use crate::stats::Summary;
use crate::Hours;
use ec2_market::market::SpotMarket;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sompi_core::model::Plan;

/// Aggregated Monte-Carlo result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McResult {
    /// Summary of total cost, USD.
    pub cost: Summary,
    /// Summary of wall-clock time, hours.
    pub time: Summary,
    /// Fraction of replicas meeting the deadline.
    pub deadline_rate: f64,
    /// Fraction of replicas finished on spot (vs on-demand fallback).
    pub spot_finish_rate: f64,
    /// Mean number of out-of-bid terminations per replica.
    pub mean_failures: f64,
}

impl McResult {
    /// Build from raw outcomes. Returns `None` when `outcomes` is empty —
    /// there is no meaningful aggregate of zero replicas.
    pub fn from_outcomes(outcomes: &[RunOutcome]) -> Option<Self> {
        if outcomes.is_empty() {
            return None;
        }
        let costs: Vec<f64> = outcomes.iter().map(|o| o.total_cost).collect();
        let times: Vec<f64> = outcomes.iter().map(|o| o.wall_hours).collect();
        let n = outcomes.len() as f64;
        Some(Self {
            cost: Summary::of(&costs),
            time: Summary::of(&times),
            deadline_rate: outcomes.iter().filter(|o| o.met_deadline).count() as f64 / n,
            spot_finish_rate: outcomes
                .iter()
                .filter(|o| matches!(o.finisher, Finisher::Spot(_)))
                .count() as f64
                / n,
            mean_failures: outcomes.iter().map(|o| o.groups_failed as f64).sum::<f64>() / n,
        })
    }
}

/// Monte-Carlo driver over a market region.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of replicas.
    pub replicas: usize,
    /// RNG seed for start-offset sampling.
    pub seed: u64,
    /// Earliest admissible start offset (hours) — leave room for the
    /// planner's history window before it.
    pub offset_min: Hours,
    /// Latest admissible start offset (hours) — leave room for the
    /// execution after it.
    pub offset_max: Hours,
    /// Worker threads, with the same semantics as
    /// `OptimizerConfig::threads`: `0` = one worker per available core,
    /// `1` = sequential, `n` = exactly `n` workers. Results are identical
    /// at any value — only wall-clock changes.
    pub threads: usize,
}

impl MonteCarlo {
    /// A driver with sensible experiment defaults: all cores (`threads =
    /// 0`), no artificial cap.
    pub fn new(replicas: usize, seed: u64, offset_min: Hours, offset_max: Hours) -> Self {
        Self {
            replicas,
            seed,
            offset_min,
            offset_max,
            threads: 0,
        }
    }

    /// Deterministic start offset of replica `i`.
    fn offset(&self, i: usize) -> Hours {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
        rng.gen_range(self.offset_min..self.offset_max)
    }

    /// Run `f(start_offset)` for every replica in parallel and aggregate.
    /// `f` must be deterministic in the offset.
    pub fn evaluate<F>(&self, f: F) -> McResult
    where
        F: Fn(Hours) -> RunOutcome + Sync,
    {
        assert!(self.replicas > 0, "need at least one replica");
        assert!(
            self.offset_max > self.offset_min,
            "offset window must be non-empty"
        );
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let outcomes = if threads <= 1 {
            (0..self.replicas)
                .map(|i| f(self.offset(i)))
                .collect::<Vec<_>>()
        } else {
            let chunk = self.replicas.div_ceil(threads);
            let mut results: Vec<Vec<RunOutcome>> = Vec::new();
            crossbeam::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(self.replicas);
                    if lo >= hi {
                        break;
                    }
                    let f = &f;
                    handles.push(
                        s.spawn(move |_| (lo..hi).map(|i| f(self.offset(i))).collect::<Vec<_>>()),
                    );
                }
                for h in handles {
                    results.push(h.join().expect("MC worker panicked"));
                }
            })
            .expect("crossbeam scope failed");
            results.into_iter().flatten().collect()
        };
        McResult::from_outcomes(&outcomes)
            .expect("replicas > 0 was asserted, so outcomes is non-empty")
    }

    /// Convenience: Monte-Carlo over a static plan via [`PlanRunner`].
    pub fn run_plan(&self, market: &SpotMarket, plan: &Plan, deadline: Hours) -> McResult {
        let runner = PlanRunner::new(market, deadline);
        self.evaluate(|start| runner.run(plan, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceCatalog;
    use ec2_market::market::CircleGroupId;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use ec2_market::zone::AvailabilityZone;
    use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

    fn market(seed: u64) -> SpotMarket {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 300.0, 1.0 / 12.0)
    }

    fn simple_plan(market: &SpotMarket) -> Plan {
        let small = market.catalog().by_name("m1.small").unwrap();
        let cc2 = market.catalog().by_name("cc2.8xlarge").unwrap();
        let id = CircleGroupId::new(small, AvailabilityZone::UsEast1b);
        let group = CircleGroup {
            id,
            instances: 128,
            exec_hours: 1.5,
            ckpt_overhead_hours: 0.02,
            recovery_hours: 0.1,
        };
        Plan {
            groups: vec![(
                group,
                GroupDecision {
                    bid: 0.02,
                    ckpt_interval: 0.5,
                },
            )],
            on_demand: OnDemandOption {
                instance_type: cc2,
                instances: 4,
                exec_hours: 1.0,
                unit_price: 2.0,
                recovery_hours: 0.1,
            },
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = market(61);
        let plan = simple_plan(&m);
        let base = MonteCarlo {
            replicas: 64,
            seed: 5,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 1,
        };
        let seq = base.run_plan(&m, &plan, 3.0);
        let par = MonteCarlo { threads: 4, ..base }.run_plan(&m, &plan, 3.0);
        let all = MonteCarlo { threads: 0, ..base }.run_plan(&m, &plan, 3.0);
        assert_eq!(seq, par);
        assert_eq!(seq, all);
    }

    #[test]
    fn empty_outcomes_aggregate_to_none() {
        assert!(McResult::from_outcomes(&[]).is_none());
    }

    #[test]
    fn new_defaults_to_all_cores() {
        assert_eq!(MonteCarlo::new(10, 1, 0.0, 1.0).threads, 0);
    }

    #[test]
    fn different_seeds_sample_different_offsets() {
        let m = market(61);
        let plan = simple_plan(&m);
        let a = MonteCarlo {
            replicas: 32,
            seed: 1,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 2,
        }
        .run_plan(&m, &plan, 3.0);
        let b = MonteCarlo {
            replicas: 32,
            seed: 2,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 2,
        }
        .run_plan(&m, &plan, 3.0);
        // Statistically all-but-certain to differ on a volatile market.
        assert_ne!(a, b);
    }

    #[test]
    fn aggregates_are_consistent() {
        let m = market(67);
        let plan = simple_plan(&m);
        let r = MonteCarlo {
            replicas: 50,
            seed: 9,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 4,
        }
        .run_plan(&m, &plan, 3.0);
        assert_eq!(r.cost.n, 50);
        assert!(r.cost.mean > 0.0);
        assert!(r.cost.min <= r.cost.mean && r.cost.mean <= r.cost.max);
        assert!((0.0..=1.0).contains(&r.deadline_rate));
        assert!((0.0..=1.0).contains(&r.spot_finish_rate));
    }

    #[test]
    fn cheap_stable_zone_usually_finishes_on_spot() {
        // us-east-1b m1.small is Calm: bidding ~2.3× base should almost
        // always ride through.
        let m = market(71);
        let plan = simple_plan(&m);
        let r = MonteCarlo {
            replicas: 40,
            seed: 3,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 4,
        }
        .run_plan(&m, &plan, 3.0);
        assert!(r.spot_finish_rate > 0.7, "spot rate {}", r.spot_finish_rate);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let m = market(61);
        let plan = simple_plan(&m);
        MonteCarlo {
            replicas: 0,
            seed: 1,
            offset_min: 0.0,
            offset_max: 1.0,
            threads: 1,
        }
        .run_plan(&m, &plan, 1.0);
    }
}
