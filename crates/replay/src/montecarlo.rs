//! Parallel Monte-Carlo evaluation over random trace start points.
//!
//! The paper repeats the trace-replay simulation "one million times" from
//! random start points. [`MonteCarlo`] distributes seeded replicas across
//! threads with crossbeam's scoped threads; results are deterministic for
//! a (seed, replica-count) pair regardless of thread count, because each
//! replica's start offset derives only from the seed and its index.

use crate::exec::{ExecContext, Finisher, PlanRunner, RunOutcome};
use crate::stats::Summary;
use crate::Hours;
use ec2_market::market::SpotMarket;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sompi_core::error::SompiError;
use sompi_core::model::Plan;

/// Aggregated Monte-Carlo result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McResult {
    /// Summary of total cost, USD.
    pub cost: Summary,
    /// Summary of wall-clock time, hours.
    pub time: Summary,
    /// Fraction of replicas meeting the deadline.
    pub deadline_rate: f64,
    /// Fraction of replicas finished on spot (vs on-demand fallback).
    pub spot_finish_rate: f64,
    /// Mean number of out-of-bid terminations per replica.
    pub mean_failures: f64,
}

impl McResult {
    /// Build from raw outcomes. `Err(SompiError::NoOutcomes)` when
    /// `outcomes` is empty — there is no meaningful aggregate of zero
    /// replicas.
    pub fn from_outcomes(outcomes: &[RunOutcome]) -> Result<Self, SompiError> {
        if outcomes.is_empty() {
            return Err(SompiError::NoOutcomes);
        }
        let costs: Vec<f64> = outcomes.iter().map(|o| o.total_cost).collect();
        let times: Vec<f64> = outcomes.iter().map(|o| o.wall_hours).collect();
        let n = outcomes.len() as f64;
        Ok(Self {
            cost: Summary::of(&costs),
            time: Summary::of(&times),
            deadline_rate: outcomes.iter().filter(|o| o.met_deadline).count() as f64 / n,
            spot_finish_rate: outcomes
                .iter()
                .filter(|o| matches!(o.finisher, Finisher::Spot(_)))
                .count() as f64
                / n,
            mean_failures: outcomes.iter().map(|o| o.groups_failed as f64).sum::<f64>() / n,
        })
    }
}

/// Monte-Carlo driver over a market region.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of replicas.
    pub replicas: usize,
    /// RNG seed for start-offset sampling.
    pub seed: u64,
    /// Earliest admissible start offset (hours) — leave room for the
    /// planner's history window before it.
    pub offset_min: Hours,
    /// Latest admissible start offset (hours) — leave room for the
    /// execution after it.
    pub offset_max: Hours,
    /// Worker threads, with the same semantics as
    /// `OptimizerConfig::threads`: `0` = one worker per available core,
    /// `1` = sequential, `n` = exactly `n` workers. Results are identical
    /// at any value — only wall-clock changes.
    pub threads: usize,
}

/// Builder for [`MonteCarlo`] (see [`MonteCarlo::builder`]).
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloBuilder {
    mc: MonteCarlo,
}

impl MonteCarloBuilder {
    /// Number of replicas.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.mc.replicas = replicas;
        self
    }

    /// RNG seed for start-offset sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.mc.seed = seed;
        self
    }

    /// Admissible start-offset window `[min, max)`, hours.
    pub fn offsets(mut self, min: Hours, max: Hours) -> Self {
        self.mc.offset_min = min;
        self.mc.offset_max = max;
        self
    }

    /// Worker threads (`0` = all cores, `1` = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.mc.threads = threads;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> MonteCarlo {
        self.mc
    }
}

impl MonteCarlo {
    /// A driver with sensible experiment defaults: all cores (`threads =
    /// 0`), no artificial cap.
    ///
    /// ```
    /// use replay::montecarlo::MonteCarlo;
    /// let mc = MonteCarlo::builder()
    ///     .replicas(64)
    ///     .seed(7)
    ///     .offsets(48.0, 250.0)
    ///     .build();
    /// assert_eq!(mc.threads, 0);
    /// ```
    pub fn builder() -> MonteCarloBuilder {
        MonteCarloBuilder {
            mc: MonteCarlo {
                replicas: 100,
                seed: 0,
                offset_min: 0.0,
                offset_max: 1.0,
                threads: 0,
            },
        }
    }

    /// Deprecated positional constructor.
    #[deprecated(since = "0.4.0", note = "use `MonteCarlo::builder()`")]
    pub fn new(replicas: usize, seed: u64, offset_min: Hours, offset_max: Hours) -> Self {
        Self {
            replicas,
            seed,
            offset_min,
            offset_max,
            threads: 0,
        }
    }

    /// Deterministic start offset of replica `i`.
    fn offset(&self, i: usize) -> Hours {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
        rng.gen_range(self.offset_min..self.offset_max)
    }

    /// Run `f(start_offset)` for every replica in parallel and aggregate.
    /// `f` must be deterministic in the offset. The first replica error
    /// (in replica order, independent of thread count) aborts the
    /// aggregate; an empty or inverted configuration is
    /// [`SompiError::InvalidConfig`].
    pub fn evaluate<F>(&self, f: F) -> Result<McResult, SompiError>
    where
        F: Fn(Hours) -> Result<RunOutcome, SompiError> + Sync,
    {
        if self.replicas == 0 {
            return Err(SompiError::InvalidConfig {
                message: "need at least one replica".to_string(),
            });
        }
        if self.offset_max <= self.offset_min {
            return Err(SompiError::InvalidConfig {
                message: "offset window must be non-empty".to_string(),
            });
        }
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let outcomes: Result<Vec<RunOutcome>, SompiError> = if threads <= 1 {
            (0..self.replicas).map(|i| f(self.offset(i))).collect()
        } else {
            let chunk = self.replicas.div_ceil(threads);
            let mut results: Vec<Vec<Result<RunOutcome, SompiError>>> = Vec::new();
            crossbeam::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(self.replicas);
                    if lo >= hi {
                        break;
                    }
                    let f = &f;
                    handles.push(
                        s.spawn(move |_| (lo..hi).map(|i| f(self.offset(i))).collect::<Vec<_>>()),
                    );
                }
                for h in handles {
                    results.push(h.join().expect("MC worker panicked"));
                }
            })
            .expect("crossbeam scope failed");
            results.into_iter().flatten().collect()
        };
        McResult::from_outcomes(&outcomes?)
    }

    /// Convenience: Monte-Carlo over a static plan via [`PlanRunner`].
    /// The context's fault injector and retry policy apply to every
    /// replica (the fault timeline is a property of the trace clock, so
    /// replicas starting at different offsets see different storm
    /// alignments — exactly like real correlated outages).
    pub fn run_plan(
        &self,
        market: &SpotMarket,
        plan: &Plan,
        deadline: Hours,
        ctx: &ExecContext<'_>,
    ) -> Result<McResult, SompiError> {
        let runner = PlanRunner::new(market, deadline);
        self.evaluate(|start| runner.run(plan, start, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceCatalog;
    use ec2_market::market::CircleGroupId;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use ec2_market::zone::AvailabilityZone;
    use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

    fn market(seed: u64) -> SpotMarket {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 300.0, 1.0 / 12.0)
    }

    fn simple_plan(market: &SpotMarket) -> Plan {
        let small = market.catalog().by_name("m1.small").unwrap();
        let cc2 = market.catalog().by_name("cc2.8xlarge").unwrap();
        let id = CircleGroupId::new(small, AvailabilityZone::UsEast1b);
        let group = CircleGroup {
            id,
            instances: 128,
            exec_hours: 1.5,
            ckpt_overhead_hours: 0.02,
            recovery_hours: 0.1,
        };
        Plan {
            groups: vec![(
                group,
                GroupDecision {
                    bid: 0.02,
                    ckpt_interval: 0.5,
                },
            )],
            on_demand: OnDemandOption {
                instance_type: cc2,
                instances: 4,
                exec_hours: 1.0,
                unit_price: 2.0,
                recovery_hours: 0.1,
            },
        }
    }

    fn run(mc: &MonteCarlo, m: &SpotMarket, plan: &Plan, deadline: Hours) -> McResult {
        mc.run_plan(m, plan, deadline, &ExecContext::new()).unwrap()
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = market(61);
        let plan = simple_plan(&m);
        let base = MonteCarlo {
            replicas: 64,
            seed: 5,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 1,
        };
        let seq = run(&base, &m, &plan, 3.0);
        let par = run(&MonteCarlo { threads: 4, ..base }, &m, &plan, 3.0);
        let all = run(&MonteCarlo { threads: 0, ..base }, &m, &plan, 3.0);
        assert_eq!(seq, par);
        assert_eq!(seq, all);
    }

    #[test]
    fn empty_outcomes_aggregate_to_error() {
        assert_eq!(McResult::from_outcomes(&[]), Err(SompiError::NoOutcomes));
    }

    #[test]
    fn builder_defaults_to_all_cores() {
        let mc = MonteCarlo::builder().replicas(10).seed(1).build();
        assert_eq!(mc.threads, 0);
        assert_eq!(mc.replicas, 10);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_positional_constructor_still_answers() {
        let mc = MonteCarlo::new(10, 1, 0.0, 1.0);
        assert_eq!(mc.threads, 0);
        assert_eq!(mc.offset_max, 1.0);
    }

    #[test]
    fn different_seeds_sample_different_offsets() {
        let m = market(61);
        let plan = simple_plan(&m);
        let base = MonteCarlo::builder()
            .replicas(32)
            .offsets(48.0, 250.0)
            .threads(2)
            .build();
        let a = run(&MonteCarlo { seed: 1, ..base }, &m, &plan, 3.0);
        let b = run(&MonteCarlo { seed: 2, ..base }, &m, &plan, 3.0);
        // Statistically all-but-certain to differ on a volatile market.
        assert_ne!(a, b);
    }

    #[test]
    fn aggregates_are_consistent() {
        let m = market(67);
        let plan = simple_plan(&m);
        let mc = MonteCarlo::builder()
            .replicas(50)
            .seed(9)
            .offsets(48.0, 250.0)
            .threads(4)
            .build();
        let r = run(&mc, &m, &plan, 3.0);
        assert_eq!(r.cost.n, 50);
        assert!(r.cost.mean > 0.0);
        assert!(r.cost.min <= r.cost.mean && r.cost.mean <= r.cost.max);
        assert!((0.0..=1.0).contains(&r.deadline_rate));
        assert!((0.0..=1.0).contains(&r.spot_finish_rate));
    }

    #[test]
    fn cheap_stable_zone_usually_finishes_on_spot() {
        // us-east-1b m1.small is Calm: bidding ~2.3× base should almost
        // always ride through.
        let m = market(71);
        let plan = simple_plan(&m);
        let mc = MonteCarlo::builder()
            .replicas(40)
            .seed(3)
            .offsets(48.0, 250.0)
            .threads(4)
            .build();
        let r = run(&mc, &m, &plan, 3.0);
        assert!(r.spot_finish_rate > 0.7, "spot rate {}", r.spot_finish_rate);
    }

    #[test]
    fn zero_replicas_is_an_error() {
        let m = market(61);
        let plan = simple_plan(&m);
        let mc = MonteCarlo::builder().replicas(0).offsets(0.0, 1.0).build();
        assert!(matches!(
            mc.run_plan(&m, &plan, 1.0, &ExecContext::new()),
            Err(SompiError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn replica_errors_propagate() {
        let mc = MonteCarlo::builder()
            .replicas(8)
            .offsets(0.0, 1.0)
            .threads(2)
            .build();
        let r = mc.evaluate(|_| Err(SompiError::NoOutcomes));
        assert_eq!(r, Err(SompiError::NoOutcomes));
    }
}
