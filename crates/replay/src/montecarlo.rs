//! Parallel Monte-Carlo evaluation over random trace start points.
//!
//! The paper repeats the trace-replay simulation "one million times" from
//! random start points. [`MonteCarlo`] distributes seeded replicas across
//! threads with crossbeam's scoped threads; results are deterministic for
//! a (seed, replica-count) pair regardless of thread count, because each
//! replica's start offset derives only from the seed and its index.
//!
//! Aggregation streams: replicas are folded into per-chunk
//! [`McAccumulator`]s and chunk partials merged in chunk-index order, so
//! peak memory is O(number of chunks) — bounded by [`MAX_CHUNKS`] — rather
//! than O(replicas). Chunk boundaries depend only on the replica count
//! (never on the thread count), which keeps the merged result bit-identical
//! at any `threads` setting.

use crate::batch::BatchTables;
use crate::exec::{ExecContext, ExecMode, Finisher, PlanRunner, RunOutcome};
use crate::stats::{StreamingSummary, Summary};
use crate::Hours;
use ec2_market::market::SpotMarket;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sompi_core::error::SompiError;
use sompi_core::model::Plan;
use sompi_obs::{emit, Event, TraceLevel};

/// Aggregated Monte-Carlo result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McResult {
    /// Summary of total cost, USD.
    pub cost: Summary,
    /// Summary of wall-clock time, hours.
    pub time: Summary,
    /// Fraction of replicas meeting the deadline.
    pub deadline_rate: f64,
    /// Fraction of replicas finished on spot (vs on-demand fallback).
    pub spot_finish_rate: f64,
    /// Mean number of out-of-bid terminations per replica.
    pub mean_failures: f64,
}

impl McResult {
    /// Build from raw outcomes in a single pass (no intermediate metric
    /// vectors). Folds the slice through the same fixed chunking as
    /// [`MonteCarlo::evaluate`], so for identical outcome sequences the two
    /// paths agree bit-for-bit. `Err(SompiError::NoOutcomes)` when
    /// `outcomes` is empty — there is no meaningful aggregate of zero
    /// replicas.
    pub fn from_outcomes(outcomes: &[RunOutcome]) -> Result<Self, SompiError> {
        if outcomes.is_empty() {
            return Err(SompiError::NoOutcomes);
        }
        let mut merged = McAccumulator::new();
        for block in outcomes.chunks(chunk_size(outcomes.len())) {
            let mut part = McAccumulator::new();
            for o in block {
                part.push(o);
            }
            merged.merge(&part);
        }
        merged.finish()
    }
}

/// Smallest chunk a replica range is split into for streaming aggregation.
const MIN_CHUNK: usize = 64;

/// Upper bound on the number of chunk partials held at once — this, not the
/// replica count, bounds the aggregation's peak memory.
pub const MAX_CHUNKS: usize = 4096;

/// Replicas per chunk. Depends only on the replica count, so the chunk
/// boundaries — and therefore the merged floating-point result — are
/// identical at every thread count.
fn chunk_size(replicas: usize) -> usize {
    MIN_CHUNK.max(replicas.div_ceil(MAX_CHUNKS))
}

/// Streaming aggregate of [`RunOutcome`]s: two [`StreamingSummary`] scalar
/// accumulators plus exact integer counters. Merge partials in a fixed
/// order (ascending chunk index) for deterministic results.
#[derive(Debug, Clone, Default)]
pub struct McAccumulator {
    cost: StreamingSummary,
    time: StreamingSummary,
    met_deadline: u64,
    spot_finish: u64,
    failures: u64,
}

impl McAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one replica outcome in.
    pub fn push(&mut self, o: &RunOutcome) {
        self.cost.push(o.total_cost);
        self.time.push(o.wall_hours);
        self.met_deadline += u64::from(o.met_deadline);
        self.spot_finish += u64::from(matches!(o.finisher, Finisher::Spot(_)));
        self.failures += u64::from(o.groups_failed);
    }

    /// Merge another partial in.
    pub fn merge(&mut self, other: &Self) {
        self.cost.merge(&other.cost);
        self.time.merge(&other.time);
        self.met_deadline += other.met_deadline;
        self.spot_finish += other.spot_finish;
        self.failures += other.failures;
    }

    /// Finish into an [`McResult`]; `Err(SompiError::NoOutcomes)` when no
    /// outcomes were accumulated.
    pub fn finish(&self) -> Result<McResult, SompiError> {
        if self.cost.count() == 0 {
            return Err(SompiError::NoOutcomes);
        }
        let n = self.cost.count() as f64;
        Ok(McResult {
            cost: self.cost.summary(),
            time: self.time.summary(),
            deadline_rate: self.met_deadline as f64 / n,
            spot_finish_rate: self.spot_finish as f64 / n,
            mean_failures: self.failures as f64 / n,
        })
    }
}

/// Monte-Carlo driver over a market region.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of replicas.
    pub replicas: usize,
    /// RNG seed for start-offset sampling.
    pub seed: u64,
    /// Earliest admissible start offset (hours) — leave room for the
    /// planner's history window before it.
    pub offset_min: Hours,
    /// Latest admissible start offset (hours) — leave room for the
    /// execution after it.
    pub offset_max: Hours,
    /// Worker threads, with the same semantics as
    /// `OptimizerConfig::threads`: `0` = one worker per available core,
    /// `1` = sequential, `n` = exactly `n` workers. Results are identical
    /// at any value — only wall-clock changes.
    pub threads: usize,
}

/// Builder for [`MonteCarlo`] (see [`MonteCarlo::builder`]).
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloBuilder {
    mc: MonteCarlo,
}

impl MonteCarloBuilder {
    /// Number of replicas.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.mc.replicas = replicas;
        self
    }

    /// RNG seed for start-offset sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.mc.seed = seed;
        self
    }

    /// Admissible start-offset window `[min, max)`, hours.
    pub fn offsets(mut self, min: Hours, max: Hours) -> Self {
        self.mc.offset_min = min;
        self.mc.offset_max = max;
        self
    }

    /// Worker threads (`0` = all cores, `1` = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.mc.threads = threads;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> MonteCarlo {
        self.mc
    }
}

impl MonteCarlo {
    /// A driver with sensible experiment defaults: all cores (`threads =
    /// 0`), no artificial cap.
    ///
    /// ```
    /// use replay::montecarlo::MonteCarlo;
    /// let mc = MonteCarlo::builder()
    ///     .replicas(64)
    ///     .seed(7)
    ///     .offsets(48.0, 250.0)
    ///     .build();
    /// assert_eq!(mc.threads, 0);
    /// ```
    pub fn builder() -> MonteCarloBuilder {
        MonteCarloBuilder {
            mc: MonteCarlo {
                replicas: 100,
                seed: 0,
                offset_min: 0.0,
                offset_max: 1.0,
                threads: 0,
            },
        }
    }

    /// Deterministic start offset of replica `i`.
    fn offset(&self, i: usize) -> Hours {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
        rng.gen_range(self.offset_min..self.offset_max)
    }

    /// Run `f(start_offset)` for every replica in parallel and aggregate
    /// by streaming: each worker folds whole chunks of replicas into
    /// [`McAccumulator`] partials (never materializing per-replica
    /// outcomes), and the partials merge in ascending chunk order. Chunk
    /// boundaries depend only on the replica count, so the result is
    /// bit-identical at every `threads` setting and peak memory is bounded
    /// by [`MAX_CHUNKS`] partials regardless of the replica count.
    ///
    /// `f` must be deterministic in the offset. The first replica error
    /// (in replica order, independent of thread count) aborts the
    /// aggregate; an empty or inverted configuration is
    /// [`SompiError::InvalidConfig`].
    pub fn evaluate<F>(&self, f: F) -> Result<McResult, SompiError>
    where
        F: Fn(Hours) -> Result<RunOutcome, SompiError> + Sync,
    {
        if self.replicas == 0 {
            return Err(SompiError::InvalidConfig {
                message: "need at least one replica".to_string(),
            });
        }
        if self.offset_max <= self.offset_min {
            return Err(SompiError::InvalidConfig {
                message: "offset window must be non-empty".to_string(),
            });
        }
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let chunk = chunk_size(self.replicas);
        let n_chunks = self.replicas.div_ceil(chunk);
        // Fold one chunk of consecutive replicas; stops at the chunk's
        // first replica error.
        let run_chunk = |c: usize| -> Result<McAccumulator, SompiError> {
            let hi = ((c + 1) * chunk).min(self.replicas);
            let mut acc = McAccumulator::new();
            for i in c * chunk..hi {
                acc.push(&f(self.offset(i))?);
            }
            Ok(acc)
        };
        // One slot per chunk, filled by whichever worker ran it. A worker
        // abandons its remaining (higher-index) chunks after an error —
        // those can never beat the error it already holds.
        let mut parts: Vec<Option<Result<McAccumulator, SompiError>>> =
            (0..n_chunks).map(|_| None).collect();
        if threads <= 1 {
            for (c, slot) in parts.iter_mut().enumerate() {
                let part = run_chunk(c);
                let failed = part.is_err();
                *slot = Some(part);
                if failed {
                    break;
                }
            }
        } else {
            let per_worker = n_chunks.div_ceil(threads.min(n_chunks));
            crossbeam::thread::scope(|s| {
                for (w, slots) in parts.chunks_mut(per_worker).enumerate() {
                    let run_chunk = &run_chunk;
                    s.spawn(move |_| {
                        for (off, slot) in slots.iter_mut().enumerate() {
                            let part = run_chunk(w * per_worker + off);
                            let failed = part.is_err();
                            *slot = Some(part);
                            if failed {
                                break;
                            }
                        }
                    });
                }
            })
            .expect("crossbeam scope failed");
        }
        // Deterministic merge: ascending chunk index. The first error in
        // chunk order is the lowest-replica-index error, because each
        // worker fills its slots in order and stops at its first failure.
        let mut merged = McAccumulator::new();
        for part in parts {
            match part {
                Some(Ok(acc)) => merged.merge(&acc),
                Some(Err(e)) => return Err(e),
                None => unreachable!("unfilled chunk slot before the first error"),
            }
        }
        merged.finish()
    }

    /// Convenience: Monte-Carlo over a static plan via [`PlanRunner`].
    /// The context's fault injector and retry policy apply to every
    /// replica (the fault timeline is a property of the trace clock, so
    /// replicas starting at different offsets see different storm
    /// alignments — exactly like real correlated outages).
    ///
    /// Under [`ExecMode::Batched`] (the default) the plan's death-time
    /// tables are warmed once here — built on the market's shared cache or
    /// reused from it — and every replica on every worker thread replays
    /// against them; under [`ExecMode::Scalar`] (the `--no-batch-replay`
    /// ablation) each replica walks the trace queries as before. Results
    /// are bit-identical either way.
    pub fn run_plan(
        &self,
        market: &SpotMarket,
        plan: &Plan,
        deadline: Hours,
        ctx: &ExecContext<'_>,
    ) -> Result<McResult, SompiError> {
        let runner = PlanRunner::new(market, deadline);
        if ctx.mode == ExecMode::Batched {
            if ctx.batch.is_some() {
                // Caller-built tables (the tournament warms and announces
                // them itself so the trace stays single-threaded).
                return self.evaluate(|start| runner.run(plan, start, ctx));
            }
            let batch = BatchTables::for_plan(market, plan)?;
            emit(ctx.recorder, TraceLevel::Summary, || Event::ReplayBatched {
                groups: batch.len() as u32,
                replicas: self.replicas as u64,
                tables_built: batch.tables_built,
                tables_reused: batch.tables_reused,
            });
            let bctx = ctx.with_batch(&batch);
            self.evaluate(|start| runner.run(plan, start, &bctx))
        } else {
            self.evaluate(|start| runner.run(plan, start, ctx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceCatalog;
    use ec2_market::market::CircleGroupId;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use ec2_market::zone::AvailabilityZone;
    use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

    fn market(seed: u64) -> SpotMarket {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 300.0, 1.0 / 12.0)
    }

    fn simple_plan(market: &SpotMarket) -> Plan {
        let small = market.catalog().by_name("m1.small").unwrap();
        let cc2 = market.catalog().by_name("cc2.8xlarge").unwrap();
        let id = CircleGroupId::new(small, AvailabilityZone::UsEast1b);
        let group = CircleGroup {
            id,
            instances: 128,
            exec_hours: 1.5,
            ckpt_overhead_hours: 0.02,
            recovery_hours: 0.1,
        };
        Plan {
            groups: vec![(
                group,
                GroupDecision {
                    bid: 0.02,
                    ckpt_interval: 0.5,
                },
            )],
            on_demand: OnDemandOption {
                instance_type: cc2,
                instances: 4,
                exec_hours: 1.0,
                unit_price: 2.0,
                recovery_hours: 0.1,
            },
        }
    }

    fn run(mc: &MonteCarlo, m: &SpotMarket, plan: &Plan, deadline: Hours) -> McResult {
        mc.run_plan(m, plan, deadline, &ExecContext::new()).unwrap()
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = market(61);
        let plan = simple_plan(&m);
        let base = MonteCarlo {
            replicas: 64,
            seed: 5,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 1,
        };
        let seq = run(&base, &m, &plan, 3.0);
        let par = run(&MonteCarlo { threads: 4, ..base }, &m, &plan, 3.0);
        let all = run(&MonteCarlo { threads: 0, ..base }, &m, &plan, 3.0);
        assert_eq!(seq, par);
        assert_eq!(seq, all);
    }

    #[test]
    fn multi_chunk_streaming_is_deterministic_across_thread_counts() {
        // 200 replicas split into ceil(200/64) = 4 chunk partials, so this
        // exercises the fixed-order merge (unlike the 64-replica test,
        // which fits one chunk).
        let m = market(61);
        let plan = simple_plan(&m);
        let base = MonteCarlo {
            replicas: 200,
            seed: 11,
            offset_min: 48.0,
            offset_max: 250.0,
            threads: 1,
        };
        let seq = run(&base, &m, &plan, 3.0);
        let par = run(&MonteCarlo { threads: 3, ..base }, &m, &plan, 3.0);
        let all = run(&MonteCarlo { threads: 0, ..base }, &m, &plan, 3.0);
        assert_eq!(seq, par);
        assert_eq!(seq, all);
    }

    #[test]
    fn from_outcomes_matches_streaming_evaluate() {
        // Both paths fold through the same chunking, so the aggregates are
        // bit-identical for identical outcome sequences.
        let m = market(67);
        let plan = simple_plan(&m);
        let mc = MonteCarlo::builder()
            .replicas(150)
            .seed(4)
            .offsets(48.0, 250.0)
            .threads(1)
            .build();
        let runner = PlanRunner::new(&m, 3.0);
        let ctx = ExecContext::new();
        let collected = std::sync::Mutex::new(Vec::new());
        let streamed = mc
            .evaluate(|start| {
                let o = runner.run(&plan, start, &ctx)?;
                collected.lock().unwrap().push(o);
                Ok(o)
            })
            .unwrap();
        let outcomes = collected.into_inner().unwrap();
        assert_eq!(outcomes.len(), 150);
        assert_eq!(McResult::from_outcomes(&outcomes).unwrap(), streamed);
    }

    #[test]
    fn chunking_is_bounded_and_thread_independent() {
        assert_eq!(chunk_size(1), MIN_CHUNK);
        assert_eq!(chunk_size(64), MIN_CHUNK);
        let million = chunk_size(1_000_000);
        assert_eq!(million, 245);
        assert!(1_000_000usize.div_ceil(million) <= MAX_CHUNKS);
    }

    #[test]
    fn empty_outcomes_aggregate_to_error() {
        assert_eq!(McResult::from_outcomes(&[]), Err(SompiError::NoOutcomes));
        assert_eq!(McAccumulator::new().finish(), Err(SompiError::NoOutcomes));
    }

    #[test]
    fn builder_defaults_to_all_cores() {
        let mc = MonteCarlo::builder().replicas(10).seed(1).build();
        assert_eq!(mc.threads, 0);
        assert_eq!(mc.replicas, 10);
    }

    #[test]
    fn different_seeds_sample_different_offsets() {
        let m = market(61);
        let plan = simple_plan(&m);
        let base = MonteCarlo::builder()
            .replicas(32)
            .offsets(48.0, 250.0)
            .threads(2)
            .build();
        let a = run(&MonteCarlo { seed: 1, ..base }, &m, &plan, 3.0);
        let b = run(&MonteCarlo { seed: 2, ..base }, &m, &plan, 3.0);
        // Statistically all-but-certain to differ on a volatile market.
        assert_ne!(a, b);
    }

    #[test]
    fn aggregates_are_consistent() {
        let m = market(67);
        let plan = simple_plan(&m);
        let mc = MonteCarlo::builder()
            .replicas(50)
            .seed(9)
            .offsets(48.0, 250.0)
            .threads(4)
            .build();
        let r = run(&mc, &m, &plan, 3.0);
        assert_eq!(r.cost.n, 50);
        assert!(r.cost.mean > 0.0);
        assert!(r.cost.min <= r.cost.mean && r.cost.mean <= r.cost.max);
        assert!((0.0..=1.0).contains(&r.deadline_rate));
        assert!((0.0..=1.0).contains(&r.spot_finish_rate));
    }

    #[test]
    fn cheap_stable_zone_usually_finishes_on_spot() {
        // us-east-1b m1.small is Calm: bidding ~2.3× base should almost
        // always ride through.
        let m = market(71);
        let plan = simple_plan(&m);
        let mc = MonteCarlo::builder()
            .replicas(40)
            .seed(3)
            .offsets(48.0, 250.0)
            .threads(4)
            .build();
        let r = run(&mc, &m, &plan, 3.0);
        assert!(r.spot_finish_rate > 0.7, "spot rate {}", r.spot_finish_rate);
    }

    #[test]
    fn zero_replicas_is_an_error() {
        let m = market(61);
        let plan = simple_plan(&m);
        let mc = MonteCarlo::builder().replicas(0).offsets(0.0, 1.0).build();
        assert!(matches!(
            mc.run_plan(&m, &plan, 1.0, &ExecContext::new()),
            Err(SompiError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn replica_errors_propagate() {
        let mc = MonteCarlo::builder()
            .replicas(8)
            .offsets(0.0, 1.0)
            .threads(2)
            .build();
        let r = mc.evaluate(|_| Err(SompiError::NoOutcomes));
        assert_eq!(r, Err(SompiError::NoOutcomes));
    }
}
