//! Per-plan batch tables for scenario-major Monte-Carlo replay.
//!
//! Replica-major replay re-derives the same launch/death crossings for
//! every replica: each [`crate::PlanRunner::run`] call walks the trace
//! index once per (group, bid) per start offset. [`BatchTables`] flips
//! the loop scenario-major — before any replica runs, one
//! [`DeathTimeTable`] per plan (group, bid) is fetched from the market's
//! shared [`ec2_market::DeathTimeCache`] (built on first touch, reused by
//! every later replica, worker thread, and tournament cell on the same
//! market), and the per-group [`ec2_market::fault::group_key`] hash is
//! computed once instead of once per fault draw. Replicas then resolve
//! launch and death times with O(1) array reads.
//!
//! The tables answer with the **same bits** as the scalar
//! [`ec2_market::TraceQuery`] path — the batched executor is an
//! acceleration, not an approximation, and the `mc_batch_differential`
//! suite compares every outcome field by `to_bits` to enforce it.

use crate::Usd;
use ec2_market::death::DeathTimeTable;
use ec2_market::fault::group_key;
use ec2_market::market::{CircleGroupId, SpotMarket};
use sompi_core::error::SompiError;
use sompi_core::model::Plan;
use std::sync::Arc;

/// One plan group's precomputed replay state: its memoized death-time
/// table and its cached fault-draw key.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// The plan group this entry serves.
    pub group: CircleGroupId,
    /// The bid the table was built for.
    pub bid: Usd,
    /// Cached [`group_key`] hash, so fault draws in the replay hot loop
    /// skip the per-call string hash.
    pub gkey: u64,
    /// Shared read-only death/launch table for (group, bid).
    pub table: Arc<DeathTimeTable>,
}

/// Batch state for one plan against one market: entries index-aligned
/// with `plan.groups`, plus build/reuse counters for the
/// `ReplayBatched` trace event.
#[derive(Debug, Clone)]
pub struct BatchTables {
    /// `entries[i]` serves `plan.groups[i]`; `None` when the group's
    /// trace is too long for the table's `u32` indexes (the executor
    /// falls back to scalar queries for that group).
    entries: Vec<Option<BatchEntry>>,
    /// Tables built fresh for this plan.
    pub tables_built: u32,
    /// Tables served from the market's shared cache.
    pub tables_reused: u32,
}

impl BatchTables {
    /// Fetch (or build) the death-time table for every group in `plan`.
    ///
    /// Errors with [`SompiError::UnknownGroup`] for a plan group the
    /// market has no trace for — the same error, at the same point in
    /// the call sequence, as the scalar executor's per-group query.
    pub fn for_plan(market: &SpotMarket, plan: &Plan) -> Result<Self, SompiError> {
        let mut entries = Vec::with_capacity(plan.groups.len());
        let mut tables_built = 0u32;
        let mut tables_reused = 0u32;
        for (group, decision) in &plan.groups {
            market
                .trace(group.id)
                .ok_or_else(|| SompiError::UnknownGroup {
                    group: group.id.to_string(),
                })?;
            match market.death_table(group.id, decision.bid) {
                Some((table, built)) => {
                    if built {
                        tables_built += 1;
                    } else {
                        tables_reused += 1;
                    }
                    entries.push(Some(BatchEntry {
                        group: group.id,
                        bid: decision.bid,
                        gkey: group_key(group.id),
                        table,
                    }));
                }
                None => entries.push(None),
            }
        }
        Ok(Self {
            entries,
            tables_built,
            tables_reused,
        })
    }

    /// The entry for plan group `i`, validated against the group id and
    /// bid the caller is replaying (defensive: a context paired with the
    /// wrong plan degrades to the scalar path instead of answering for
    /// the wrong trace).
    pub fn entry(&self, i: usize, group: CircleGroupId, bid: Usd) -> Option<&BatchEntry> {
        self.entries
            .get(i)?
            .as_ref()
            .filter(|e| e.group == group && e.bid.to_bits() == bid.to_bits())
    }

    /// Number of plan groups covered (== `plan.groups.len()`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan had no groups.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::trace::SpotTrace;
    use ec2_market::zone::AvailabilityZone;
    use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

    fn tiny_plan(id: CircleGroupId, bid: Usd) -> Plan {
        Plan {
            groups: vec![(
                CircleGroup {
                    id,
                    instances: 1,
                    exec_hours: 2.0,
                    ckpt_overhead_hours: 0.0,
                    recovery_hours: 0.5,
                },
                GroupDecision {
                    bid,
                    ckpt_interval: 2.0,
                },
            )],
            on_demand: OnDemandOption {
                instance_type: InstanceTypeId(4),
                instances: 1,
                exec_hours: 4.0,
                unit_price: 2.0,
                recovery_hours: 0.5,
            },
        }
    }

    #[test]
    fn tables_are_shared_across_plans_on_one_market() {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let mut market = SpotMarket::new(cat);
        market.insert(id, SpotTrace::new(1.0, vec![0.1, 0.3, 0.1, 0.5]));

        let plan = tiny_plan(id, 0.2);
        let first = BatchTables::for_plan(&market, &plan).unwrap();
        assert_eq!((first.tables_built, first.tables_reused), (1, 0));
        let second = BatchTables::for_plan(&market, &plan).unwrap();
        assert_eq!((second.tables_built, second.tables_reused), (0, 1));
        let a = first.entry(0, id, 0.2).unwrap();
        let b = second.entry(0, id, 0.2).unwrap();
        assert!(Arc::ptr_eq(&a.table, &b.table));
        assert_eq!(a.gkey, ec2_market::fault::group_key(id));

        // A different bid is a different table.
        let other = BatchTables::for_plan(&market, &tiny_plan(id, 0.4)).unwrap();
        assert_eq!((other.tables_built, other.tables_reused), (1, 0));

        // Mismatched lookups degrade to None rather than answering wrong.
        assert!(first.entry(0, id, 0.4).is_none());
        assert!(first.entry(1, id, 0.2).is_none());
    }

    #[test]
    fn unknown_group_is_an_error() {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let market = SpotMarket::new(cat);
        let err = BatchTables::for_plan(&market, &tiny_plan(id, 0.2)).unwrap_err();
        assert!(matches!(err, SompiError::UnknownGroup { .. }));
    }
}
